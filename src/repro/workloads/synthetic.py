"""Synthetic workloads: random access, read/write mixes, trace replay.

These go beyond the paper's benchmark trio.  They exist for three
reasons: property-style integration tests (replay gives exact control of
the timeline), fault-injection scenarios, and the examples directory's
"bring your own workload" demonstrations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Sequence

from repro.errors import WorkloadError
from repro.system import System
from repro.util.units import KiB, MiB
from repro.workloads.base import Workload


@dataclass
class RandomAccessWorkload(Workload):
    """Uniform-random offsets, optional exponential think time.

    A classic OLTP-ish pattern: each of ``nproc`` processes issues
    ``ops_per_proc`` reads of ``io_size`` at page-aligned uniform-random
    offsets in a shared file.
    """

    file_size: int = 64 * MiB
    io_size: int = 4 * KiB
    ops_per_proc: int = 128
    nproc: int = 2
    mean_think_s: float = 0.0
    align: int = 4 * KiB
    name: str = field(default="random", init=False)

    def __post_init__(self) -> None:
        if self.io_size <= 0 or self.file_size <= 0:
            raise WorkloadError("sizes must be positive")
        if self.io_size > self.file_size:
            raise WorkloadError("io_size larger than the file")
        if self.ops_per_proc < 1 or self.nproc < 1:
            raise WorkloadError("counts must be >= 1")
        if self.align <= 0:
            raise WorkloadError("bad alignment")

    def label(self) -> str:
        return f"random[n={self.nproc},ops={self.ops_per_proc}]"

    def setup(self, system: System) -> None:
        system.shared_mount().create(f"random.{self.pid_base}",
                                     self.file_size)
        self._rngs = system.rng.spawn_many("random-proc", self.nproc)

    def processes(self, system: System) -> list[tuple[int, Generator]]:
        return [(self.pid_base + pid, self._proc(system, pid))
                for pid in range(self.nproc)]

    def _proc(self, system: System, pid: int):
        lib = system.posix_for(self.pid_base + pid)
        handle = lib.open(f"random.{self.pid_base}", self.pid_base + pid)
        rng = self._rngs[pid]
        max_slot = (self.file_size - self.io_size) // self.align
        for _ in range(self.ops_per_proc):
            offset = rng.integers(0, max_slot + 1) * self.align
            yield handle.pread(offset, self.io_size)
            if self.mean_think_s > 0:
                yield system.engine.timeout(
                    rng.exponential(self.mean_think_s))
        return self.ops_per_proc


@dataclass
class MixedReadWriteWorkload(Workload):
    """Sequential scan with a read/write mix (e.g. 70/30).

    Each process walks its own file; at each record it reads or writes
    according to ``read_fraction``.
    """

    file_size: int = 32 * MiB
    record_size: int = 64 * KiB
    nproc: int = 2
    read_fraction: float = 0.7
    name: str = field(default="mixed", init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError(f"bad read fraction {self.read_fraction}")
        if self.record_size <= 0 or self.file_size <= 0:
            raise WorkloadError("sizes must be positive")
        if self.nproc < 1:
            raise WorkloadError("nproc must be >= 1")
        if self.file_size // self.nproc < self.record_size:
            raise WorkloadError("per-process share below one record")

    def label(self) -> str:
        return f"mixed[n={self.nproc},r={self.read_fraction:.0%}]"

    def setup(self, system: System) -> None:
        per_proc = self.file_size // self.nproc
        for pid in range(self.nproc):
            system.mount_for(self.pid_base + pid).create(
                f"mixed.{self.pid_base + pid}", per_proc)
        self._rngs = system.rng.spawn_many("mixed-proc", self.nproc)

    def processes(self, system: System) -> list[tuple[int, Generator]]:
        return [(self.pid_base + pid, self._proc(system, pid))
                for pid in range(self.nproc)]

    def _proc(self, system: System, pid: int):
        real_pid = self.pid_base + pid
        lib = system.posix_for(real_pid)
        handle = lib.open(f"mixed.{real_pid}", real_pid)
        rng = self._rngs[pid]
        per_proc = self.file_size // self.nproc
        offset = 0
        while offset + self.record_size <= per_proc:
            if rng.uniform() < self.read_fraction:
                yield handle.pread(offset, self.record_size)
            else:
                yield handle.pwrite(offset, self.record_size)
            offset += self.record_size
        return offset


@dataclass
class MixedSizeWorkload(Workload):
    """Random access with a weighted mix of request sizes.

    Realistic applications rarely issue one size; checkpoint writers
    stream big records while loggers trickle small ones.  Under a
    per-byte fault model the two classes also *fail* differently, which
    is exactly what the fault-sweep experiment (set 6) needs: a
    workload whose block-weighted and count-weighted inflation diverge.
    """

    file_size: int = 64 * MiB
    sizes: tuple[int, ...] = (4 * KiB, 256 * KiB)
    weights: tuple[float, ...] = (0.8, 0.2)
    ops_per_proc: int = 64
    nproc: int = 4
    read_fraction: float = 1.0
    align: int = 4 * KiB
    name: str = field(default="mixedsize", init=False)

    def __post_init__(self) -> None:
        if not self.sizes:
            raise WorkloadError("mixed-size workload needs sizes")
        if len(self.weights) != len(self.sizes):
            raise WorkloadError(
                f"{len(self.sizes)} sizes but {len(self.weights)} weights")
        if any(s <= 0 for s in self.sizes) or self.file_size <= 0:
            raise WorkloadError("sizes must be positive")
        if max(self.sizes) > self.file_size:
            raise WorkloadError("a size class exceeds the file")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise WorkloadError(f"bad weights {self.weights}")
        if self.ops_per_proc < 1 or self.nproc < 1:
            raise WorkloadError("counts must be >= 1")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError(f"bad read fraction {self.read_fraction}")
        if self.align <= 0:
            raise WorkloadError("bad alignment")

    def label(self) -> str:
        return f"mixedsize[n={self.nproc},ops={self.ops_per_proc}]"

    def setup(self, system: System) -> None:
        system.shared_mount().create(f"mixedsize.{self.pid_base}",
                                     self.file_size)
        self._rngs = system.rng.spawn_many("mixedsize-proc", self.nproc)

    def processes(self, system: System) -> list[tuple[int, Generator]]:
        return [(self.pid_base + pid, self._proc(system, pid))
                for pid in range(self.nproc)]

    def _pick_size(self, rng) -> int:
        total = sum(self.weights)
        mark = rng.uniform(0.0, total)
        acc = 0.0
        for size, weight in zip(self.sizes, self.weights):
            acc += weight
            if mark < acc:
                return size
        return self.sizes[-1]

    def _proc(self, system: System, pid: int):
        real_pid = self.pid_base + pid
        lib = system.posix_for(real_pid)
        handle = lib.open(f"mixedsize.{self.pid_base}", real_pid)
        rng = self._rngs[pid]
        for _ in range(self.ops_per_proc):
            nbytes = self._pick_size(rng)
            max_slot = (self.file_size - nbytes) // self.align
            offset = rng.integers(0, max_slot + 1) * self.align
            if rng.uniform() < self.read_fraction:
                yield handle.pread(offset, nbytes)
            else:
                yield handle.pwrite(offset, nbytes)
        return self.ops_per_proc


@dataclass(frozen=True)
class ReplayOp:
    """One scripted operation for :class:`ReplayWorkload`."""

    pid: int
    op: str           # "read" | "write"
    offset: int
    nbytes: int
    think_before_s: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in ("read", "write"):
            raise WorkloadError(f"bad op {self.op!r}")
        if self.offset < 0 or self.nbytes <= 0:
            raise WorkloadError("bad offset/size")
        if self.think_before_s < 0:
            raise WorkloadError("negative think time")


@dataclass
class ReplayWorkload(Workload):
    """Replays an explicit per-process operation script.

    The sharpest tool for integration tests: the test author controls
    exactly which operations overlap, so expected union times and metric
    values can be computed by hand.
    """

    ops: Sequence[ReplayOp] = ()
    file_size: int = 16 * MiB
    name: str = field(default="replay", init=False)

    def __post_init__(self) -> None:
        if not self.ops:
            raise WorkloadError("replay needs at least one op")
        top = max(op.offset + op.nbytes for op in self.ops)
        if top > self.file_size:
            raise WorkloadError(
                f"ops reach {top}, beyond file size {self.file_size}"
            )

    def label(self) -> str:
        return f"replay[{len(self.ops)} ops]"

    def setup(self, system: System) -> None:
        system.shared_mount().create(f"replay.{self.pid_base}",
                                     self.file_size)

    def processes(self, system: System) -> list[tuple[int, Generator]]:
        by_pid: dict[int, list[ReplayOp]] = {}
        for op in self.ops:
            by_pid.setdefault(op.pid, []).append(op)
        return [(self.pid_base + pid, self._proc(system, pid, script))
                for pid, script in sorted(by_pid.items())]

    def _proc(self, system: System, pid: int, script: list[ReplayOp]):
        real_pid = self.pid_base + pid
        lib = system.posix_for(real_pid)
        handle = lib.open(f"replay.{self.pid_base}", real_pid)
        for op in script:
            if op.think_before_s > 0:
                yield system.engine.timeout(op.think_before_s)
            if op.op == "read":
                yield handle.pread(op.offset, op.nbytes)
            else:
                yield handle.pwrite(op.offset, op.nbytes)
        return len(script)
