"""Incremental interval union — the streaming form of the Fig. 3 sweep.

:class:`StreamingUnion` maintains the *canonical disjoint union* of
every interval it has seen, updated one interval (or one drained batch)
at a time, so the union I/O time — the T of ``BPS = B / T`` — is
available while records are still arriving.

Equality with the batch computation
-----------------------------------

The batch kernel (:func:`repro.core.intervals.merge_sweep`) produces
the canonical disjoint union: disjoint, start-sorted, with touching
intervals merged (the gap test is strict).  That union is *unique* for
a given input set and does not depend on arrival order.  The streaming
accumulator maintains exactly the same structure by insertion
(bisect + splice, merging any overlapping-or-touching neighbours), so
after the same intervals have been fed in **any order** its segment
array is element-for-element identical to the batch one.  Segment
endpoints are selected, never computed (only ``min``/``max`` of input
floats), so no rounding enters.  :meth:`union_time` then sums
``ends - starts`` with ``np.sum`` over the same float64 array the batch
path sums — pairwise summation over identical operands — making the
streamed total **bit-identical** to :func:`~repro.core.intervals.union_time`,
not merely close.  The Hypothesis property suite asserts ``==``.

Reorder buffer and watermark
----------------------------

Real completion streams deliver records out of start order (a long
request that started early finishes late).  Two cooperating mechanisms
absorb that:

- a **bounded reorder buffer** (min-heap on start, capacity
  ``reorder_capacity``) holds young intervals; they drain into the
  sealed segment structure in start order, which keeps the common case
  an O(1) append instead of a mid-list splice;
- a **watermark** — ``max(start seen) - watermark_lag``, or whatever
  :meth:`advance_watermark` pushed it to — is the promise that no
  future interval starts below it.  Draining follows the watermark;
  consumers (window emission in :mod:`repro.live.stream`) treat
  everything below the watermark as settled.

An interval arriving *below* the watermark is a **late record**: the
producer broke its ordering promise.  ``late_policy="merge"`` (default)
still folds it in exactly — the insertion path is order-independent, so
cumulative totals remain provably equal to batch — and counts it in
:attr:`late_records` so window-level consumers can re-emit;
``late_policy="raise"`` raises :class:`~repro.errors.LiveStreamError`
for pipelines that need the watermark contract enforced.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left, bisect_right

import numpy as np

from repro.core.intervals import merge_sweep
from repro.errors import LiveStreamError

LATE_POLICIES = ("merge", "raise")


class StreamingUnion:
    """Online union of I/O intervals, exact under any arrival order."""

    def __init__(self, *, reorder_capacity: int = 4096,
                 watermark_lag: float = 0.0,
                 late_policy: str = "merge") -> None:
        if reorder_capacity < 1:
            raise LiveStreamError(
                f"reorder capacity must be >= 1, got {reorder_capacity}")
        if watermark_lag < 0 or math.isnan(watermark_lag):
            raise LiveStreamError(f"bad watermark lag {watermark_lag}")
        if late_policy not in LATE_POLICIES:
            raise LiveStreamError(
                f"unknown late policy {late_policy!r}; "
                f"known: {', '.join(LATE_POLICIES)}")
        self.reorder_capacity = reorder_capacity
        self.watermark_lag = watermark_lag
        self.late_policy = late_policy
        #: Sealed canonical union: disjoint, sorted, touching merged.
        self._starts: list[float] = []
        self._ends: list[float] = []
        #: Young intervals not yet drained, min-heap on start.
        self._pending: list[tuple[float, float]] = []
        self._max_start = -math.inf
        self._watermark = -math.inf
        self.records_seen = 0
        self.late_records = 0
        #: Times the capacity bound forced the watermark past the
        #: oldest pending start — the explicit memory-bound degradation
        #: path (exactness is never at stake; windows settled under a
        #: forced watermark may need late corrections at finalize).
        self.forced_watermarks = 0
        self._finalized = False

    # -- ingest ------------------------------------------------------------

    def add(self, start: float, end: float) -> None:
        """Fold one interval in; may advance the watermark and drain."""
        if self._finalized:
            raise LiveStreamError("add() after finalize()")
        if math.isnan(start) or math.isnan(end):
            raise LiveStreamError(f"NaN interval ({start}, {end})")
        if end < start:
            raise LiveStreamError(
                f"interval ends before it starts: [{start}, {end}]")
        self.records_seen += 1
        if start < self._watermark:
            if self.late_policy == "raise":
                raise LiveStreamError(
                    f"late record: start {start} below watermark "
                    f"{self._watermark}")
            self.late_records += 1
            self._merge_one(start, end)
            return
        heapq.heappush(self._pending, (start, end))
        if start > self._max_start:
            self._max_start = start
            self._watermark = max(self._watermark,
                                  start - self.watermark_lag)
        # Capacity overflow forces the watermark forward: the buffer is
        # bounded, so the oldest pending start becomes settled.
        while len(self._pending) > self.reorder_capacity:
            oldest_start, oldest_end = heapq.heappop(self._pending)
            if oldest_start > self._watermark:
                self._watermark = oldest_start
                self.forced_watermarks += 1
            self._merge_one(oldest_start, oldest_end)
        self._drain()

    def add_batch(self, intervals) -> None:
        """Fold a whole (n, 2) array in one vectorised merge sweep.

        The bulk-ingest fast path: the batch is reduced to its own
        canonical union via :func:`~repro.core.intervals.merge_sweep`,
        then each resulting segment is inserted.  Watermark/lateness
        accounting matches feeding the rows through :meth:`add`
        one by one in start order.
        """
        arr = np.asarray(intervals, dtype=float)
        if arr.size == 0:
            return
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise LiveStreamError(
                f"add_batch needs an (n, 2) array, got shape {arr.shape}")
        if np.any(np.isnan(arr)):
            raise LiveStreamError("NaN in interval batch")
        if np.any(arr[:, 1] < arr[:, 0]):
            raise LiveStreamError("interval ends before it starts in batch")
        n = arr.shape[0]
        late = arr[:, 0] < self._watermark
        n_late = int(np.count_nonzero(late))
        if n_late and self.late_policy == "raise":
            raise LiveStreamError(
                f"{n_late} late record(s) in batch below watermark "
                f"{self._watermark}")
        self.records_seen += n
        self.late_records += n_late
        seg_starts, seg_ends = merge_sweep(arr)
        for s, e in zip(seg_starts.tolist(), seg_ends.tolist()):
            self._merge_one(s, e)
        top = float(arr[:, 0].max())
        if top > self._max_start:
            self._max_start = top
            self._watermark = max(self._watermark,
                                  top - self.watermark_lag)
        self._drain()

    def advance_watermark(self, to: float) -> None:
        """Promise that no future interval starts below ``to``."""
        if math.isnan(to):
            raise LiveStreamError("NaN watermark")
        if to > self._watermark:
            self._watermark = to
            self._drain()

    def finalize(self) -> float:
        """Seal the stream: drain everything, return the union time."""
        self._watermark = math.inf
        self._drain()
        self._finalized = True
        return self.union_time()

    # -- internals ---------------------------------------------------------

    def _drain(self) -> None:
        pending = self._pending
        while pending and pending[0][0] <= self._watermark:
            start, end = heapq.heappop(pending)
            self._merge_one(start, end)

    def _merge_one(self, start: float, end: float) -> None:
        """Insert one interval into the sealed canonical union."""
        starts, ends = self._starts, self._ends
        if not starts or start > ends[-1]:
            # Common case under near-sorted drains: strictly after the
            # last sealed segment (touching extends instead).
            starts.append(start)
            ends.append(end)
            return
        # Segments overlapping-or-touching [start, end]: every segment
        # with segment.start <= end and segment.end >= start.
        lo = bisect_left(ends, start)
        hi = bisect_right(starts, end)
        if lo == hi:
            # Falls entirely in a gap: plain insertion.
            starts.insert(lo, start)
            ends.insert(lo, end)
            return
        new_start = min(start, starts[lo])
        new_end = max(end, ends[hi - 1])
        starts[lo:hi] = [new_start]
        ends[lo:hi] = [new_end]

    # -- queries -----------------------------------------------------------

    @property
    def watermark(self) -> float:
        """Highest settled start time (-inf before the first record)."""
        return self._watermark

    @property
    def pending_records(self) -> int:
        """Intervals still in the reorder buffer."""
        return len(self._pending)

    def segments(self) -> np.ndarray:
        """The current canonical union as an (m, 2) array (copy).

        Flushes the reorder buffer into the sealed structure first —
        harmless, the buffer is purely an append optimisation — so the
        result reflects *every* interval seen so far.
        """
        self._flush_pending()
        return np.column_stack((
            np.asarray(self._starts, dtype=float),
            np.asarray(self._ends, dtype=float),
        )).reshape(-1, 2)

    def union_time(self) -> float:
        """Union time of everything seen so far (exact at any moment)."""
        self._flush_pending()
        if not self._starts:
            return 0.0
        starts = np.asarray(self._starts, dtype=float)
        ends = np.asarray(self._ends, dtype=float)
        return float(np.sum(ends - starts))

    def _flush_pending(self) -> None:
        # Does NOT move the watermark: flushing early only gives up the
        # append fast path, never correctness (insertion is exact).
        pending = self._pending
        while pending:
            start, end = heapq.heappop(pending)
            self._merge_one(start, end)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<StreamingUnion n={self.records_seen} "
            f"segments={len(self._starts)} pending={len(self._pending)} "
            f"watermark={self._watermark:.6g} late={self.late_records}>"
        )
