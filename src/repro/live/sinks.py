"""Pluggable telemetry sinks for the live metric stream.

A sink is anything with ``emit(event: dict)`` and (optionally)
``close()``; the stream pushes plain-dict events — ``window``,
``snapshot``, ``anomaly``, ``final`` — so sinks stay decoupled from the
metric machinery.  Three implementations ship:

- :class:`MemorySink` — keeps events in a list (tests, notebooks);
- :class:`JsonlSink` — one JSON object per line, append-structured, the
  same shape a downstream collector would tail;
- :class:`PrometheusSink` — Prometheus-style text exposition rewritten
  atomically on every update, the node-exporter "textfile collector"
  pattern: point a scraper at the file and the run's live gauges show
  up under ``repro_live_*``.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import IO

from repro.errors import LiveStreamError

#: Event fields exported as Prometheus gauges (cumulative families).
_PROM_GAUGES = (
    ("bps", "repro_live_bps", "Blocks per second (paper Eq. 1)"),
    ("iops", "repro_live_iops", "Application operations per second"),
    ("bandwidth", "repro_live_bandwidth_bytes", "Bytes per second"),
    ("arpt", "repro_live_arpt_seconds", "Average response time"),
    ("io_time", "repro_live_union_io_time_seconds",
     "Union (overlap-collapsed) I/O time"),
    ("ops", "repro_live_ops_total", "Application operations seen"),
    ("blocks", "repro_live_blocks_total", "Application blocks seen"),
)


class MemorySink:
    """Collects events in memory; the test/notebook sink."""

    def __init__(self) -> None:
        self.events: list[dict] = []
        self.closed = False

    def emit(self, event: dict) -> None:
        if self.closed:
            raise LiveStreamError("emit() on a closed sink")
        self.events.append(dict(event))

    def close(self) -> None:
        self.closed = True

    def of_type(self, kind: str) -> list[dict]:
        """Events of one type, in emission order."""
        return [e for e in self.events if e.get("type") == kind]


class JsonlSink:
    """Streams events as JSON lines to a path or open text handle."""

    def __init__(self, destination: str | Path | IO[str]) -> None:
        if isinstance(destination, (str, Path)):
            self._handle: IO[str] = open(destination, "w")
            self._owns = True
        else:
            self._handle = destination
            self._owns = False
        self.events_written = 0

    def emit(self, event: dict) -> None:
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self.events_written += 1

    def close(self) -> None:
        self._handle.flush()
        if self._owns:
            self._handle.close()


class PrometheusSink:
    """Maintains a Prometheus text-exposition file of the live gauges.

    Every ``window``/``snapshot``/``final`` event rewrites the file
    (write-then-rename, so a scraper never reads a torn exposition)
    with the latest cumulative gauges plus the most recent window's
    figures labelled ``{scope="window"}``.  Anomalies increment
    ``repro_live_anomalies_total``.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._latest: dict = {}
        self._latest_window: dict = {}
        self.anomaly_count = 0

    def emit(self, event: dict) -> None:
        kind = event.get("type")
        if kind == "anomaly":
            self.anomaly_count += 1
        elif kind == "window":
            self._latest_window = event
        elif kind in ("snapshot", "final"):
            self._latest = event
        self._rewrite()

    def close(self) -> None:
        self._rewrite()

    def _format(self, value) -> str:
        value = float(value)
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)

    def _rewrite(self) -> None:
        lines: list[str] = []
        for field, name, help_text in _PROM_GAUGES:
            wrote_help = False
            for scope, event in (("cumulative", self._latest),
                                 ("window", self._latest_window)):
                if field not in event:
                    continue
                if not wrote_help:
                    lines.append(f"# HELP {name} {help_text}")
                    lines.append(f"# TYPE {name} gauge")
                    wrote_help = True
                lines.append(
                    f'{name}{{scope="{scope}"}} '
                    f"{self._format(event[field])}")
        lines.append("# HELP repro_live_anomalies_total "
                     "Windows flagged by the BPS anomaly detector")
        lines.append("# TYPE repro_live_anomalies_total counter")
        lines.append(f"repro_live_anomalies_total {self.anomaly_count}")
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text("\n".join(lines) + "\n")
        os.replace(tmp, self.path)
