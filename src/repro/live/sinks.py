"""Pluggable telemetry sinks for the live metric stream.

A sink is anything with ``emit(event: dict)`` and (optionally)
``close()``; the stream pushes plain-dict events — ``window``,
``snapshot``, ``anomaly``, ``final`` — so sinks stay decoupled from the
metric machinery.  Three implementations ship:

- :class:`MemorySink` — keeps events in a list (tests, notebooks);
- :class:`JsonlSink` — one JSON object per line, append-structured, the
  same shape a downstream collector would tail;
- :class:`PrometheusSink` — Prometheus-style text exposition rewritten
  atomically on every update, the node-exporter "textfile collector"
  pattern: point a scraper at the file and the run's live gauges show
  up under ``repro_live_*``.

Telemetry must never corrupt the measurement: :class:`FailSafeSink`
wraps any sink in an error policy (``raise`` | ``warn`` — warn and
drop the event | ``disable`` — warn and stop writing after N
consecutive failures), so a full disk or a dead scrape target degrades
the telemetry path while the metric stream itself stays exact.
:class:`MetricStream` applies the policy via its ``sink_errors``
argument.
"""

from __future__ import annotations

import json
import math
import os
import warnings
from pathlib import Path
from typing import IO

from repro.errors import LiveStreamError

#: Valid ``sink_errors`` policies, in escalation order.
SINK_ERROR_POLICIES = ("raise", "warn", "disable")

#: Event fields exported as Prometheus gauges (cumulative families).
_PROM_GAUGES = (
    ("bps", "repro_live_bps", "Blocks per second (paper Eq. 1)"),
    ("iops", "repro_live_iops", "Application operations per second"),
    ("bandwidth", "repro_live_bandwidth_bytes", "Bytes per second"),
    ("arpt", "repro_live_arpt_seconds", "Average response time"),
    ("io_time", "repro_live_union_io_time_seconds",
     "Union (overlap-collapsed) I/O time"),
    ("ops", "repro_live_ops_total", "Application operations seen"),
    ("blocks", "repro_live_blocks_total", "Application blocks seen"),
)


def atomic_write_text(path: Path, text: str) -> None:
    """Durable atomic file replace: write temp, fsync, rename.

    The textfile-collector contract: a reader must never observe a
    torn or stale exposition.  The fsync *before* the rename matters —
    without it a crash between write and rename can leave the rename
    durable while the data is not, i.e. a stale scrape file.
    """
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _format_prom_value(value) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _format_prom_labels(labels: dict) -> str:
    return ",".join(f'{k}="{v}"' for k, v in labels.items())


def _normalize_state(state) -> tuple:
    """Pad a legacy 4-tuple state with ``last_severity=None``."""
    state = tuple(state)
    if len(state) == 4:
        return state + (None,)
    return state


def format_prometheus(states, *, prefix_help: bool = True) -> str:
    """Render Prometheus text exposition for one or more metric states.

    ``states`` is an iterable of ``(labels, latest, latest_window,
    anomaly_count, last_severity)`` tuples — one per exported stream (a
    single run for :class:`PrometheusSink`, one per tenant for the
    ``bps serve`` scrape endpoint).  ``labels`` is a dict of extra
    label pairs (e.g. ``{"tenant": "a"}``) merged before the ``scope``
    label; ``last_severity`` is the most recent anomaly's severity
    (``math.inf`` for a stalled window, None when nothing has flagged
    yet — the gauge is omitted).  Legacy 4-tuples without the severity
    slot are accepted.  The file sink and the HTTP endpoint both call
    this, so the two expositions are identical by construction.
    """
    states = [_normalize_state(state) for state in states]
    lines: list[str] = []
    for field, name, help_text in _PROM_GAUGES:
        wrote_help = False
        for labels, latest, latest_window, _count, _sev in states:
            for scope, event in (("cumulative", latest),
                                 ("window", latest_window)):
                if field not in event:
                    continue
                if not wrote_help:
                    if prefix_help:
                        lines.append(f"# HELP {name} {help_text}")
                        lines.append(f"# TYPE {name} gauge")
                    wrote_help = True
                pairs = _format_prom_labels(
                    {**labels, "scope": scope})
                lines.append(f"{name}{{{pairs}}} "
                             f"{_format_prom_value(event[field])}")
    # Anomaly families: the historical repro_live_anomalies_total name,
    # its dashboard-facing alias repro_anomalies_total, and the latest
    # flag's severity (+Inf = fully stalled window) so alerting can key
    # on flags rather than re-deriving drops from raw BPS.
    for name in ("repro_live_anomalies_total", "repro_anomalies_total"):
        if prefix_help:
            lines.append(f"# HELP {name} "
                         "Windows flagged by the BPS anomaly detector")
            lines.append(f"# TYPE {name} counter")
        for labels, _latest, _latest_window, count, _sev in states:
            pairs = _format_prom_labels(labels)
            suffix = f"{{{pairs}}}" if pairs else ""
            lines.append(f"{name}{suffix} {count}")
    wrote_help = False
    for labels, _latest, _latest_window, _count, severity in states:
        if severity is None:
            continue
        if not wrote_help and prefix_help:
            lines.append("# HELP repro_last_anomaly_severity "
                         "baseline/observed BPS of the most recent "
                         "flagged window (+Inf = stalled)")
            lines.append("# TYPE repro_last_anomaly_severity gauge")
            wrote_help = True
        pairs = _format_prom_labels(labels)
        suffix = f"{{{pairs}}}" if pairs else ""
        lines.append(f"repro_last_anomaly_severity{suffix} "
                     f"{_format_prom_value(severity)}")
    return "\n".join(lines) + "\n"


class FailSafeSink:
    """Error-policy wrapper around any sink.

    - ``policy="raise"`` — transparent: sink errors propagate (the
      pre-wrapper behaviour);
    - ``policy="warn"`` — each failing ``emit`` warns and drops that
      event; the sink keeps being tried (a transient full disk may
      recover);
    - ``policy="disable"`` — like ``warn`` until ``max_failures``
      *consecutive* failures, then the sink is disabled for the rest of
      the run (a permanently dead target shouldn't warn once per
      window).

    A successful emit resets the consecutive-failure count.  ``close``
    failures follow the same policy.  Counters (``failures``,
    ``dropped_events``, ``disabled``, ``last_error``) are exposed for
    tests and post-run reporting.
    """

    def __init__(self, sink, *, policy: str = "warn",
                 max_failures: int = 5) -> None:
        if policy not in SINK_ERROR_POLICIES:
            raise LiveStreamError(
                f"sink error policy must be one of "
                f"{SINK_ERROR_POLICIES}, got {policy!r}")
        if max_failures < 1:
            raise LiveStreamError(
                f"max_failures must be >= 1, got {max_failures}")
        self.sink = sink
        self.policy = policy
        self.max_failures = max_failures
        self.failures = 0
        self.consecutive_failures = 0
        self.dropped_events = 0
        self.disabled = False
        self.last_error: Exception | None = None

    def _handle(self, exc: Exception, what: str) -> None:
        if self.policy == "raise":
            raise exc
        self.failures += 1
        self.consecutive_failures += 1
        self.last_error = exc
        inner = type(self.sink).__name__
        if self.policy == "disable" and \
                self.consecutive_failures >= self.max_failures:
            self.disabled = True
            warnings.warn(
                f"telemetry sink {inner} disabled after "
                f"{self.consecutive_failures} consecutive failures "
                f"(last: {type(exc).__name__}: {exc})", RuntimeWarning,
                stacklevel=3)
        else:
            warnings.warn(
                f"telemetry sink {inner} failed during {what}, "
                f"event dropped: {type(exc).__name__}: {exc}",
                RuntimeWarning, stacklevel=3)

    def emit(self, event: dict) -> None:
        if self.disabled:
            self.dropped_events += 1
            return
        try:
            self.sink.emit(event)
        except Exception as exc:  # noqa: BLE001 — isolate the stream
            self.dropped_events += 1
            self._handle(exc, "emit")
        else:
            self.consecutive_failures = 0

    def close(self) -> None:
        if self.disabled:
            return
        close = getattr(self.sink, "close", None)
        if close is None:
            return
        try:
            close()
        except Exception as exc:  # noqa: BLE001
            self._handle(exc, "close")


def apply_sink_policy(sinks, policy: str | None,
                      max_failures: int = 5) -> list:
    """Wrap every sink per ``policy`` (None/'raise' = no wrapping)."""
    sinks = list(sinks)
    if policy is None or policy == "raise":
        return sinks
    return [sink if isinstance(sink, FailSafeSink)
            else FailSafeSink(sink, policy=policy,
                              max_failures=max_failures)
            for sink in sinks]


class MemorySink:
    """Collects events in memory; the test/notebook sink."""

    def __init__(self) -> None:
        self.events: list[dict] = []
        self.closed = False

    def emit(self, event: dict) -> None:
        if self.closed:
            raise LiveStreamError("emit() on a closed sink")
        self.events.append(dict(event))

    def close(self) -> None:
        self.closed = True

    def of_type(self, kind: str) -> list[dict]:
        """Events of one type, in emission order."""
        return [e for e in self.events if e.get("type") == kind]


class JsonlSink:
    """Streams events as JSON lines to a path or open text handle."""

    def __init__(self, destination: str | Path | IO[str]) -> None:
        if isinstance(destination, (str, Path)):
            self._handle: IO[str] = open(destination, "w")
            self._owns = True
        else:
            self._handle = destination
            self._owns = False
        self.events_written = 0

    def emit(self, event: dict) -> None:
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self.events_written += 1

    def close(self) -> None:
        self._handle.flush()
        if self._owns:
            self._handle.close()


class PrometheusSink:
    """Maintains a Prometheus text-exposition file of the live gauges.

    Every ``window``/``snapshot``/``final`` event rewrites the file
    (write-then-rename, so a scraper never reads a torn exposition)
    with the latest cumulative gauges plus the most recent window's
    figures labelled ``{scope="window"}``.  Anomalies increment
    ``repro_live_anomalies_total`` (and its ``repro_anomalies_total``
    alias) and update ``repro_last_anomaly_severity``.
    """

    def __init__(self, path: str | Path,
                 labels: dict | None = None) -> None:
        self.path = Path(path)
        self.labels = dict(labels or {})
        self._latest: dict = {}
        self._latest_window: dict = {}
        self.anomaly_count = 0
        #: Severity of the most recent anomaly (inf = stalled window,
        #: None until something flags).
        self.last_severity: float | None = None

    def emit(self, event: dict) -> None:
        kind = event.get("type")
        if kind == "anomaly":
            self.anomaly_count += 1
            if event.get("stalled"):
                self.last_severity = math.inf
            elif event.get("severity") is not None:
                self.last_severity = float(event["severity"])
        elif kind == "window":
            self._latest_window = event
        elif kind in ("snapshot", "final"):
            self._latest = event
        self._rewrite()

    def close(self) -> None:
        self._rewrite()

    def state(self) -> tuple:
        """This sink's :func:`format_prometheus` state tuple."""
        return (self.labels, self._latest, self._latest_window,
                self.anomaly_count, self.last_severity)

    def _rewrite(self) -> None:
        atomic_write_text(self.path, format_prometheus([self.state()]))
