"""Sharded streaming engine: N worker processes, merged at the watermark.

Interval unions over disjoint segment lists merge *associatively*: the
canonical union of per-shard canonical unions is the canonical union of
every interval.  That algebra is the whole license for this module —
:class:`ShardedMetricStream` partitions columnar chunks across N forked
workers (the :class:`~repro.exec.duplex.DuplexWorker` transport the
supervised sweep pool uses), each holding a full per-shard
:class:`~repro.live.stream.MetricStream` (its own
:class:`~repro.live.union.StreamingUnion` plus window/breakdown
partials), and re-merges segment lists and window mass at the
watermark.  Cumulative union time, BPS, IOPS, and bandwidth stay
**bit-identical** to the batch pipeline and to a single-process stream
for *any* shard count (shard-count determinism); window float masses
and ARPT agree to float re-association, exactly as chunked single-
process ingest does (see :mod:`repro.live.chunk`).

Protocol (parent -> shard / shard -> parent, pickled over the pipe):

- ``("chunk", RecordChunk)`` — ingest one columnar sub-chunk;
- ``("sync", watermark | None)`` — advance to the external watermark
  and reply ``("synced", {"watermark", "snapshot"})``: the shard's
  settled-start watermark plus its full
  :meth:`~repro.live.stream.MetricStream.partial_state` (compacting —
  the snapshot stays O(open windows));
- ``("finalize", None)`` — reply ``("final", partial_state)`` and exit;
- ``("stop", None)`` — exit without replying.

The sync snapshot does triple duty: it is the merge input for emitting
settled windows to sinks/detector, the shard's crash checkpoint, and
the progress watermark.  The parent buffers every sub-chunk sent since
a shard's last snapshot; when a shard dies (pipe EOF, send failure, or
sync timeout), it is respawned, restored from the snapshot
(:meth:`~repro.live.stream.MetricStream.restore_state`), and the buffer
is replayed — deterministic ingest makes the replaysed shard
indistinguishable from one that never died.  Respawns draw on a bounded
budget, after which the stream fails loudly.

Chaos hook: the supervisor's ``REPRO_TEST_KILL_JOB`` spec is honoured
with shard indexes as job indexes — ``"1:exit"`` kills shard 1 on its
first chunk of generation 0; respawned generations run clean (the
supervisor's "retries run clean" convention).
"""

from __future__ import annotations

import math
from typing import Callable, Iterable

import numpy as np

from repro.core.intervals import merge_sweep
from repro.core.metrics import MetricSet
from repro.errors import LiveStreamError
from repro.exec.duplex import DuplexWorker, fork_available
from repro.exec.supervisor import _maybe_sabotage
from repro.live.sinks import apply_sink_policy
from repro.live.stream import (
    GroupStats,
    LiveResult,
    LiveSnapshot,
    MetricStream,
    WindowStats,
)
from repro.util.units import BLOCK_SIZE

PARTITIONS = ("hash", "time")


def _shard_main(conn, shard_index: int, generation: int,
                factory: Callable[[], MetricStream],
                snapshot: dict | None) -> None:
    """Shard worker loop (forked child; config inherited, not pickled)."""
    try:
        stream = factory()
        if snapshot is not None:
            stream.restore_state(snapshot)
        first_chunk = True
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            kind, payload = message
            if kind == "chunk":
                if first_chunk:
                    first_chunk = False
                    _maybe_sabotage(shard_index, generation)
                stream.push_chunk(payload)
            elif kind == "advance":
                stream.advance_watermark(payload)
            elif kind == "sync":
                if payload is not None:
                    stream.advance_watermark(payload)
                conn.send(("synced", {
                    "watermark": stream.watermark,
                    "snapshot": stream.partial_state(compact=True),
                }))
            elif kind == "finalize":
                conn.send(("final",
                           stream.partial_state(compact=True)))
                conn.close()
                return
            else:  # "stop"
                conn.close()
                return
    except BaseException as exc:  # noqa: BLE001 — surface, then die
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass


class _Shard:
    """Parent-side bookkeeping for one shard worker."""

    __slots__ = ("worker", "generation", "snapshot", "buffer",
                 "watermark")

    def __init__(self) -> None:
        self.worker: DuplexWorker | None = None
        self.generation = 0
        #: Last synced partial_state (None until the first sync).
        self.snapshot: dict | None = None
        #: Sub-chunks sent since the snapshot (the crash replay log).
        self.buffer: list = []
        self.watermark = -math.inf


class ShardedMetricStream:
    """Chunked live metrics fanned out over N worker processes.

    Accepts the same columnar :class:`~repro.live.chunk.RecordChunk`
    batches as :meth:`MetricStream.push_chunk` and settles the same
    :class:`~repro.live.stream.LiveResult`.  With ``shards <= 1`` or no
    ``fork`` support the engine degrades to one in-process
    :class:`MetricStream` — same API, no processes.

    ``partition`` is ``"hash"`` (``pid % shards`` — a process's records
    stay on one shard, so per-pid breakdowns never cross-merge) or
    ``"time"`` (window index of the record's start, round-robin — a
    window's mass lands mostly on one shard).  Any partition is correct;
    the choice only moves merge work around.
    """

    def __init__(
        self,
        *,
        window: float,
        shards: int = 2,
        block_size: int = BLOCK_SIZE,
        origin: float | None = None,
        partition: str = "hash",
        sync_every: int = 8,
        sync_timeout: float = 60.0,
        max_respawns: int = 4,
        max_pending: int | None = None,
        watermark_lag: float = 0.0,
        late_policy: str = "merge",
        sinks: Iterable = (),
        sink_errors: str | None = None,
        sink_max_failures: int = 5,
        detector=None,
        group_by: dict | None = None,
        group_columns: dict | None = None,
    ) -> None:
        if shards < 1:
            raise LiveStreamError(f"shard count must be >= 1, got {shards}")
        if partition not in PARTITIONS:
            raise LiveStreamError(
                f"unknown partition {partition!r}; "
                f"known: {', '.join(PARTITIONS)}")
        if sync_every < 1:
            raise LiveStreamError(
                f"sync_every must be >= 1, got {sync_every}")
        self.window = float(window)
        self.block_size = block_size
        self.origin = origin
        self.partition = partition
        self.sync_every = sync_every
        self.sync_timeout = sync_timeout
        self.max_respawns = max_respawns
        self.sinks = apply_sink_policy(sinks, sink_errors,
                                       sink_max_failures)
        self.detector = detector
        self.anomalies: list = []
        self._stream_kwargs = dict(
            window=window, block_size=block_size,
            max_pending=max_pending, watermark_lag=watermark_lag,
            late_policy=late_policy, group_by=group_by,
            group_columns=group_columns)
        self.shards = shards if fork_available() else 1
        self._inline: MetricStream | None = None
        if self.shards <= 1:
            self._inline = MetricStream(
                origin=origin, sinks=self.sinks, detector=detector,
                **self._stream_kwargs)
        self._shards = [_Shard() for _ in range(self.shards)]
        self._started = False
        self._chunks_since_sync = 0
        self._external_watermark: float | None = None
        self._next_emit: int | None = None
        self._respawns = 0
        self._finalized = False
        #: Parent-side exact tallies (maintained at push_chunk, so the
        #: monitoring surface never blocks on a worker round-trip).
        self._ops_pushed = 0
        self._bytes_pushed = 0

    # -- worker lifecycle --------------------------------------------------

    def _factory(self) -> Callable[[], MetricStream]:
        kwargs = dict(self._stream_kwargs, origin=self.origin)
        return lambda: MetricStream(**kwargs)

    def _start_workers(self, chunk) -> None:
        # The window grid must be identical on every shard, so the
        # origin is resolved *before* the first fork — from the first
        # delivered row, exactly as a single stream would.
        if self.origin is None:
            self.origin = float(chunk.start[0])
        factory = self._factory()
        for index, shard in enumerate(self._shards):
            shard.worker = DuplexWorker(
                _shard_main, (index, shard.generation, factory, None))
        self._started = True

    def _respawn(self, index: int, reason: str) -> None:
        shard = self._shards[index]
        self._respawns += 1
        if self._respawns > self.max_respawns:
            self.close()
            raise LiveStreamError(
                f"shard {index} died ({reason}) and the respawn budget "
                f"({self.max_respawns}) is spent")
        if shard.worker is not None:
            shard.worker.retire(terminate=True)
        shard.generation += 1
        shard.worker = DuplexWorker(
            _shard_main,
            (index, shard.generation, self._factory(), shard.snapshot))
        # Replay everything the lost worker had seen since its snapshot.
        for sub in shard.buffer:
            shard.worker.send(("chunk", sub))

    def _send(self, index: int, message) -> None:
        shard = self._shards[index]
        try:
            shard.worker.send(message)
        except (BrokenPipeError, OSError) as exc:
            self._respawn(index, f"send failed: {exc}")
            shard.worker.send(message)

    def _sync_shard(self, index: int) -> dict:
        wm = self._external_watermark
        while True:  # bounded by the respawn budget inside _respawn
            try:
                self._send(index, ("sync", wm))
                worker = self._shards[index].worker
                if not worker.poll(self.sync_timeout):
                    raise EOFError(
                        f"no sync reply in {self.sync_timeout:.3g}s")
                kind, payload = worker.recv()
                if kind == "error":
                    raise EOFError(f"shard error: {payload}")
                return payload
            except (EOFError, OSError) as exc:
                self._respawn(index, str(exc))

    # -- ingest ------------------------------------------------------------

    def _partition_keys(self, chunk) -> np.ndarray:
        if self.partition == "hash":
            return chunk.pid % self.shards
        index = np.floor(
            (chunk.start - self.origin) / self.window).astype(np.int64)
        return index % self.shards

    def push_chunk(self, chunk) -> None:
        """Partition one columnar chunk across the shard workers."""
        if self._finalized:
            raise LiveStreamError("push_chunk() after finalize()")
        if self._inline is not None:
            self._inline.push_chunk(chunk)
            return
        if len(chunk) == 0:
            return
        if not self._started:
            self._start_workers(chunk)
        self._ops_pushed += len(chunk)
        self._bytes_pushed += int(np.sum(chunk.nbytes))
        keys = self._partition_keys(chunk)
        for index, shard in enumerate(self._shards):
            sub = chunk.select(keys == index)
            if len(sub) == 0:
                continue
            self._send(index, ("chunk", sub))
            shard.buffer.append(sub)
        self._chunks_since_sync += 1
        if self._chunks_since_sync >= self.sync_every:
            self.sync()

    def advance_watermark(self, to: float) -> None:
        """Promise no future record starts below ``to``.

        Broadcast to the shards with the next sync — watermark progress
        is chunk-granular in the sharded engine by design.
        """
        if self._inline is not None:
            self._inline.advance_watermark(to)
            return
        if self._external_watermark is None or to > self._external_watermark:
            self._external_watermark = to

    def sync(self) -> None:
        """Checkpoint every shard and emit newly settled windows."""
        if self._inline is not None or not self._started:
            return
        for index, shard in enumerate(self._shards):
            payload = self._sync_shard(index)
            shard.snapshot = payload["snapshot"]
            shard.watermark = payload["watermark"]
            shard.buffer = []
        self._chunks_since_sync = 0
        self._emit_settled()

    # -- merge -------------------------------------------------------------

    def _index_of(self, t: float) -> int:
        return int(math.floor((t - self.origin) / self.window))

    def _window_bounds(self, index: int) -> tuple[float, float]:
        return (self.origin + index * self.window,
                self.origin + (index + 1) * self.window)

    def _states(self) -> list[dict]:
        return [s.snapshot for s in self._shards if s.snapshot is not None]

    def _merged_window_stats(self, index: int,
                             states: list[dict]) -> WindowStats:
        w0, w1 = self._window_bounds(index)
        ops = 0
        blocks = 0.0
        nbytes = 0.0
        dur_sum = 0.0
        segments = []
        for state in states:
            win = state["windows"].get(index)
            if win is None:
                continue
            ops += win["ops"]
            blocks += win["blocks"]
            nbytes += win["bytes"]
            dur_sum += win["dur_sum"]
            if len(win["segments"]):
                segments.append(win["segments"])
        io_time = 0.0
        if segments:
            combined = (segments[0] if len(segments) == 1
                        else np.concatenate(segments))
            starts, ends = merge_sweep(combined)
            io_time = float(np.sum(ends - starts))
        if io_time > 0.0:
            bps = blocks / io_time
            iops = ops / io_time
            bandwidth = nbytes / io_time
        else:
            bps = iops = bandwidth = 0.0
        arpt = dur_sum / ops if ops else 0.0
        return WindowStats(index=index, start=w0, end=w1, ops=ops,
                           blocks=blocks, bytes=nbytes, io_time=io_time,
                           bps=bps, iops=iops, bandwidth=bandwidth,
                           arpt=arpt)

    def _emit_settled(self) -> None:
        states = self._states()
        if len(states) < len(self._shards):
            return
        floor_wm = min(s.watermark for s in self._shards)
        if not math.isfinite(floor_wm):
            if floor_wm != math.inf:
                return
            settled = max((s["max_index"] for s in states
                           if s["max_index"] is not None),
                          default=None)
            if settled is None:
                return
            settled += 1
        else:
            settled = self._index_of(floor_wm)
        min_index = min((s["min_index"] for s in states
                         if s["min_index"] is not None), default=None)
        max_index = max((s["max_index"] for s in states
                         if s["max_index"] is not None), default=None)
        if min_index is None:
            return
        if self._next_emit is None:
            self._next_emit = min_index
        while self._next_emit < settled and self._next_emit <= max_index:
            stats = self._merged_window_stats(self._next_emit, states)
            self._next_emit += 1
            self._emit(stats.as_event())
            self._observe(stats)

    def _observe(self, stats: WindowStats) -> None:
        if self.detector is None:
            return
        anomaly = self.detector.observe(stats)
        if anomaly is not None:
            self.anomalies.append(anomaly)
            self._emit(anomaly.as_event())

    def _emit(self, event: dict) -> None:
        for sink in self.sinks:
            sink.emit(event)

    # -- snapshot hooks ----------------------------------------------------
    # The monitoring surface `bps serve` (and anything else holding a
    # long-lived sharded stream) reads between chunks.  Counters are
    # parent-side and exact; heap/lateness figures come from the last
    # shard checkpoints, i.e. they are sync-granular by design.

    @property
    def ops(self) -> int:
        """Records accepted so far (parent-side, exact)."""
        if self._inline is not None:
            return self._inline.ops
        return self._ops_pushed

    @property
    def nbytes(self) -> int:
        """Bytes accepted so far (parent-side, exact)."""
        if self._inline is not None:
            return self._inline.nbytes
        return self._bytes_pushed

    @property
    def late_records(self) -> int:
        """Late arrivals across shards, as of the last checkpoints."""
        if self._inline is not None:
            return self._inline.late_records
        return sum(s["late_records"] for s in self._states())

    @property
    def forced_watermarks(self) -> int:
        """Heap-bound forced watermarks, as of the last checkpoints."""
        if self._inline is not None:
            return self._inline.forced_watermarks
        return sum(s["forced_watermarks"] for s in self._states())

    @property
    def max_pending(self) -> int:
        """Per-shard reorder-heap bound (each shard holds its own heap)."""
        if self._inline is not None:
            return self._inline.max_pending
        configured = self._stream_kwargs["max_pending"]
        return 4096 if configured is None else configured

    @property
    def pending_records(self) -> int:
        """Records sent to shards but not yet checkpointed.

        The parent cannot see inside a worker's reorder heap without a
        round-trip, so "pending" is reported at its own granularity:
        everything pushed since the shards' last snapshots.
        """
        if self._inline is not None:
            return self._inline.pending_records
        return self._ops_pushed - sum(s["ops"] for s in self._states())

    def snapshot(self, *, emit: bool = False) -> LiveSnapshot:
        """Exact cumulative metrics at this instant.

        The sharded path checkpoints every worker first (one sync
        round-trip per shard) and merges their canonical union
        segments, so the figures are bit-identical to a single stream
        fed the same chunks — the same associative-merge argument
        :meth:`finalize` rests on.
        """
        if self._inline is not None:
            return self._inline.snapshot(emit=emit)
        self.sync()
        states = self._states()
        ops = sum(s["ops"] for s in states)
        blocks = sum(s["blocks"] for s in states)
        nbytes = sum(s["bytes"] for s in states)
        dur_sum = sum(s["dur_sum"] for s in states)
        seg_parts = [s["union_segments"] for s in states
                     if len(s["union_segments"])]
        t = 0.0
        if seg_parts:
            starts, ends = merge_sweep(
                seg_parts[0] if len(seg_parts) == 1
                else np.concatenate(seg_parts))
            t = float(np.sum(ends - starts))
        min_index = min((s["min_index"] for s in states
                         if s["min_index"] is not None), default=None)
        windows_closed = (0 if self._next_emit is None
                          or min_index is None
                          else self._next_emit - min_index)
        last_end = max((s["last_end"] for s in states), default=0.0)
        snap = LiveSnapshot(
            time=last_end if ops else 0.0,
            ops=ops, blocks=blocks, bytes=nbytes, io_time=t,
            bps=blocks / t if t > 0 else 0.0,
            iops=ops / t if t > 0 else 0.0,
            bandwidth=nbytes / t if t > 0 else 0.0,
            arpt=dur_sum / ops if ops else 0.0,
            windows_closed=windows_closed,
            late_records=sum(s["late_records"] for s in states),
        )
        if emit:
            self._emit(snap.as_event())
        return snap

    # -- settle ------------------------------------------------------------

    def finalize(self, *, exec_time: float | None = None,
                 label: str = "sharded") -> LiveResult:
        """Collect every shard's partial state and settle the merge."""
        if self._finalized:
            raise LiveStreamError("finalize() called twice")
        if self._inline is not None:
            self._finalized = True
            return self._inline.finalize(exec_time=exec_time, label=label)
        if not self._started:
            raise LiveStreamError("finalize() on an empty stream")
        states = []
        for index, shard in enumerate(self._shards):
            while True:
                try:
                    self._send(index, ("finalize", None))
                    if not shard.worker.poll(self.sync_timeout):
                        raise EOFError(
                            f"no finalize reply in "
                            f"{self.sync_timeout:.3g}s")
                    kind, payload = shard.worker.recv()
                    if kind == "error":
                        raise EOFError(f"shard error: {payload}")
                    break
                except (EOFError, OSError) as exc:
                    self._respawn(index, str(exc))
            states.append(payload)
            shard.snapshot = payload
            shard.buffer = []
            shard.worker.retire(terminate=False)
            shard.worker = None
        self._finalized = True
        return self._settle(states, exec_time, label)

    def _settle(self, states: list[dict], exec_time: float | None,
                label: str) -> LiveResult:
        ops = sum(s["ops"] for s in states)
        if ops == 0:
            raise LiveStreamError("finalize() on an empty stream")
        blocks = sum(s["blocks"] for s in states)
        nbytes = sum(s["bytes"] for s in states)
        dur_sum = sum(s["dur_sum"] for s in states)
        failed = sum(s["failed"] for s in states)
        retries = sum(s["retries"] for s in states)
        late = sum(s["late_records"] for s in states)
        late_windows = sum(s["late_window_updates"] for s in states)
        forced = sum(s["forced_watermarks"] for s in states)
        first_start = min(s["first_start"] for s in states)
        last_end = max(s["last_end"] for s in states)

        # The associative merge: canonical union of the shards'
        # canonical segment lists == canonical union of every interval,
        # summed over the identical segment array the batch sweep sums.
        seg_parts = [s["union_segments"] for s in states
                     if len(s["union_segments"])]
        if not seg_parts:
            raise LiveStreamError(
                "live metrics undefined: union I/O time is zero")
        starts, ends = merge_sweep(
            seg_parts[0] if len(seg_parts) == 1
            else np.concatenate(seg_parts))
        t = float(np.sum(ends - starts))
        if t <= 0.0:
            raise LiveStreamError(
                "live metrics undefined: union I/O time is zero")

        min_index = min(s["min_index"] for s in states
                        if s["min_index"] is not None)
        max_index = max(s["max_index"] for s in states
                        if s["max_index"] is not None)
        windows = tuple(self._merged_window_stats(i, states)
                        for i in range(min_index, max_index + 1))
        # Close out whatever the periodic syncs had not yet emitted.
        pending_from = (self._next_emit if self._next_emit is not None
                        else min_index)
        for stats in windows:
            if stats.index >= pending_from:
                self._emit(stats.as_event())
                self._observe(stats)
        # Re-judge already-emitted windows that late records corrected
        # (the shards track which): the parent detector observed their
        # provisional merge, and the corrected stats can cross the
        # drop threshold.  assess() leaves the baseline untouched.
        if self.detector is not None:
            dirty = set()
            for state in states:
                dirty.update(state.get("dirty_windows", ()))
            flagged = {a.window_index for a in self.anomalies}
            for index in sorted(dirty):
                if index >= pending_from or index in flagged or \
                        index < min_index:
                    continue
                anomaly = self.detector.assess(
                    self._merged_window_stats(index, states))
                if anomaly is not None:
                    self.anomalies.append(anomaly)
                    self._emit(anomaly.as_event())

        breakdowns: dict[str, tuple[GroupStats, ...]] = {}
        names: set[str] = set()
        for state in states:
            names.update(state["groups"])
        for name in names:
            merged: dict[str, dict] = {}
            for state in states:
                for key, grp in state["groups"].get(name, {}).items():
                    agg = merged.setdefault(
                        key, {"ops": 0, "blocks": 0, "bytes": 0,
                              "segments": []})
                    agg["ops"] += grp["ops"]
                    agg["blocks"] += grp["blocks"]
                    agg["bytes"] += grp["bytes"]
                    if len(grp["segments"]):
                        agg["segments"].append(grp["segments"])
            out = []
            for key in sorted(merged):
                agg = merged[key]
                if agg["segments"]:
                    seg = (agg["segments"][0]
                           if len(agg["segments"]) == 1
                           else np.concatenate(agg["segments"]))
                    gs, ge = merge_sweep(seg)
                    gt = float(np.sum(ge - gs))
                else:
                    gt = 0.0
                out.append(GroupStats(
                    key=key, ops=agg["ops"], blocks=agg["blocks"],
                    bytes=agg["bytes"], io_time=gt,
                    bps=agg["blocks"] / gt if gt > 0 else 0.0))
            breakdowns[name] = tuple(out)

        span = last_end - first_start
        exec_time = span if exec_time is None else exec_time
        if exec_time <= 0.0:
            exec_time = t
        metrics = MetricSet(
            iops=ops / t,
            bandwidth=nbytes / t,
            arpt=dur_sum / ops,
            bps=blocks / t,
            exec_time=exec_time,
            union_io_time=t,
            app_ops=ops,
            app_bytes=nbytes,
            app_blocks=blocks,
            fs_bytes=nbytes,
            block_size=self.block_size,
            label=label,
            extras={
                "failed_records": failed,
                "total_retries": retries,
                "late_records": late,
                "late_window_updates": late_windows,
                "forced_watermarks": forced,
                "shards": self.shards,
                "shard_respawns": self._respawns,
            },
        )
        result = LiveResult(
            metrics=metrics,
            windows=windows,
            anomalies=tuple(self.anomalies),
            breakdowns=breakdowns,
            late_records=late,
            late_window_updates=late_windows,
        )
        self._emit({
            "type": "final", "ops": ops, "blocks": blocks,
            "bytes": nbytes, "io_time": t, "bps": metrics.bps,
            "iops": metrics.iops, "bandwidth": metrics.bandwidth,
            "arpt": metrics.arpt, "exec_time": exec_time,
            "windows": len(windows), "anomalies": len(self.anomalies),
            "late_records": late,
        })
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
        return result

    # -- teardown ----------------------------------------------------------

    @property
    def respawns(self) -> int:
        """Shard workers respawned after crashes so far."""
        return self._respawns

    def close(self) -> None:
        """Kill every live worker (abnormal teardown; idempotent)."""
        for shard in self._shards:
            if shard.worker is not None:
                try:
                    shard.worker.retire(terminate=True)
                except Exception:  # pragma: no cover - teardown races
                    pass
                shard.worker = None

    def __enter__(self) -> "ShardedMetricStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
