"""Columnar record chunks — the wire format of the vectorised hot path.

The per-record streaming path (:meth:`~repro.live.stream.MetricStream.ingest`)
spends its time in Python bookkeeping, not in the union sweep: the
``bench_perf_streaming`` profile shows the bare
:class:`~repro.live.union.StreamingUnion` sustaining ~0.9M rec/s while
the full stream crawls at ~85k.  :class:`RecordChunk` closes that gap by
moving records in *columns*: one NumPy array per field, mirroring the
:meth:`~repro.core.records.TraceCollection.to_columns` layout, so
windows, breakdowns, and the union all update with array ops
(:meth:`~repro.live.stream.MetricStream.push_chunk`) instead of one
Python frame per record.

Exactness contract
------------------

Chunked ingest preserves the subsystem's headline guarantee: the
cumulative union time, BPS, IOPS, and bandwidth are **bit-identical** to
both per-record ingest and the batch
:func:`~repro.core.metrics.compute_metrics` — those quantities are
ratios of exact integer totals over the canonical-union time, and the
canonical union does not depend on how its inputs were grouped.  Two
quantities are exact only to float *re-association*: the cumulative
duration sum behind ARPT, and the overlap-proportional per-window
block/byte masses (a window whose mass spans a chunk boundary receives
``(a + b) + (c + d)`` where the per-record path computed
``((a + b) + c) + d``).  Per-window *I/O times* stay exact — clipped
interval endpoints are selected, never computed, and the per-window
union is order-independent.  The property suite pins all of this down
(``tests/live/test_chunked_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.records import IORecord, TraceCollection
from repro.errors import LiveStreamError

#: Columns a chunk carries, in wire order.  The subset of
#: :meth:`TraceCollection.to_columns` the live engine consumes (``file``
#: and ``layer`` are accepted on the wire and ignored: the tap feeds the
#: stream application-layer records only).
CHUNK_COLUMNS = ("pid", "nbytes", "start", "end", "op",
                 "offset", "success", "retries")


@dataclass
class RecordChunk:
    """A batch of completed I/O records, one NumPy array per field."""

    pid: np.ndarray
    nbytes: np.ndarray
    start: np.ndarray
    end: np.ndarray
    op: np.ndarray
    offset: np.ndarray
    success: np.ndarray
    retries: np.ndarray

    def __len__(self) -> int:
        return int(self.start.shape[0])

    @property
    def durations(self) -> np.ndarray:
        """Per-record response times (``end - start``)."""
        return self.end - self.start

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, *, pid, nbytes, start, end, op="read", offset=-1,
              success=True, retries=0) -> "RecordChunk":
        """Validated chunk from columns; scalars broadcast over rows.

        This is the one place chunk invariants are checked (non-negative
        sizes, ``end >= start``, no NaN) — :meth:`MetricStream.push_chunk`
        trusts its input, so every ingress route goes through here or
        through :meth:`from_trace` (whose collection already validated).
        """
        start_arr = np.ascontiguousarray(start, dtype=np.float64)
        if start_arr.ndim != 1:
            raise LiveStreamError("chunk columns must be 1-D")
        n = start_arr.shape[0]

        def numeric(values, dtype):
            arr = np.asarray(values, dtype=dtype)
            if arr.ndim == 0:
                return np.full(n, arr[()], dtype=dtype)
            if arr.shape != (n,):
                raise LiveStreamError(
                    f"chunk column length {arr.shape} != ({n},)")
            return arr

        end_arr = numeric(end, np.float64)
        nbytes_arr = numeric(nbytes, np.int64)
        retries_arr = numeric(retries, np.int32)
        if np.any(np.isnan(start_arr)) or np.any(np.isnan(end_arr)):
            raise LiveStreamError("NaN timestamps in chunk")
        if np.any(end_arr < start_arr):
            bad = int(np.argmax(end_arr < start_arr))
            raise LiveStreamError(
                f"chunk record {bad} ends before it starts: "
                f"[{start_arr[bad]}, {end_arr[bad]}]")
        if np.any(nbytes_arr < 0):
            raise LiveStreamError("negative record size in chunk")
        if np.any(retries_arr < 0):
            raise LiveStreamError("negative retry count in chunk")

        if isinstance(op, str):
            op_arr = np.full(n, op, dtype=object) if n else \
                np.empty(0, dtype=object)
        else:
            op_arr = np.asarray(op)
            if op_arr.shape != (n,):
                raise LiveStreamError(
                    f"chunk column length {op_arr.shape} != ({n},)")
        return cls(
            pid=numeric(pid, np.int64), nbytes=nbytes_arr,
            start=start_arr, end=end_arr, op=op_arr,
            offset=numeric(offset, np.int64),
            success=numeric(success, np.bool_), retries=retries_arr)

    @classmethod
    def from_records(cls, records) -> "RecordChunk":
        """Chunk from a sequence of :class:`IORecord` (the slow inverse)."""
        records = list(records)
        n = len(records)
        return cls.build(
            pid=np.fromiter((r.pid for r in records), np.int64, count=n),
            nbytes=np.fromiter((r.nbytes for r in records), np.int64,
                               count=n),
            start=np.fromiter((r.start for r in records), np.float64,
                              count=n),
            end=np.fromiter((r.end for r in records), np.float64, count=n),
            op=np.array([r.op for r in records], dtype=object),
            offset=np.fromiter((r.offset for r in records), np.int64,
                               count=n),
            success=np.fromiter((r.success for r in records), np.bool_,
                                count=n),
            retries=np.fromiter((r.retries for r in records), np.int32,
                                count=n))

    @classmethod
    def from_columns(cls, columns: dict) -> "RecordChunk":
        """Chunk from the :meth:`TraceCollection.to_columns` wire dict.

        Only ``pid``/``nbytes``/``start``/``end`` are required; the rest
        default like :meth:`build`.  Extra keys (``file``, ``layer``) are
        ignored, so a journal row round-trips unchanged.
        """
        kwargs = {}
        for name in CHUNK_COLUMNS:
            if name in columns:
                kwargs[name] = columns[name]
        for required in ("pid", "nbytes", "start", "end"):
            if required not in kwargs:
                raise LiveStreamError(
                    f"chunk columns missing {required!r}")
        return cls.build(**kwargs)

    def to_columns(self) -> dict[str, list]:
        """Plain-Python columns — the JSON-able wire inverse."""
        return {
            "pid": self.pid.tolist(),
            "nbytes": self.nbytes.tolist(),
            "start": self.start.tolist(),
            "end": self.end.tolist(),
            "op": [str(v) for v in self.op],
            "offset": self.offset.tolist(),
            "success": self.success.tolist(),
            "retries": self.retries.tolist(),
        }

    # -- slicing -----------------------------------------------------------

    def select(self, index) -> "RecordChunk":
        """Row subset by boolean mask or index array (no re-validation)."""
        return RecordChunk(
            pid=self.pid[index], nbytes=self.nbytes[index],
            start=self.start[index], end=self.end[index],
            op=self.op[index], offset=self.offset[index],
            success=self.success[index], retries=self.retries[index])

    def records(self) -> Iterator[IORecord]:
        """Materialise rows (fallback for non-columnar group keys)."""
        for k in range(len(self)):
            yield IORecord(
                pid=int(self.pid[k]), op=str(self.op[k]),
                nbytes=int(self.nbytes[k]), start=float(self.start[k]),
                end=float(self.end[k]), offset=int(self.offset[k]),
                success=bool(self.success[k]),
                retries=int(self.retries[k]))

    def intervals(self) -> np.ndarray:
        """(n, 2) float array of (start, end) pairs, in row order."""
        return np.column_stack((self.start, self.end))


def chunk_trace(trace: TraceCollection, *, chunk_size: int,
                order: str = "completion") -> Iterator[RecordChunk]:
    """Slice a trace into :class:`RecordChunk` batches.

    ``order`` is "completion" (end-time order — what a live tracer
    emits, and what ``bps watch`` replays) or "record" (storage order).
    The completion permutation matches
    :func:`repro.live.replay.completion_order` exactly: a stable sort on
    ``(end, start)``.
    """
    if chunk_size < 1:
        raise LiveStreamError(
            f"chunk size must be >= 1, got {chunk_size}")
    n = len(trace)
    if n == 0:
        return
    columns = {
        name: trace.column_array(name)
        for name in CHUNK_COLUMNS
    }
    if order == "completion":
        perm = np.lexsort((columns["start"], columns["end"]))
        columns = {name: arr[perm] for name, arr in columns.items()}
    elif order != "record":
        raise LiveStreamError(
            f"unknown chunk order {order!r}; known: completion, record")
    whole = RecordChunk(**columns)
    for lo in range(0, n, chunk_size):
        yield whole.select(slice(lo, min(lo + chunk_size, n)))
