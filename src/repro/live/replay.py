"""Replay a recorded trace through the live pipeline — ``bps watch``.

Any supported trace format becomes a completion stream: records are
delivered in **end-time order** (the order a real tracer would emit
them as operations finish), optionally paced against the wall clock so
a 30-second trace takes 30 seconds (``speed=1.0``), 3 seconds
(``speed=10``), or no time at all (``speed=None`` — the ``--speed
max`` mode CI uses to check streamed-equals-batch).

The watermark follows delivery: after delivering a record ending at
``e``, no future record *ends* before ``e``, so any future *start* is
above ``e - D`` where ``D`` is the longest request duration.  The
replayer tracks the running maximum duration and advances the
watermark to ``e - max_duration_seen`` — adaptive lag, no
configuration.  A pathological trace whose longest request appears
last still settles exactly: stragglers fold in late (cumulative
metrics are order-independent) and windows are corrected at finalize.

Pacing is **batched**: owed trace time accumulates across deliveries
and is slept only once it reaches :data:`PACE_QUANTUM` (wall seconds).
One ``sleep()`` per record made the replayer syscall-bound — at
``--speed max`` ambitions a 1M-record trace meant 1M timer calls for
gaps far below clock resolution; batching keeps total slept time
identical while making the sleep count proportional to replayed
duration, not record count.  ``chunk_size`` switches delivery to
columnar :meth:`~repro.live.stream.MetricStream.push_chunk` batches
(the vectorised path), and ``workers >= 2`` fans those chunks out over
a :class:`~repro.live.shard.ShardedMetricStream`; all three paths
settle the same cumulative metrics bit-for-bit.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Iterable

import numpy as np

from repro.core.records import TraceCollection
from repro.errors import LiveStreamError
from repro.live.chunk import chunk_trace
from repro.live.shard import ShardedMetricStream
from repro.live.sinks import apply_sink_policy
from repro.live.stream import LiveResult, MetricStream

#: Owed wall time below which the pacer keeps accumulating instead of
#: sleeping — one quantum-sized sleep replaces hundreds of sub-
#: millisecond ones without changing total slept time.
PACE_QUANTUM = 0.005


class _CallbackSink:
    """Adapter: forwards selected event types to a callable."""

    def __init__(self, callback: Callable[[dict], None],
                 kinds: tuple[str, ...]) -> None:
        self._callback = callback
        self._kinds = kinds

    def emit(self, event: dict) -> None:
        if event.get("type") in self._kinds:
            self._callback(event)


def completion_order(trace: TraceCollection):
    """The trace's records sorted by completion (end, then start)."""
    records = list(trace)
    records.sort(key=lambda r: (r.end, r.start))
    return records


class _Pacer:
    """Batched wall-clock pacing: sleep owed time in quanta."""

    __slots__ = ("speed", "sleep", "_previous_end", "_owed")

    def __init__(self, speed: float | None,
                 sleep: Callable[[float], None]) -> None:
        self.speed = speed
        self.sleep = sleep
        self._previous_end: float | None = None
        self._owed = 0.0

    def pace(self, end: float) -> None:
        """Account delivery up to trace time ``end``; sleep if owed."""
        if self.speed is None:
            return
        if self._previous_end is not None and end > self._previous_end:
            self._owed += (end - self._previous_end) / self.speed
        self._previous_end = end
        if self._owed >= PACE_QUANTUM:
            self.sleep(self._owed)
            self._owed = 0.0


def watch_trace(
    trace: TraceCollection,
    *,
    window: float | None = None,
    bins: int = 20,
    origin: float | None = None,
    block_size: int = 512,
    speed: float | None = None,
    watermark_lag: float | None = None,
    chunk_size: int | None = None,
    workers: int = 0,
    sinks: Iterable = (),
    sink_errors: str | None = None,
    sink_max_failures: int = 5,
    detector=None,
    attribute: bool = False,
    server_of: Callable | None = None,
    attributor=None,
    exec_time: float | None = None,
    on_window: Callable[[dict], None] | None = None,
    sleep: Callable[[float], None] = _time.sleep,
) -> LiveResult:
    """Stream ``trace`` through the live pipeline and settle it.

    ``window`` is the metric-window width in trace seconds; when None
    it is derived as span / ``bins``.  ``origin`` anchors window 0
    (default: the trace's first start).  ``speed`` is the pacing factor
    (None = as fast as possible); ``sleep`` is injectable for tests.
    ``watermark_lag`` replaces the adaptive watermark (delivered end
    minus the longest duration seen) with a fixed lag — the same
    contract :class:`~repro.live.tap.LiveTap` runs live, so a replay
    with the lag a live run used settles windows on identical record
    sets (the streaming/offline attribution parity tests rely on it).
    ``on_window`` is called with each ``window``/``anomaly`` event dict
    as it closes — the CLI's console renderer.

    ``attribute=True`` attaches an :class:`~repro.diagnose.attribute.
    Attributor` sized to the detector's baseline (or pass a prebuilt
    ``attributor``); flagged windows then carry ranked ``suspects``.
    ``server_of`` maps a record to its server key for server-level
    suspects (see :func:`repro.diagnose.offline.stripe_server_of`).
    Attribution needs the full record stream in one process and is
    rejected with ``workers >= 2``.

    ``chunk_size`` selects the vectorised ingest: records are delivered
    as columnar chunks of that many rows (still in completion order)
    instead of one at a time.  ``workers >= 2`` additionally shards the
    chunks across that many forked worker processes
    (:class:`~repro.live.shard.ShardedMetricStream`; falls back to one
    in-process stream where ``fork`` is unavailable).  Cumulative
    metrics are bit-identical on every path.
    """
    if len(trace) == 0:
        raise LiveStreamError("cannot watch an empty trace")
    if speed is not None and speed <= 0:
        raise LiveStreamError(f"speed must be > 0, got {speed}")
    if watermark_lag is not None and watermark_lag <= 0:
        raise LiveStreamError(
            f"watermark lag must be > 0, got {watermark_lag}")
    if chunk_size is not None and chunk_size < 1:
        raise LiveStreamError(f"chunk size must be >= 1, got {chunk_size}")
    if workers < 0:
        raise LiveStreamError(f"worker count must be >= 0, got {workers}")
    first, last = trace.span()
    if origin is None:
        origin = first
    if window is None:
        span = last - first
        if span <= 0:
            raise LiveStreamError(
                "trace has zero wall extent; pass an explicit window")
        window = span / max(1, bins)

    if attribute or attributor is not None:
        if workers >= 2:
            raise LiveStreamError(
                "attribution needs the full record stream in one "
                "process; it is not supported with workers >= 2")
        if attributor is None:
            from repro.diagnose.attribute import Attributor
            from repro.live.anomaly import BpsAnomalyDetector

            if detector is None:
                detector = BpsAnomalyDetector()
            attributor = Attributor.for_detector(
                detector, window=window, origin=origin,
                server_of=server_of)

    # Apply the fail-safe policy to caller sinks only; the on_window
    # callback is the CLI's own renderer and stays transparent.
    stream_sinks = apply_sink_policy(sinks, sink_errors,
                                     sink_max_failures)
    if on_window is not None:
        stream_sinks.append(_CallbackSink(on_window,
                                          ("window", "anomaly")))
    pacer = _Pacer(speed, sleep)

    # With an explicit fixed lag the stream's own start-driven
    # watermark must honor it too, or it would outrun the promise and
    # settle windows early (orphaning still-arriving records from
    # their attribution buckets).
    stream_lag = 0.0 if watermark_lag is None else watermark_lag
    if workers >= 2 or chunk_size is not None:
        size = chunk_size if chunk_size is not None else 4096
        if workers >= 2:
            stream = ShardedMetricStream(
                window=window, shards=workers, block_size=block_size,
                origin=origin, sinks=stream_sinks, detector=detector,
                watermark_lag=stream_lag)
        else:
            stream = MetricStream(
                window=window, block_size=block_size, origin=origin,
                late_policy="merge", sinks=stream_sinks,
                detector=detector, attributor=attributor,
                watermark_lag=stream_lag)
        max_duration = 0.0
        for chunk in chunk_trace(trace, chunk_size=size,
                                 order="completion"):
            chunk_last = float(chunk.end[-1])
            pacer.pace(chunk_last)
            top = float(np.max(chunk.end - chunk.start))
            if top > max_duration:
                max_duration = top
            stream.push_chunk(chunk)
            lag = (max_duration if watermark_lag is None
                   else watermark_lag)
            stream.advance_watermark(chunk_last - lag)
        return stream.finalize(exec_time=exec_time, label="watch")

    stream = MetricStream(
        window=window, block_size=block_size, origin=origin,
        late_policy="merge", sinks=stream_sinks, detector=detector,
        attributor=attributor, watermark_lag=stream_lag)
    max_duration = 0.0
    for record in completion_order(trace):
        pacer.pace(record.end)
        if record.duration > max_duration:
            max_duration = record.duration
        stream.ingest(record)
        lag = max_duration if watermark_lag is None else watermark_lag
        stream.advance_watermark(record.end - lag)
    return stream.finalize(exec_time=exec_time, label="watch")
