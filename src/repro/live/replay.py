"""Replay a recorded trace through the live pipeline — ``bps watch``.

Any supported trace format becomes a completion stream: records are
delivered in **end-time order** (the order a real tracer would emit
them as operations finish), optionally paced against the wall clock so
a 30-second trace takes 30 seconds (``speed=1.0``), 3 seconds
(``speed=10``), or no time at all (``speed=None`` — the ``--speed
max`` mode CI uses to check streamed-equals-batch).

The watermark follows delivery: after delivering a record ending at
``e``, no future record *ends* before ``e``, so any future *start* is
above ``e - D`` where ``D`` is the longest request duration.  The
replayer tracks the running maximum duration and advances the
watermark to ``e - max_duration_seen`` — adaptive lag, no
configuration.  A pathological trace whose longest request appears
last still settles exactly: stragglers fold in late (cumulative
metrics are order-independent) and windows are corrected at finalize.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Iterable

from repro.core.records import TraceCollection
from repro.errors import LiveStreamError
from repro.live.sinks import apply_sink_policy
from repro.live.stream import LiveResult, MetricStream


class _CallbackSink:
    """Adapter: forwards selected event types to a callable."""

    def __init__(self, callback: Callable[[dict], None],
                 kinds: tuple[str, ...]) -> None:
        self._callback = callback
        self._kinds = kinds

    def emit(self, event: dict) -> None:
        if event.get("type") in self._kinds:
            self._callback(event)


def completion_order(trace: TraceCollection):
    """The trace's records sorted by completion (end, then start)."""
    records = list(trace)
    records.sort(key=lambda r: (r.end, r.start))
    return records


def watch_trace(
    trace: TraceCollection,
    *,
    window: float | None = None,
    bins: int = 20,
    block_size: int = 512,
    speed: float | None = None,
    sinks: Iterable = (),
    sink_errors: str | None = None,
    sink_max_failures: int = 5,
    detector=None,
    exec_time: float | None = None,
    on_window: Callable[[dict], None] | None = None,
    sleep: Callable[[float], None] = _time.sleep,
) -> LiveResult:
    """Stream ``trace`` through a :class:`MetricStream` and settle it.

    ``window`` is the metric-window width in trace seconds; when None
    it is derived as span / ``bins``.  ``speed`` is the pacing factor
    (None = as fast as possible); ``sleep`` is injectable for tests.
    ``on_window`` is called with each ``window``/``anomaly`` event dict
    as it closes — the CLI's console renderer.
    """
    if len(trace) == 0:
        raise LiveStreamError("cannot watch an empty trace")
    if speed is not None and speed <= 0:
        raise LiveStreamError(f"speed must be > 0, got {speed}")
    first, last = trace.span()
    if window is None:
        span = last - first
        if span <= 0:
            raise LiveStreamError(
                "trace has zero wall extent; pass an explicit window")
        window = span / max(1, bins)

    # Apply the fail-safe policy to caller sinks only; the on_window
    # callback is the CLI's own renderer and stays transparent.
    stream_sinks = apply_sink_policy(sinks, sink_errors,
                                     sink_max_failures)
    if on_window is not None:
        stream_sinks.append(_CallbackSink(on_window,
                                          ("window", "anomaly")))
    stream = MetricStream(
        window=window, block_size=block_size, origin=first,
        late_policy="merge", sinks=stream_sinks, detector=detector)
    max_duration = 0.0
    previous_end: float | None = None
    for record in completion_order(trace):
        if speed is not None and previous_end is not None:
            gap = (record.end - previous_end) / speed
            if gap > 0:
                sleep(gap)
        previous_end = record.end
        if record.duration > max_duration:
            max_duration = record.duration
        stream.ingest(record)
        stream.advance_watermark(record.end - max_duration)
    return stream.finalize(exec_time=exec_time, label="watch")
