"""The live metric pipeline: windowed + cumulative BPS while records arrive.

:class:`MetricStream` consumes completed I/O records one at a time (from
the tracing-middleware tap or a trace replay) and maintains, online:

- **cumulative** metrics — B, N, bytes, and the streaming union time,
  so BPS/IOPS/bandwidth are exact at any moment and the *final*
  cumulative BPS is bit-identical to the batch
  :func:`~repro.core.metrics.compute_metrics` (see
  :mod:`repro.live.union` for the proof sketch; ARPT streams as
  running-sum/count and agrees to float-accumulation precision);
- a **windowed series** — fixed event-time windows of width ``window``;
  each record's blocks/bytes are spread over the windows it overlaps in
  proportion to overlap (the :func:`~repro.core.timeline.binned_bps`
  convention), and each window's I/O time is the union of the record
  intervals *clipped* to the window, so window BPS is blocks over
  *active* time and per-window I/O times sum exactly to the cumulative
  union time;
- **per-group breakdowns** — cumulative B/T/BPS keyed by pid and op out
  of the box, plus any caller-supplied grouping (the live tap adds a
  per-server key on parallel file systems).

Windows close when the watermark passes their right edge; closing emits
a ``window`` event to every attached sink and feeds the anomaly
detector.  A late record that lands in an already-closed window is
folded into the stored stats (cumulative figures stay exact) and
counted in :attr:`MetricStream.late_window_updates`; the closed-window
event already emitted is *provisional* in that case, and
:meth:`finalize` returns the corrected series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable

import numpy as np

from repro.core.intervals import merge_intervals, union_time
from repro.core.metrics import MetricSet
from repro.core.records import IORecord
from repro.errors import LiveStreamError
from repro.live.sinks import apply_sink_policy
from repro.live.union import StreamingUnion
from repro.util.units import BLOCK_SIZE, bytes_to_blocks


@dataclass(frozen=True)
class WindowStats:
    """One closed event-time window of the stream."""

    index: int
    start: float
    end: float
    #: Records *starting* in this window.
    ops: int
    #: Block/byte mass landing in the window (overlap-proportional).
    blocks: float
    bytes: float
    #: Union of record intervals clipped to the window (active time).
    io_time: float
    #: blocks / io_time (0.0 for an idle window).
    bps: float
    iops: float
    bandwidth: float
    #: Mean response time of records starting in the window (0.0 if none).
    arpt: float

    def as_event(self) -> dict:
        """The sink-facing representation."""
        return {
            "type": "window", "index": self.index,
            "t0": self.start, "t1": self.end, "ops": self.ops,
            "blocks": self.blocks, "bytes": self.bytes,
            "io_time": self.io_time, "bps": self.bps,
            "iops": self.iops, "bandwidth": self.bandwidth,
            "arpt": self.arpt,
        }


@dataclass(frozen=True)
class GroupStats:
    """Cumulative share of one group (one pid, one op, one server...)."""

    key: str
    ops: int
    blocks: int
    bytes: int
    io_time: float
    bps: float


@dataclass(frozen=True)
class LiveSnapshot:
    """Cumulative state of the stream at one instant."""

    time: float
    ops: int
    blocks: int
    bytes: int
    io_time: float
    bps: float
    iops: float
    bandwidth: float
    arpt: float
    windows_closed: int
    late_records: int

    def as_event(self) -> dict:
        return {"type": "snapshot", **self.__dict__}


@dataclass(frozen=True)
class LiveResult:
    """Everything :meth:`MetricStream.finalize` settles."""

    metrics: MetricSet
    windows: tuple[WindowStats, ...]
    anomalies: tuple
    breakdowns: dict[str, tuple[GroupStats, ...]]
    late_records: int
    late_window_updates: int


class _WindowAgg:
    __slots__ = ("ops", "blocks", "bytes", "dur_sum", "intervals",
                 "interval_arrays", "emitted")

    def __init__(self) -> None:
        self.ops = 0
        self.blocks = 0.0
        self.bytes = 0.0
        self.dur_sum = 0.0
        #: Clipped intervals from per-record ingest (tuples)...
        self.intervals: list[tuple[float, float]] = []
        #: ...and from chunked ingest ((k, 2) arrays, one per chunk).
        #: The window union is order-independent, so the split storage
        #: never changes the closed window's I/O time.
        self.interval_arrays: list[np.ndarray] = []
        self.emitted = False

    def combined_intervals(self) -> np.ndarray | None:
        """Every clipped interval of this window as one (n, 2) array."""
        parts: list[np.ndarray] = []
        if self.intervals:
            parts.append(np.asarray(self.intervals, dtype=float))
        parts.extend(self.interval_arrays)
        if not parts:
            return None
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def is_empty(self) -> bool:
        return (self.ops == 0 and not self.intervals
                and not self.interval_arrays and self.blocks == 0.0)


class _GroupAgg:
    __slots__ = ("ops", "blocks", "bytes", "union")

    def __init__(self) -> None:
        self.ops = 0
        self.blocks = 0
        self.bytes = 0
        self.union = StreamingUnion()


def _row_key_from_columns(fn) -> Callable[[IORecord], str]:
    """Row-level key for a group that only has a columnar key fn."""
    from repro.live.chunk import RecordChunk

    def key_of(record: IORecord) -> str:
        return str(fn(RecordChunk.from_records([record]))[0])

    return key_of


class MetricStream:
    """Online BPS/IOPS/bandwidth/ARPT over a stream of I/O records."""

    def __init__(
        self,
        *,
        window: float,
        block_size: int = BLOCK_SIZE,
        origin: float | None = None,
        reorder_capacity: int = 4096,
        max_pending: int | None = None,
        watermark_lag: float = 0.0,
        late_policy: str = "merge",
        sinks: Iterable = (),
        sink_errors: str | None = None,
        sink_max_failures: int = 5,
        detector=None,
        attributor=None,
        group_by: dict[str, Callable[[IORecord], str]] | None = None,
        group_columns: dict[str, Callable] | None = None,
    ) -> None:
        if not (window > 0) or math.isnan(window):
            raise LiveStreamError(f"window width must be > 0, got {window}")
        if block_size <= 0:
            raise LiveStreamError(f"bad block size {block_size}")
        if attributor is not None and attributor.window != float(window):
            raise LiveStreamError(
                f"attributor window {attributor.window} != stream "
                f"window {window}")
        self.window = float(window)
        self.block_size = block_size
        self.origin = origin
        self.attributor = attributor
        if attributor is not None and attributor.graph.origin is None:
            # Sync the graph's window grid now if the anchor is known;
            # otherwise ingest() pins both to the first record's start.
            attributor.graph.origin = origin
        # Bound method cache: the attributor feed runs once per
        # record inside ingest(); skipping two attribute chases there
        # is measurable at trace scale.
        self._attr_add = None if attributor is None else \
            attributor.graph.add_record
        # sink_errors None/'raise' keeps sinks transparent; 'warn' /
        # 'disable' wrap them fail-safe (repro.live.sinks.FailSafeSink)
        # so a dying sink cannot corrupt the metric stream.
        self.sinks = apply_sink_policy(sinks, sink_errors,
                                       sink_max_failures)
        self.detector = detector
        # ``max_pending`` is the explicit memory bound on the reorder
        # heap (the preferred spelling; ``reorder_capacity`` remains as
        # the historical alias).  When the heap would exceed it, the
        # watermark is *forced* forward past the oldest pending start —
        # a documented degradation: cumulative metrics stay exact (the
        # insertion path is order-independent), but records arriving
        # under the forced watermark count as late and their windows
        # are only corrected at finalize.  Trips are counted in
        # :attr:`forced_watermarks`.
        if max_pending is not None:
            reorder_capacity = max_pending
        self._union = StreamingUnion(reorder_capacity=reorder_capacity,
                                     watermark_lag=watermark_lag,
                                     late_policy=late_policy)
        # Cumulative counters.
        self._ops = 0
        self._blocks = 0
        self._bytes = 0
        self._dur_sum = 0.0
        self._failed = 0
        self._retries = 0
        self._first_start = math.inf
        self._last_end = -math.inf
        # Windowed state.  The emission pointer stays None until the
        # first closure, then advances monotonically: any record landing
        # below it is by construction late (its start is under the
        # watermark), so closed windows are never re-emitted.
        self._windows: dict[int, _WindowAgg] = {}
        self._next_emit: int | None = None
        self._min_index: int | None = None
        self._max_index: int | None = None
        #: Highest window index any record *started* in — windows past
        #: it hold only spillover from earlier starts, so their silence
        #: is end-of-trace, not a stall (see :meth:`_observe`).
        self._last_start_index: int | None = None
        self.late_window_updates = 0
        #: Emitted windows later corrected by late records; re-judged
        #: against the detector baseline at finalize so a flag earned
        #: by the corrected stats still reaches the sinks.
        self._dirty_windows: set[int] = set()
        #: window index -> the rolling baseline it was judged against
        #: when first observed (the finalize re-judgement must use the
        #: same baseline, not the end-of-run one).
        self._judged_baselines: dict[int, float] = {}
        # Breakdowns.
        keyed: dict[str, Callable[[IORecord], str]] = {
            "pid": lambda r: str(r.pid),
            "op": lambda r: r.op,
        }
        keyed.update(group_by or {})
        self._group_keys = keyed
        #: Names whose row-level key fn was caller-supplied: the chunked
        #: path may not substitute its builtin columnar pid/op keys.
        self._custom_groups = set(group_by or {})
        #: name -> fn(RecordChunk) -> per-row key array; the columnar
        #: counterpart of ``group_by`` for the chunked ingest path.
        self._group_columns = dict(group_columns or {})
        for name in self._group_columns:
            self._group_keys.setdefault(
                name, _row_key_from_columns(self._group_columns[name]))
        self._groups: dict[str, dict[str, _GroupAgg]] = {
            name: {} for name in self._group_keys
        }
        self.anomalies: list = []
        self._finalized = False

    # -- ingest ------------------------------------------------------------

    def ingest(self, record: IORecord) -> None:
        """Fold one completed I/O record into the stream."""
        if self._finalized:
            raise LiveStreamError("ingest() after finalize()")
        if self.origin is None:
            self.origin = record.start
        if self._attr_add is not None:
            self._attr_add(record)
        self._union.add(record.start, record.end)
        blocks = bytes_to_blocks(record.nbytes, self.block_size)
        self._ops += 1
        self._blocks += blocks
        self._bytes += record.nbytes
        self._dur_sum += record.duration
        if not record.success:
            self._failed += 1
        self._retries += record.retries
        if record.start < self._first_start:
            self._first_start = record.start
        if record.end > self._last_end:
            self._last_end = record.end
        for name, key_of in self._group_keys.items():
            agg = self._groups[name].setdefault(key_of(record), _GroupAgg())
            agg.ops += 1
            agg.blocks += blocks
            agg.bytes += record.nbytes
            agg.union.add(record.start, record.end)
        self._spread_into_windows(record, blocks)
        self._close_settled_windows()

    def push_chunk(self, chunk) -> None:
        """Fold one columnar :class:`~repro.live.chunk.RecordChunk` in.

        The vectorised ingest path: windows, breakdowns, and the union
        update with array ops — no per-record Python.  Equivalent to
        calling :meth:`ingest` on every row in row order, with two
        documented deviations (see :mod:`repro.live.chunk`): per-window
        float masses and the ARPT duration sum agree only to float
        re-association, and watermark/lateness accounting is chunk-
        granular (rows inside one chunk are never late relative to each
        other, and window events close at chunk boundaries — finalize
        settles the same exact series either way).

        The chunk is trusted: validation happens in
        :meth:`RecordChunk.build` / :meth:`RecordChunk.from_columns`.
        """
        if self._finalized:
            raise LiveStreamError("push_chunk() after finalize()")
        n = len(chunk)
        if n == 0:
            return
        if self.origin is None:
            self.origin = float(chunk.start[0])
        if self.attributor is not None:
            if self.attributor.graph.origin is None:
                self.attributor.graph.origin = self.origin
            self.attributor.add_chunk(chunk)
        self._union.add_batch(chunk.intervals())
        blocks = -(-chunk.nbytes // self.block_size)
        duration = chunk.end - chunk.start
        self._ops += n
        self._blocks += int(blocks.sum())
        self._bytes += int(chunk.nbytes.sum())
        self._dur_sum += float(duration.sum())
        self._failed += int(np.count_nonzero(~chunk.success))
        self._retries += int(chunk.retries.sum())
        first_start = float(chunk.start.min())
        last_end = float(chunk.end.max())
        if first_start < self._first_start:
            self._first_start = first_start
        if last_end > self._last_end:
            self._last_end = last_end
        self._spread_chunk_groups(chunk, blocks)
        self._spread_chunk_windows(chunk, blocks, duration)
        self._close_settled_windows()

    def advance_watermark(self, to: float) -> None:
        """Externally promise no future record starts below ``to``."""
        self._union.advance_watermark(to)
        self._close_settled_windows()

    # -- windows -----------------------------------------------------------

    def _index_of(self, t: float) -> int:
        return int(math.floor((t - self.origin) / self.window))

    def _window_bounds(self, index: int) -> tuple[float, float]:
        return (self.origin + index * self.window,
                self.origin + (index + 1) * self.window)

    def _spread_into_windows(self, record: IORecord, blocks: int) -> None:
        first = self._index_of(record.start)
        agg = self._windows.setdefault(first, _WindowAgg())
        agg.ops += 1
        agg.dur_sum += record.duration
        if agg.emitted:
            self.late_window_updates += 1
            self._dirty_windows.add(first)
        last_index = first
        if record.duration == 0.0:
            agg.blocks += blocks
            agg.bytes += record.nbytes
        else:
            last = self._index_of(record.end)
            # A record ending exactly on a window edge contributes
            # nothing to the window it "starts": clip to [start, end).
            if last > first and record.end == self._window_bounds(last)[0]:
                last -= 1
            last_index = last
            for index in range(first, last + 1):
                w0, w1 = self._window_bounds(index)
                lo = max(record.start, w0)
                hi = min(record.end, w1)
                if hi <= lo and index != first:
                    continue
                part = self._windows.setdefault(index, _WindowAgg())
                if part.emitted and index != first:
                    self.late_window_updates += 1
                    self._dirty_windows.add(index)
                fraction = max(hi - lo, 0.0) / record.duration
                part.blocks += blocks * fraction
                part.bytes += record.nbytes * fraction
                if hi > lo:
                    part.intervals.append((lo, hi))
        if self._min_index is None or first < self._min_index:
            self._min_index = first
        if self._max_index is None or last_index > self._max_index:
            self._max_index = last_index
        if self._last_start_index is None or \
                first > self._last_start_index:
            self._last_start_index = first

    def _spread_chunk_windows(self, chunk, blocks: np.ndarray,
                              duration: np.ndarray) -> None:
        """Vectorised twin of :meth:`_spread_into_windows`.

        Expands each record into its (record, window) overlap pairs with
        a repeat/arange trick, computes clip bounds and overlap
        fractions elementwise (the exact scalar expressions, so clipped
        endpoints are bit-identical), then accumulates per-window mass
        with ``bincount`` — which sums in pair order, i.e. record order.
        """
        origin = self.origin
        window = self.window
        start, end = chunk.start, chunk.end
        n = start.shape[0]
        first = np.floor((start - origin) / window).astype(np.int64)
        last = np.floor((end - origin) / window).astype(np.int64)
        # A record ending exactly on a window edge contributes nothing
        # to that window: clip to [start, end) — the scalar rule.
        edge = (last > first) & (end == origin + last * window)
        last = last - edge
        zero = duration == 0.0
        last = np.where(zero, first, last)

        counts = last - first + 1
        total = int(counts.sum())
        rec_of = np.repeat(np.arange(n), counts)
        offsets = np.arange(total) - np.repeat(
            np.cumsum(counts) - counts, counts)
        widx = first[rec_of] + offsets
        w0 = origin + widx * window
        w1 = origin + (widx + 1) * window
        lo = np.maximum(start[rec_of], w0)
        hi = np.minimum(end[rec_of], w1)
        dur_pairs = duration[rec_of]
        frac = np.divide(np.maximum(hi - lo, 0.0), dur_pairs,
                         out=np.zeros(total), where=dur_pairs > 0.0)
        is_first = offsets == 0
        # Zero-duration records put their whole mass in the start window.
        contrib = np.where(zero[rec_of], 1.0, frac)

        uniq, inv = np.unique(widx, return_inverse=True)
        nuniq = uniq.shape[0]
        blocks_mass = np.bincount(inv, weights=blocks[rec_of] * contrib,
                                  minlength=nuniq)
        bytes_mass = np.bincount(inv, weights=chunk.nbytes[rec_of] * contrib,
                                 minlength=nuniq)
        first_inv = inv[is_first]  # one pair per record, in record order
        ops_add = np.bincount(first_inv, minlength=nuniq)
        dur_add = np.bincount(first_inv, weights=duration,
                              minlength=nuniq)
        if self._next_emit is not None:
            relevant = is_first | (hi > lo)
            late_pairs = relevant & (widx < self._next_emit)
            self.late_window_updates += int(np.count_nonzero(late_pairs))
            if np.any(late_pairs):
                self._dirty_windows.update(
                    int(i) for i in np.unique(widx[late_pairs]))

        windows = self._windows
        for j, index in enumerate(uniq.tolist()):
            agg = windows.get(index)
            if agg is None:
                agg = windows[index] = _WindowAgg()
            agg.ops += int(ops_add[j])
            agg.blocks += float(blocks_mass[j])
            agg.bytes += float(bytes_mass[j])
            agg.dur_sum += float(dur_add[j])

        imask = hi > lo
        if np.any(imask):
            owner = widx[imask]
            clipped = np.column_stack((lo[imask], hi[imask]))
            order = np.argsort(owner, kind="stable")
            owner = owner[order]
            clipped = clipped[order]
            cuts = np.flatnonzero(np.diff(owner)) + 1
            heads = np.concatenate(([0], cuts))
            for head, part in zip(heads, np.split(clipped, cuts)):
                windows[int(owner[head])].interval_arrays.append(part)

        fmin = int(first.min())
        fmax = int(first.max())
        lmax = int(last.max())
        if self._min_index is None or fmin < self._min_index:
            self._min_index = fmin
        if self._max_index is None or lmax > self._max_index:
            self._max_index = lmax
        if self._last_start_index is None or \
                fmax > self._last_start_index:
            self._last_start_index = fmax

    def _chunk_groups(self, name: str, chunk) -> tuple[list[str], np.ndarray]:
        """(labels, per-row inverse) of group ``name`` over a chunk."""
        fn = self._group_columns.get(name)
        if fn is not None:
            uniq, inv = np.unique(np.asarray(fn(chunk)),
                                  return_inverse=True)
            return [str(v) for v in uniq], inv
        if name == "pid" and name not in self._custom_groups:
            uniq, inv = np.unique(chunk.pid, return_inverse=True)
            return [str(int(v)) for v in uniq], inv
        if name == "op" and name not in self._custom_groups:
            uniq, inv = np.unique(np.asarray(chunk.op),
                                  return_inverse=True)
            return [str(v) for v in uniq], inv
        # No columnar key: materialise rows for this group only (the
        # escape hatch for caller-supplied ``group_by`` callables).
        key_of = self._group_keys[name]
        keys = np.array([key_of(r) for r in chunk.records()],
                        dtype=object)
        uniq, inv = np.unique(keys, return_inverse=True)
        return [str(v) for v in uniq], inv

    def _spread_chunk_groups(self, chunk, blocks: np.ndarray) -> None:
        intervals = chunk.intervals()
        nbytes = chunk.nbytes
        for name in self._group_keys:
            labels, inv = self._chunk_groups(name, chunk)
            groups = self._groups[name]
            nuniq = len(labels)
            ops_counts = np.bincount(inv, minlength=nuniq)
            # float64 sums of int64 are exact below 2**53 — far beyond
            # any real chunk's block/byte totals.
            blocks_sums = np.bincount(inv, weights=blocks,
                                      minlength=nuniq)
            bytes_sums = np.bincount(inv, weights=nbytes,
                                     minlength=nuniq)
            for g, key in enumerate(labels):
                agg = groups.get(key)
                if agg is None:
                    agg = groups[key] = _GroupAgg()
                agg.ops += int(ops_counts[g])
                agg.blocks += int(blocks_sums[g])
                agg.bytes += int(bytes_sums[g])
                agg.union.add_batch(
                    intervals if nuniq == 1 else intervals[inv == g])

    def _close_settled_windows(self) -> None:
        if self._min_index is None:
            return
        watermark = self._union.watermark
        if not math.isfinite(watermark):
            if watermark == math.inf:
                settled = self._max_index + 1
            else:
                return
        else:
            settled = self._index_of(watermark)
        if self._next_emit is None:
            self._next_emit = self._min_index
        while self._next_emit < settled and \
                self._next_emit <= self._max_index:
            index = self._next_emit
            self._next_emit = index + 1
            stats = self._window_stats(index)
            agg = self._windows.setdefault(index, _WindowAgg())
            agg.emitted = True
            self._emit(stats.as_event())
            self._observe(stats)

    def _window_stats(self, index: int) -> WindowStats:
        w0, w1 = self._window_bounds(index)
        agg = self._windows.get(index)
        if agg is None or agg.is_empty():
            return WindowStats(index=index, start=w0, end=w1, ops=0,
                               blocks=0.0, bytes=0.0, io_time=0.0,
                               bps=0.0, iops=0.0, bandwidth=0.0, arpt=0.0)
        combined = agg.combined_intervals()
        io_time = union_time(combined) if combined is not None else 0.0
        if io_time > 0.0:
            bps = agg.blocks / io_time
            iops = agg.ops / io_time
            bandwidth = agg.bytes / io_time
        else:
            bps = iops = bandwidth = 0.0
        arpt = agg.dur_sum / agg.ops if agg.ops else 0.0
        return WindowStats(index=index, start=w0, end=w1, ops=agg.ops,
                           blocks=agg.blocks, bytes=agg.bytes,
                           io_time=io_time, bps=bps, iops=iops,
                           bandwidth=bandwidth, arpt=arpt)

    def _observe(self, stats: WindowStats) -> None:
        if self.detector is None and self.attributor is None:
            return
        if stats.ops == 0 and (self._last_start_index is None
                               or stats.index > self._last_start_index):
            # No request has *started* here or since: the run is
            # winding down (only spillover from earlier starts lands
            # past this point), so the quiet is end-of-trace, not a
            # stall worth flagging.  A mid-outage window always has a
            # later start on record by the time its watermark passes.
            return
        anomaly = None
        if self.detector is not None:
            # Remember the baseline this window is judged against, so
            # a late-record correction at finalize is re-judged on the
            # SAME footing (the end-of-run baseline may have drifted —
            # e.g. been inflated by a fail-fast storm — and would
            # otherwise flag healthy early windows retroactively).
            if len(self.detector._baseline) >= self.detector.min_history:
                self._judged_baselines[stats.index] = \
                    self.detector.baseline
            anomaly = self.detector.observe(stats)
        if self.attributor is not None:
            # The attributor follows the detector's verdict: healthy
            # windows feed its rolling baseline, flagged ones are
            # diffed and the evidence rides on the anomaly itself.
            suspects = self.attributor.observe_window(stats, anomaly)
            if anomaly is not None and suspects:
                anomaly = replace(anomaly, suspects=suspects)
        if anomaly is not None:
            self.anomalies.append(anomaly)
            self._emit(anomaly.as_event())

    def _reassess_dirty_windows(self) -> None:
        """Re-judge emitted windows that late records corrected.

        The detector observed those windows' *provisional* stats; the
        corrected stats can cross the drop threshold the provisional
        ones did not.  ``assess`` applies the flag rule without
        re-learning, so the baseline is not double-counted; windows the
        provisional pass already flagged are skipped.  Runs at
        finalize, before the ``final`` event, so the flag reaches the
        sinks before they close.  (The attributor's bucket for such a
        window is long pruned — corrected flags carry no suspects.)
        """
        if self.detector is None or not self._dirty_windows:
            return
        flagged = {a.window_index for a in self.anomalies}
        for index in sorted(self._dirty_windows):
            if index in flagged:
                continue
            baseline = self._judged_baselines.get(index)
            if baseline is None:
                continue  # window was never judged (warm-up / skipped)
            anomaly = self.detector.assess(self._window_stats(index),
                                           baseline=baseline)
            if anomaly is not None:
                self.anomalies.append(anomaly)
                self._emit(anomaly.as_event())

    def _emit(self, event: dict) -> None:
        for sink in self.sinks:
            sink.emit(event)

    # -- queries -----------------------------------------------------------

    @property
    def ops(self) -> int:
        return self._ops

    @property
    def blocks(self) -> int:
        return self._blocks

    @property
    def nbytes(self) -> int:
        return self._bytes

    @property
    def late_records(self) -> int:
        return self._union.late_records

    @property
    def watermark(self) -> float:
        """The union's settled-start watermark (-inf before data)."""
        return self._union.watermark

    @property
    def pending_records(self) -> int:
        """Intervals currently held in the bounded reorder heap."""
        return self._union.pending_records

    @property
    def max_pending(self) -> int:
        """The reorder heap's explicit memory bound."""
        return self._union.reorder_capacity

    @property
    def forced_watermarks(self) -> int:
        """Times the heap bound forced the watermark forward."""
        return self._union.forced_watermarks

    def union_io_time(self) -> float:
        """Streaming union time of everything ingested so far."""
        return self._union.union_time()

    def snapshot(self, *, emit: bool = False) -> LiveSnapshot:
        """Exact cumulative metrics at this instant."""
        t = self._union.union_time()
        snap = LiveSnapshot(
            time=self._last_end if self._ops else 0.0,
            ops=self._ops, blocks=self._blocks, bytes=self._bytes,
            io_time=t,
            bps=self._blocks / t if t > 0 else 0.0,
            iops=self._ops / t if t > 0 else 0.0,
            bandwidth=self._bytes / t if t > 0 else 0.0,
            arpt=self._dur_sum / self._ops if self._ops else 0.0,
            windows_closed=(0 if self._next_emit is None
                            else self._next_emit - self._min_index),
            late_records=self.late_records,
        )
        if emit:
            self._emit(snap.as_event())
        return snap

    def breakdown(self, name: str) -> tuple[GroupStats, ...]:
        """Cumulative per-group stats ('pid', 'op', or a custom group)."""
        try:
            groups = self._groups[name]
        except KeyError:
            known = ", ".join(sorted(self._groups))
            raise LiveStreamError(
                f"unknown group {name!r}; known: {known}") from None
        out = []
        for key in sorted(groups):
            agg = groups[key]
            t = agg.union.union_time()
            out.append(GroupStats(
                key=key, ops=agg.ops, blocks=agg.blocks, bytes=agg.bytes,
                io_time=t, bps=agg.blocks / t if t > 0 else 0.0))
        return tuple(out)

    # -- shard export ------------------------------------------------------

    def partial_state(self, *, compact: bool = False) -> dict:
        """Everything a shard must hand over for an exact global merge.

        Interval unions over disjoint segment lists merge associatively,
        so per-window interval sets and the cumulative union are
        exported as *canonical segments*: the parent re-merges the
        shards' segment lists and lands on the same canonical union —
        hence the same bit-exact union times — as a single stream fed
        every record.  Integer totals add exactly; float masses add to
        re-association precision.  The dict is picklable (NumPy arrays
        and scalars only) and doubles as the shard respawn snapshot
        consumed by :meth:`restore_state`.
        """
        windows = {}
        for index, agg in self._windows.items():
            combined = agg.combined_intervals()
            segments = (np.empty((0, 2)) if combined is None
                        else merge_intervals(combined))
            if compact:
                # Replace the accumulated clip lists with their merged
                # segments (union-of-unions: no information lost) so
                # repeated snapshots stay O(open windows), not O(run).
                agg.intervals = []
                agg.interval_arrays = (
                    [segments] if len(segments) else [])
            windows[int(index)] = {
                "ops": agg.ops, "blocks": agg.blocks,
                "bytes": agg.bytes, "dur_sum": agg.dur_sum,
                "segments": segments,
            }
        groups = {}
        for name, keyed in self._groups.items():
            groups[name] = {
                key: {"ops": agg.ops, "blocks": agg.blocks,
                      "bytes": agg.bytes,
                      "segments": agg.union.segments()}
                for key, agg in keyed.items()
            }
        return {
            "origin": self.origin,
            "ops": self._ops, "blocks": self._blocks,
            "bytes": self._bytes, "dur_sum": self._dur_sum,
            "failed": self._failed, "retries": self._retries,
            "first_start": self._first_start,
            "last_end": self._last_end,
            "union_segments": self._union.segments(),
            "union_watermark": self._union.watermark,
            "late_records": self.late_records,
            "late_window_updates": self.late_window_updates,
            "forced_watermarks": self.forced_watermarks,
            "min_index": self._min_index,
            "max_index": self._max_index,
            "last_start_index": self._last_start_index,
            "next_emit": self._next_emit,
            "dirty_windows": sorted(self._dirty_windows),
            "judged_baselines": sorted(self._judged_baselines.items()),
        } | {"windows": windows, "groups": groups}

    def restore_state(self, state: dict) -> None:
        """Rebuild from a :meth:`partial_state` snapshot (shard respawn).

        Only valid on a freshly constructed stream.  Segments re-enter
        through the same canonical-union insertion the live path uses,
        so a restored shard is indistinguishable from one that never
        died — the crash test replays the buffered chunks afterwards and
        asserts the merged result is still bit-identical to batch.
        """
        if self._finalized or self._ops:
            raise LiveStreamError("restore_state() on a used stream")
        self.origin = state["origin"]
        self._ops = state["ops"]
        self._blocks = state["blocks"]
        self._bytes = state["bytes"]
        self._dur_sum = state["dur_sum"]
        self._failed = state["failed"]
        self._retries = state["retries"]
        self._first_start = state["first_start"]
        self._last_end = state["last_end"]
        segments = state["union_segments"]
        if len(segments):
            self._union.add_batch(segments)
        self._union.advance_watermark(state["union_watermark"])
        self._union.records_seen = state["ops"]
        self._union.late_records = state["late_records"]
        self._union.forced_watermarks = state["forced_watermarks"]
        self.late_window_updates = state["late_window_updates"]
        self._min_index = state["min_index"]
        self._max_index = state["max_index"]
        self._last_start_index = state.get("last_start_index")
        self._next_emit = state["next_emit"]
        self._dirty_windows = set(state.get("dirty_windows", ()))
        self._judged_baselines = {
            int(index): value
            for index, value in state.get("judged_baselines", ())}
        for index, win in state["windows"].items():
            agg = _WindowAgg()
            agg.ops = win["ops"]
            agg.blocks = win["blocks"]
            agg.bytes = win["bytes"]
            agg.dur_sum = win["dur_sum"]
            if len(win["segments"]):
                agg.interval_arrays.append(
                    np.asarray(win["segments"], dtype=float))
            agg.emitted = (self._next_emit is not None
                           and index < self._next_emit)
            self._windows[int(index)] = agg
        for name, keyed in state["groups"].items():
            groups = self._groups.setdefault(name, {})
            for key, grp in keyed.items():
                agg = _GroupAgg()
                agg.ops = grp["ops"]
                agg.blocks = grp["blocks"]
                agg.bytes = grp["bytes"]
                if len(grp["segments"]):
                    agg.union.add_batch(grp["segments"])
                groups[key] = agg

    # -- settle ------------------------------------------------------------

    def finalize(self, *, exec_time: float | None = None,
                 label: str = "live") -> LiveResult:
        """Close every window, emit the final event, settle the result.

        ``exec_time`` defaults to the stream's wall span (first start to
        last end) — the same default ``bps analyze`` applies to recorded
        traces.  The returned window series is exact even when closed
        windows received late updates: stats are recomputed from the
        stored aggregates.
        """
        if self._finalized:
            raise LiveStreamError("finalize() called twice")
        if self._ops == 0:
            raise LiveStreamError("finalize() on an empty stream")
        t = self._union.finalize()
        self._close_settled_windows()
        self._reassess_dirty_windows()
        self._finalized = True
        if t <= 0.0:
            raise LiveStreamError(
                "live metrics undefined: union I/O time is zero")
        span = self._last_end - self._first_start
        exec_time = span if exec_time is None else exec_time
        if exec_time <= 0.0:
            # Degenerate zero-span traces: fall back to the trace's own
            # active time so the MetricSet invariant (exec_time > 0)
            # holds — mirrors what `bps analyze --exec-time` would need.
            exec_time = t
        windows = tuple(self._window_stats(i)
                        for i in range(self._min_index,
                                       self._max_index + 1))
        metrics = MetricSet(
            iops=self._ops / t,
            bandwidth=self._bytes / t,
            arpt=self._dur_sum / self._ops,
            bps=self._blocks / t,
            exec_time=exec_time,
            union_io_time=t,
            app_ops=self._ops,
            app_bytes=self._bytes,
            app_blocks=self._blocks,
            fs_bytes=self._bytes,
            block_size=self.block_size,
            label=label,
            extras={
                "failed_records": self._failed,
                "total_retries": self._retries,
                "late_records": self.late_records,
                "late_window_updates": self.late_window_updates,
                "forced_watermarks": self.forced_watermarks,
            },
        )
        result = LiveResult(
            metrics=metrics,
            windows=windows,
            anomalies=tuple(self.anomalies),
            breakdowns={name: self.breakdown(name)
                        for name in self._groups},
            late_records=self.late_records,
            late_window_updates=self.late_window_updates,
        )
        self._emit({
            "type": "final", "ops": self._ops, "blocks": self._blocks,
            "bytes": self._bytes, "io_time": t, "bps": metrics.bps,
            "iops": metrics.iops, "bandwidth": metrics.bandwidth,
            "arpt": metrics.arpt, "exec_time": exec_time,
            "windows": len(windows), "anomalies": len(self.anomalies),
            "late_records": self.late_records,
        })
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
        return result
