"""Feed the live pipeline from a running simulation.

:class:`LiveTap` subscribes to a system's
:class:`~repro.middleware.tracing.TraceRecorder` completion callbacks,
so every application-layer record flows into a
:class:`~repro.live.stream.MetricStream` at the simulated instant the
operation completes — the run observes its own BPS while in flight,
the same posture as tailing live Lustre/syscall stats instead of
parsing a trace afterwards.

Watermark: completions arrive in *end*-time order, so a long request
that started early lands out of start order — the reorder buffer's
case.  The tap advances the stream watermark from a passive engine
heartbeat (``now - watermark_lag``); the lag bounds how long a request
may stay in flight before its window is considered settled.  Records
that outlive the lag are folded in late (cumulative metrics stay
exact; the affected window is corrected at :meth:`LiveTap.result`).

The heartbeat is a pure observer: it schedules engine callbacks but
touches no simulated state and draws no randomness, so a tapped run
stays bit-identical to an untapped one (asserted in the tests), and it
stops rescheduling once the system's processes have finished so the
event loop still drains.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.records import IORecord
from repro.errors import LiveStreamError
from repro.live.stream import LiveResult, MetricStream
from repro.util.units import BLOCK_SIZE


class LiveTap:
    """Live metrics for one simulated run."""

    def __init__(
        self,
        system,
        *,
        window: float,
        block_size: int = BLOCK_SIZE,
        sinks: Iterable = (),
        sink_errors: str | None = None,
        sink_max_failures: int = 5,
        detector=None,
        attribute: bool = False,
        watermark_lag: float | None = None,
        heartbeat_s: float | None = None,
        snapshot_every: int = 0,
    ) -> None:
        if window <= 0:
            raise LiveStreamError(f"window width must be > 0, got {window}")
        #: Default lag: two windows of in-flight tolerance.
        self.watermark_lag = (2.0 * window if watermark_lag is None
                              else watermark_lag)
        group_by = {}
        server_of = None
        if system.pfs is not None:
            layout = system.pfs.default_layout
            server_of = _server_key(layout)
            group_by["server"] = server_of
        attributor = None
        if attribute:
            from repro.diagnose.attribute import Attributor
            from repro.live.anomaly import BpsAnomalyDetector

            if detector is None:
                detector = BpsAnomalyDetector()
            attributor = Attributor.for_detector(
                detector, window=window, origin=system.engine.now,
                server_of=server_of)
        self.stream = MetricStream(
            window=window,
            block_size=block_size,
            origin=system.engine.now,
            watermark_lag=self.watermark_lag,
            late_policy="merge",
            sinks=sinks,
            sink_errors=sink_errors,
            sink_max_failures=sink_max_failures,
            detector=detector,
            attributor=attributor,
            group_by=group_by,
        )
        self.system = system
        self.snapshot_every = snapshot_every
        self._records = 0
        self._closed = False
        system.recorder.subscribe(self._on_record)
        self._heartbeat_s = heartbeat_s
        if heartbeat_s is not None:
            if heartbeat_s <= 0:
                raise LiveStreamError(
                    f"heartbeat must be > 0, got {heartbeat_s}")
            system.engine.call_later(heartbeat_s, self._tick)

    # -- feed --------------------------------------------------------------

    def _on_record(self, record: IORecord) -> None:
        self.stream.ingest(record)
        self._records += 1
        if self.snapshot_every and \
                self._records % self.snapshot_every == 0:
            self.stream.snapshot(emit=True)

    def _tick(self) -> None:
        if self._closed:
            return
        engine = self.system.engine
        self.stream.advance_watermark(engine.now - self.watermark_lag)
        # Keep ticking only while application processes are alive —
        # an unconditional reschedule would keep the event loop from
        # ever draining.
        if engine.live_processes > 0:
            engine.call_later(self._heartbeat_s, self._tick)

    # -- settle ------------------------------------------------------------

    def result(self, *, exec_time: float | None = None,
               label: str = "live") -> LiveResult:
        """Detach from the recorder and settle the stream.

        ``exec_time`` should be the run's measured execution time when
        available (e.g. ``RunMeasurement.exec_time``); it defaults to
        the stream's own wall span.
        """
        if self._closed:
            raise LiveStreamError("result() called twice")
        self._closed = True
        self.system.recorder.unsubscribe(self._on_record)
        return self.stream.finalize(exec_time=exec_time, label=label)


def _server_key(layout):
    """Group key: the server holding a record's first stripe.

    A striped request touches several servers; attributing it to the
    one serving its first byte keeps the breakdown cheap and stable
    (requests at unknown offsets land in ``"?"``).
    """
    stripe_size = layout.stripe_size
    servers = layout.servers
    width = len(servers)

    def key_of(record: IORecord) -> str:
        if record.offset < 0:
            return "?"
        stripe = record.offset // stripe_size
        return f"server{servers[stripe % width]}"

    return key_of
