"""Online BPS anomaly detection over the windowed stream.

The detector watches closed windows and flags the ones whose BPS falls
beyond a configurable factor of a **rolling baseline** — the mean BPS
of the last ``history`` healthy windows.  Design choices, each load-
bearing for the fault-plan cross-check tests:

- the baseline only learns from windows it did *not* flag, so a long
  degradation (a crash window spanning several metric windows) cannot
  drag the baseline down to meet it;
- windows observed before ``min_history`` healthy samples exist are
  never flagged (warm-up: the first windows of a run define normal);
- an idle window (no ops, no active time) counts as BPS 0, which flags
  once a baseline exists — a silent stall mid-run is exactly the
  signature of a crash window with no failover path.

This mirrors how LASSi-style tooling derives time-windowed risk metrics
from live filesystem stats rather than from post-hoc trace analysis.

:meth:`BpsAnomalyDetector.assess` is the side-effect-free half of
:meth:`~BpsAnomalyDetector.observe`: it applies the flag rule against
the current baseline without learning from the window.  The stream
uses it at finalize to re-judge windows whose stats were corrected by
late records after their provisional close.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.errors import LiveStreamError


@dataclass(frozen=True)
class Anomaly:
    """One flagged window."""

    kind: str
    window_index: int
    window_start: float
    window_end: float
    bps: float
    baseline: float
    #: baseline / observed BPS (inf when the window was fully stalled).
    severity: float
    #: Ranked root-cause candidates (:class:`~repro.diagnose.Suspect`),
    #: attached when an attributor rides along with the detector.
    suspects: tuple = ()

    def as_event(self) -> dict:
        # A stalled window has severity == inf, which JSON cannot
        # carry (bare ``Infinity`` is invalid); ship the sentinel pair
        # ``severity: null, stalled: true`` instead.
        stalled = math.isinf(self.severity)
        event = {
            "type": "anomaly", "kind": self.kind,
            "index": self.window_index,
            "t0": self.window_start, "t1": self.window_end,
            "bps": self.bps, "baseline": self.baseline,
            "severity": None if stalled else self.severity,
            "stalled": stalled,
        }
        if self.suspects:
            event["suspects"] = [s.as_event() for s in self.suspects]
        return event

    def overlaps(self, start: float, end: float) -> bool:
        """Does the flagged window intersect [start, end)?"""
        return self.window_start < end and start < self.window_end


class BpsAnomalyDetector:
    """Rolling-baseline drop detector for window BPS."""

    def __init__(self, *, drop_factor: float = 3.0, history: int = 8,
                 min_history: int = 3) -> None:
        if drop_factor <= 1.0:
            raise LiveStreamError(
                f"drop factor must be > 1, got {drop_factor}")
        if history < 1 or min_history < 1 or min_history > history:
            raise LiveStreamError(
                f"bad history configuration ({history}, {min_history})")
        self.drop_factor = drop_factor
        self.min_history = min_history
        self._baseline: deque[float] = deque(maxlen=history)

    @property
    def history(self) -> int:
        """Rolling-baseline capacity (healthy windows remembered)."""
        return self._baseline.maxlen

    @property
    def baseline(self) -> float:
        """Current rolling-mean BPS (0.0 during warm-up)."""
        if not self._baseline:
            return 0.0
        return sum(self._baseline) / len(self._baseline)

    def assess(self, window, *,
               baseline: float | None = None) -> Anomaly | None:
        """Apply the flag rule to a window *without* learning from it.

        The pure judgement: used by :meth:`observe` and, at finalize,
        by the stream to re-judge windows corrected by late records
        after their provisional close (re-observing those would double-
        count them in the baseline).  ``baseline`` overrides the
        current rolling mean — the finalize path passes the baseline
        the window was *originally* judged against, so a late
        correction changes the verdict only if the window itself
        changed, never because the baseline moved on without it.
        """
        if baseline is None:
            if len(self._baseline) < self.min_history:
                return None
            baseline = self.baseline
        bps = window.bps
        if bps >= baseline / self.drop_factor:
            return None
        severity = (baseline / bps) if bps > 0 else float("inf")
        return Anomaly(
            kind="bps-drop",
            window_index=window.index,
            window_start=window.start,
            window_end=window.end,
            bps=bps, baseline=baseline, severity=severity)

    def observe(self, window) -> Anomaly | None:
        """Feed one closed :class:`~repro.live.stream.WindowStats`.

        Returns an :class:`Anomaly` if the window is flagged, else None
        (and the window's BPS joins the baseline).
        """
        anomaly = self.assess(window)
        if anomaly is None:
            self._baseline.append(window.bps)
        return anomaly
