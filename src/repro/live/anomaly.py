"""Online BPS anomaly detection over the windowed stream.

The detector watches closed windows and flags the ones whose BPS falls
beyond a configurable factor of a **rolling baseline** — the mean BPS
of the last ``history`` healthy windows.  Design choices, each load-
bearing for the fault-plan cross-check tests:

- the baseline only learns from windows it did *not* flag, so a long
  degradation (a crash window spanning several metric windows) cannot
  drag the baseline down to meet it;
- windows observed before ``min_history`` healthy samples exist are
  never flagged (warm-up: the first windows of a run define normal);
- an idle window (no ops, no active time) counts as BPS 0, which flags
  once a baseline exists — a silent stall mid-run is exactly the
  signature of a crash window with no failover path.

This mirrors how LASSi-style tooling derives time-windowed risk metrics
from live filesystem stats rather than from post-hoc trace analysis.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import LiveStreamError


@dataclass(frozen=True)
class Anomaly:
    """One flagged window."""

    kind: str
    window_index: int
    window_start: float
    window_end: float
    bps: float
    baseline: float
    #: baseline / observed BPS (inf when the window was fully stalled).
    severity: float

    def as_event(self) -> dict:
        return {
            "type": "anomaly", "kind": self.kind,
            "index": self.window_index,
            "t0": self.window_start, "t1": self.window_end,
            "bps": self.bps, "baseline": self.baseline,
            "severity": self.severity,
        }

    def overlaps(self, start: float, end: float) -> bool:
        """Does the flagged window intersect [start, end)?"""
        return self.window_start < end and start < self.window_end


class BpsAnomalyDetector:
    """Rolling-baseline drop detector for window BPS."""

    def __init__(self, *, drop_factor: float = 3.0, history: int = 8,
                 min_history: int = 3) -> None:
        if drop_factor <= 1.0:
            raise LiveStreamError(
                f"drop factor must be > 1, got {drop_factor}")
        if history < 1 or min_history < 1 or min_history > history:
            raise LiveStreamError(
                f"bad history configuration ({history}, {min_history})")
        self.drop_factor = drop_factor
        self.min_history = min_history
        self._baseline: deque[float] = deque(maxlen=history)

    @property
    def baseline(self) -> float:
        """Current rolling-mean BPS (0.0 during warm-up)."""
        if not self._baseline:
            return 0.0
        return sum(self._baseline) / len(self._baseline)

    def observe(self, window) -> Anomaly | None:
        """Feed one closed :class:`~repro.live.stream.WindowStats`.

        Returns an :class:`Anomaly` if the window is flagged, else None
        (and the window's BPS joins the baseline).
        """
        bps = window.bps
        if len(self._baseline) >= self.min_history:
            baseline = self.baseline
            threshold = baseline / self.drop_factor
            if bps < threshold:
                severity = (baseline / bps) if bps > 0 else float("inf")
                return Anomaly(
                    kind="bps-drop",
                    window_index=window.index,
                    window_start=window.start,
                    window_end=window.end,
                    bps=bps, baseline=baseline, severity=severity)
        self._baseline.append(bps)
        return None
