"""repro.live — streaming metrics: BPS while the run is in flight.

The offline methodology (gather every record, then one sort+merge
sweep, paper §III.B/Fig. 3) becomes an online pipeline:

- :mod:`repro.live.union` — :class:`StreamingUnion`, the incremental
  interval-union accumulator (bounded reorder buffer + watermark),
  provably — and bit-for-bit — equal to the batch
  :func:`~repro.core.intervals.union_time`;
- :mod:`repro.live.stream` — :class:`MetricStream`, per-window and
  cumulative BPS/IOPS/bandwidth/ARPT series with per-pid / per-op /
  per-server breakdowns;
- :mod:`repro.live.anomaly` — :class:`BpsAnomalyDetector`, rolling-
  baseline drop detection over closed windows;
- :mod:`repro.live.sinks` — pluggable telemetry sinks (in-memory,
  JSONL event stream, Prometheus-style text exposition) plus
  :class:`FailSafeSink`, the error-policy wrapper that keeps a dying
  sink from corrupting the metric stream;
- :mod:`repro.live.chunk` — :class:`RecordChunk`, the columnar wire
  format behind :meth:`MetricStream.push_chunk`, the vectorised bulk
  ingest path (~10x the per-record rate);
- :mod:`repro.live.shard` — :class:`ShardedMetricStream`, chunked
  ingest fanned out over N forked worker processes and re-merged at
  the watermark, bit-identical to batch at any shard count;
- :mod:`repro.live.tap` — :class:`LiveTap`, completion-callback feed
  from a running simulation;
- :mod:`repro.live.replay` — :func:`watch_trace`, the paced trace
  replayer behind ``bps watch``.
"""

from repro.live.anomaly import Anomaly, BpsAnomalyDetector
from repro.live.chunk import RecordChunk, chunk_trace
from repro.live.replay import completion_order, watch_trace
from repro.live.shard import ShardedMetricStream
from repro.live.sinks import (
    FailSafeSink,
    JsonlSink,
    MemorySink,
    PrometheusSink,
    apply_sink_policy,
    format_prometheus,
)
from repro.live.stream import (
    GroupStats,
    LiveResult,
    LiveSnapshot,
    MetricStream,
    WindowStats,
)
from repro.live.tap import LiveTap
from repro.live.union import StreamingUnion

__all__ = [
    "StreamingUnion",
    "MetricStream",
    "RecordChunk",
    "chunk_trace",
    "ShardedMetricStream",
    "WindowStats",
    "GroupStats",
    "LiveSnapshot",
    "LiveResult",
    "Anomaly",
    "BpsAnomalyDetector",
    "MemorySink",
    "JsonlSink",
    "PrometheusSink",
    "FailSafeSink",
    "apply_sink_policy",
    "format_prometheus",
    "LiveTap",
    "watch_trace",
    "completion_order",
]
