"""Baseline-diff attribution: from a flagged window to ranked suspects.

The :class:`Attributor` rides next to the
:class:`~repro.live.anomaly.BpsAnomalyDetector` and follows the same
learning rule: every window the detector does *not* flag folds its
:class:`~repro.diagnose.graph.WindowGraph` summary into a rolling
baseline (``deque(maxlen=history)``, ``min_history`` warm-up); every
window it *does* flag is diffed against that baseline and the diff is
compiled into ranked, typed :class:`Suspect`\\ s.

Suspect taxonomy (the classes the fault-plan ground truth scores):

- ``server-stall`` — failed requests and retries concentrated on one
  server: the crash signature (the retry middleware records every
  attempt, so a dead server shows up as failures *attributed to it*);
- ``server-degrade`` — one server's response time and clipped-union
  occupancy share elevated relative to the others, still completing,
  no failures: device degradation / queue saturation;
- ``link-degrade`` — either one server's requests stalled at wire
  scale (response time at a large multiple of baseline *and* a sizable
  fraction of the window, zero failures — a downed link holds
  messages, it never fails them), or latency uniformly inflated across
  servers with no concentration (shared-path latency spike);
- ``straggler`` — one pid's response time stretched across servers
  while the other pids track baseline;
- ``retry-storm`` — a pid's retry count far above baseline (usually a
  *symptom* riding below a ``server-stall``, hence its low score cap);
- ``window-stall`` — the flagged window saw no records at all and the
  lookback found nothing in flight either; the catch-all symptom,
  ranked last.

A window with *no* records is not evidence-free: when clients block on
a dead or parked component they stop issuing, so the proof lives in an
earlier window whose requests are still running through the flagged
one.  The attributor retains the last ``history`` closed graphs and an
**absence lookback** checks, for every baseline principal missing from
the flagged window, whether its last-seen requests reach into the
window (per-principal max completion time) — classifying the find by
the same failure/stall-ratio/latency bands as the direct rules.

Scores are dimensionless and deliberately banded so that stronger
evidence classes outrank weaker ones when several fire at once
(failures > stalls > latency shifts > retry symptoms); within a class
the score grows with the baseline deviation.  All accumulation is
commutative and the diff is deterministic, so streaming and offline
runs over the same records rank identically.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.core.records import IORecord
from repro.diagnose.graph import DiagnoseError, TraceGraph, WindowGraph
from repro.faults import plan as _fault_plan

#: Suspect kinds (the taxonomy above).
SERVER_STALL = "server-stall"
SERVER_DEGRADE = "server-degrade"
LINK_DEGRADE = "link-degrade"
STRAGGLER = "straggler"
RETRY_STORM = "retry-storm"
WINDOW_STALL = "window-stall"

SUSPECT_KINDS = (SERVER_STALL, SERVER_DEGRADE, LINK_DEGRADE,
                 STRAGGLER, RETRY_STORM, WINDOW_STALL)

#: Injected fault kind -> suspect kinds that count as a correct
#: attribution (the precision/recall harness's answer key).
FAULT_KIND_SUSPECTS = {
    _fault_plan.SERVER_CRASH: (SERVER_STALL, WINDOW_STALL),
    _fault_plan.DEVICE_DEGRADE: (SERVER_DEGRADE,),
    _fault_plan.SERVER_SLOWDOWN: (SERVER_DEGRADE,),
    _fault_plan.LINK_DOWN: (LINK_DEGRADE,),
    _fault_plan.LINK_LATENCY: (LINK_DEGRADE,),
    _fault_plan.STRAGGLER: (STRAGGLER,),
    _fault_plan.DEVICE_FAULTS: (SERVER_DEGRADE, RETRY_STORM,
                                SERVER_STALL),
}


@dataclass(frozen=True)
class Suspect:
    """One ranked root-cause candidate for a flagged window."""

    kind: str
    target: str
    score: float
    evidence: str

    def as_event(self) -> dict:
        return {"kind": self.kind, "target": self.target,
                "score": self.score, "evidence": self.evidence}


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _median(values) -> float:
    """Robust centre for latency baselines: a fault's own unflagged
    lead-in windows (slow but above the drop threshold) land in the
    baseline too, and a mean would let them dilute every later ratio."""
    values = sorted(values)
    if not values:
        return 0.0
    mid = len(values) // 2
    if len(values) % 2:
        return values[mid]
    return 0.5 * (values[mid - 1] + values[mid])


class Attributor:
    """Rolling-baseline root-cause attribution for flagged windows."""

    def __init__(
        self,
        *,
        window: float,
        origin: float | None = None,
        server_of: Callable[[IORecord], str] | None = None,
        block_size: int = 512,
        history: int = 8,
        min_history: int = 3,
        max_suspects: int = 5,
        min_ops: int = 1,
        min_failures: int = 1,
        latency_factor: float = 2.0,
        concentration: float = 1.5,
        stall_ratio: float = 12.0,
        stall_span: float = 0.25,
    ) -> None:
        if history < 1 or min_history < 1 or min_history > history:
            raise DiagnoseError(
                f"bad history configuration ({history}, {min_history})")
        if latency_factor <= 1.0 or concentration <= 1.0:
            raise DiagnoseError("ratio thresholds must be > 1")
        if not 0.0 < stall_span <= 1.0:
            raise DiagnoseError(f"bad stall span {stall_span}")
        self.graph = TraceGraph(window=window, origin=origin,
                                server_of=server_of,
                                block_size=block_size)
        self.window = float(window)
        self.min_history = min_history
        self.max_suspects = max_suspects
        self.min_ops = min_ops
        self.min_failures = min_failures
        self.latency_factor = latency_factor
        self.concentration = concentration
        self.stall_ratio = stall_ratio
        self.stall_span = stall_span
        self._baseline: deque[dict] = deque(maxlen=history)
        #: Recently closed graphs (healthy AND flagged), for the
        #: absence lookback: a window with no records still has
        #: evidence in the earlier windows whose requests are running
        #: through it.
        self._recent: deque[WindowGraph] = deque(maxlen=history)

    @classmethod
    def for_detector(cls, detector, *, window: float,
                     origin: float | None = None,
                     server_of=None, **kwargs) -> "Attributor":
        """An attributor mirroring a detector's learning horizon."""
        return cls(window=window, origin=origin, server_of=server_of,
                   history=detector.history,
                   min_history=detector.min_history, **kwargs)

    # -- feed --------------------------------------------------------------

    def add_record(self, record: IORecord) -> None:
        self.graph.add_record(record)

    def add_chunk(self, chunk) -> None:
        self.graph.add_chunk(chunk)

    # -- learn / diff ------------------------------------------------------

    def observe_window(self, stats, anomaly) -> tuple[Suspect, ...]:
        """Settle one closed window: learn it, or attribute the flag.

        Call once per closed window, in index order, with the window's
        :class:`~repro.live.stream.WindowStats` and the detector's
        verdict for it (None = healthy).  Healthy windows join the
        rolling baseline; flagged windows are diffed and return ranked
        suspects (empty during warm-up — no baseline, no evidence).
        """
        graph = self.graph.pop_window(stats.index)
        suspects: tuple[Suspect, ...] = ()
        if anomaly is None:
            if not self._tainted(graph):
                self._baseline.append(self._summarize(graph, stats))
        elif len(self._baseline) >= self.min_history:
            suspects = tuple(self._diff(graph, stats)
                             [: self.max_suspects])
        self._recent.append(graph)
        return suspects

    def _tainted(self, graph: WindowGraph) -> bool:
        """Failure-bearing windows never join the baseline, even when
        the detector kept quiet: fail-fast attempts *raise* windowed
        BPS (thousands of instant completions), so a crash's own
        windows sail under a drop detector while carrying the
        evidence — learning them would poison every later diff."""
        if graph.failures < self.min_failures:
            return False
        if len(self._baseline) < self.min_history:
            return True
        b_fail = _mean(e["failures"] for e in self._baseline)
        return graph.failures > 2.0 * b_fail

    def _summarize(self, graph: WindowGraph, stats) -> dict:
        io_time = stats.io_time
        servers = {}
        for server, (ops, dur, retries, failures) in \
                graph.by_server().items():
            share = (graph.occupancy.get(server, 0.0) / io_time
                     if io_time > 0 else 0.0)
            servers[server] = (ops, dur / ops if ops else 0.0,
                               retries, failures, share)
        pids = {}
        for pid, (ops, dur, retries, _failures) in graph.by_pid().items():
            pids[pid] = (ops, dur / ops if ops else 0.0, retries)
        ops = graph.ops
        return {
            "ops": ops,
            "lat": graph.dur_sum / ops if ops else 0.0,
            "failures": graph.failures,
            "srv": servers,
            "pid": pids,
        }

    def _merged_baseline(self) -> dict:
        entries = list(self._baseline)
        base = {
            "ops": _mean(e["ops"] for e in entries),
            "lat": _median(e["lat"] for e in entries if e["ops"]),
            "srv": {},
            "pid": {},
        }
        servers = {s for e in entries for s in e["srv"]}
        for s in servers:
            rows = [e["srv"].get(s, (0, 0.0, 0, 0, 0.0)) for e in entries]
            lat_rows = [r[1] for r in rows if r[0] > 0]
            base["srv"][s] = {
                "ops": _mean(r[0] for r in rows),
                "lat": _median(lat_rows),
                "retries": _mean(r[2] for r in rows),
                "failures": _mean(r[3] for r in rows),
                "share": _mean(r[4] for r in rows),
            }
        pids = {p for e in entries for p in e["pid"]}
        for p in pids:
            rows = [e["pid"].get(p, (0, 0.0, 0)) for e in entries]
            lat_rows = [r[1] for r in rows if r[0] > 0]
            base["pid"][p] = {
                "ops": _mean(r[0] for r in rows),
                "lat": _median(lat_rows),
                "retries": _mean(r[2] for r in rows),
            }
        return base

    # -- diff rules --------------------------------------------------------

    def _diff(self, graph: WindowGraph, stats) -> list[Suspect]:
        base = self._merged_baseline()
        suspects: list[Suspect] = []
        by_server = graph.by_server()
        by_pid = graph.by_pid()
        io_time = stats.io_time

        # 1. server-stall: failures concentrated on one server (the
        # retry middleware records every attempt, so a dead server
        # shows up as failures attributed to it).
        total_failures = graph.failures
        for server, (ops, dur, retries, failures) in \
                sorted(by_server.items()):
            b = base["srv"].get(server)
            b_fail = b["failures"] if b else 0.0
            if failures < self.min_failures or \
                    failures <= 2.0 * b_fail:
                continue
            conc = failures / total_failures
            if conc < 0.6:
                continue
            score = 100.0 * conc + min(failures - b_fail, 100.0)
            suspects.append(Suspect(
                kind=SERVER_STALL, target=server, score=score,
                evidence=(f"{server} stall: {failures} failed requests "
                          f"vs baseline {b_fail:.1f} "
                          f"({retries} retries, "
                          f"{conc:.0%} of window failures)")))

        # 1b. server-stall, recovery form: the flagged window often
        # holds no failures at all — the dip *follows* the outage
        # (clients sat in backoff, then drained) — but the requests
        # that survived carry their retry counts, concentrated on the
        # server that refused them.
        total_retries = graph.retries
        for server, (ops, dur, retries, failures) in \
                sorted(by_server.items()):
            b = base["srv"].get(server)
            b_retries = b["retries"] if b else 0.0
            if retries < 4 or retries < 4.0 * (b_retries + 1.0):
                continue
            conc = retries / total_retries
            if conc < 0.6:
                continue
            score = 40.0 + min(retries - b_retries, 30.0)
            suspects.append(Suspect(
                kind=SERVER_STALL, target=server, score=score,
                evidence=(f"{server} stall: survivors carry {retries} "
                          f"retries vs baseline {b_retries:.1f} "
                          f"({conc:.0%} of window retries) — "
                          f"recovering from refused requests")))

        # Latency ratios per server / pid (where the baseline can speak).
        def ratios(rows: dict, base_rows: dict) -> dict:
            out = {}
            for key, (ops, dur, _r, *_f) in rows.items():
                b = base_rows.get(key)
                if ops < self.min_ops or not b or b["lat"] <= 0.0:
                    continue
                out[key] = (dur / ops) / b["lat"]
            return out

        srv_ratio = ratios(by_server, base["srv"])
        pid_ratio = ratios(by_pid, base["pid"])

        def others_mean(table: dict, key) -> float:
            rest = [v for k, v in table.items() if k != key]
            return _mean(rest) if rest else 1.0

        def pid_claims(pid) -> bool:
            """Does the straggler rule fire for this pid?"""
            ratio = pid_ratio.get(pid)
            return (ratio is not None
                    and ratio >= self.latency_factor
                    and ratio >= self.concentration
                    * others_mean(pid_ratio, pid))

        # Symmetric blame resolution for the single-edge ambiguity
        # ("pid slow wholly on server s" vs "s slow wholly via pid"):
        # a server that gave *another* pid baseline-grade service in
        # this very window is exonerated — the slow pid is the cause;
        # a pid whose slow time sits wholly on a non-exonerated slow
        # server is exonerated the other way round.
        def server_pid_rows(server) -> dict:
            rows: dict = {}
            for e in graph.edges:
                if e.server == server:
                    row = rows.setdefault(e.pid, [0, 0.0])
                    row[0] += e.ops
                    row[1] += e.dur_sum
            return rows

        def server_exonerated(server) -> bool:
            b = base["srv"].get(server)
            if not b or b["lat"] <= 0.0:
                return False
            rows = server_pid_rows(server)
            if len(rows) < 2:
                return False
            slowest = max(rows, key=lambda p: rows[p][1])
            return any(
                dur / ops < self.latency_factor * b["lat"]
                for p, (ops, dur) in rows.items()
                if p != slowest and ops)

        def pid_suppressed(pid) -> bool:
            per_server: dict = {}
            for e in graph.edges:
                if e.pid == pid:
                    per_server[e.server] = \
                        per_server.get(e.server, 0.0) + e.dur_sum
            total = sum(per_server.values())
            if total <= 0.0:
                return False
            server, top = max(per_server.items(),
                              key=lambda kv: (kv[1], kv[0]))
            if top < 0.6 * total:
                return False
            ratio = srv_ratio.get(server)
            return (ratio is not None
                    and ratio >= self.latency_factor
                    and not server_exonerated(server))

        # 2/3. per-server shifts: wire-stall vs queue saturation.
        for server, ratio in sorted(srv_ratio.items()):
            others = others_mean(srv_ratio, server)
            if ratio < self.latency_factor or \
                    ratio < self.concentration * others:
                continue
            if server_exonerated(server):
                continue
            ops, dur, retries, failures = by_server[server]
            mean_dur = dur / ops
            b = base["srv"][server]
            share = (graph.occupancy.get(server, 0.0) / io_time
                     if io_time > 0 else 0.0)
            if failures == 0 and ratio >= self.stall_ratio and \
                    mean_dur >= self.stall_span * self.window:
                # Held at the wire: huge, window-scale response times
                # with zero failures — a downed link never fails a
                # request, it parks it.
                score = 20.0 + min(ratio, 30.0)
                suspects.append(Suspect(
                    kind=LINK_DEGRADE, target=server, score=score,
                    evidence=(f"{server} link stall: response time "
                              f"{ratio:.1f}x baseline "
                              f"({mean_dur:.3g}s mean vs "
                              f"{self.window:.3g}s window), 0 failures")))
            else:
                score = 12.0 + min(ratio, 20.0)
                suspects.append(Suspect(
                    kind=SERVER_DEGRADE, target=server, score=score,
                    evidence=(f"{server} queue saturation: union share "
                              f"{share:.2f} vs baseline "
                              f"{b['share']:.2f}, response time "
                              f"{ratio:.1f}x baseline")))

        # 4. straggler: one pid stretched while the rest track baseline.
        for pid, ratio in sorted(pid_ratio.items()):
            if not pid_claims(pid) or pid_suppressed(pid):
                continue
            score = 10.0 + min(ratio, 20.0)
            suspects.append(Suspect(
                kind=STRAGGLER, target=str(pid), score=score,
                evidence=(f"pid {pid} straggler: response time "
                          f"{ratio:.1f}x baseline while other pids run "
                          f"{others_mean(pid_ratio, pid):.1f}x")))

        # 5. absence lookback: a principal that vanished mid-flight.
        # The flagged window itself may hold nothing — when clients
        # block on a dead or parked component they stop issuing, so
        # the evidence lives in the earlier window whose requests are
        # still running *through* this one (window-of-start bucketing
        # keeps their full durations there).
        suspects.extend(self._absent_server_suspects(
            graph, stats, base, by_server, by_pid))
        suspects.extend(self._absent_pid_suspects(
            graph, stats, base, by_pid))

        # 6. link-degrade, shared-path form: everyone slower, nobody
        # singled out (rules 2-5 all passed on concentration).
        if not suspects and base["lat"] > 0.0 and graph.ops:
            global_ratio = (graph.dur_sum / graph.ops) / base["lat"]
            concentrated = any(
                r >= self.concentration * others_mean(srv_ratio, k)
                for k, r in srv_ratio.items()) or any(
                r >= self.concentration * others_mean(pid_ratio, k)
                for k, r in pid_ratio.items())
            if global_ratio >= self.latency_factor and not concentrated:
                score = 15.0 + min(global_ratio, 20.0)
                suspects.append(Suspect(
                    kind=LINK_DEGRADE, target="network", score=score,
                    evidence=(f"link degrade: latency edge weight "
                              f"{global_ratio:.1f}x baseline across "
                              f"{max(len(by_server), 1)} server(s), "
                              f"no single-target concentration")))

        # 7. retry-storm: symptom-grade, capped below everything above.
        for pid, (ops, dur, retries, _failures) in sorted(by_pid.items()):
            b = base["pid"].get(pid)
            b_retries = b["retries"] if b else 0.0
            if retries < 5 or retries <= 4.0 * (b_retries + 1.0):
                continue
            score = 1.0 + min((retries - b_retries) / 10.0, 8.0)
            suspects.append(Suspect(
                kind=RETRY_STORM, target=str(pid), score=score,
                evidence=(f"pid {pid} retry storm: {retries} retries "
                          f"vs baseline {b_retries:.1f}")))

        # 8. window-stall: the catch-all symptom — kept cheap so any
        # localizing evidence (rules 1-7) outranks it.
        if graph.ops == 0:
            suspects.append(Suspect(
                kind=WINDOW_STALL, target="window", score=5.0,
                evidence=(f"window [{stats.start:.6g}, {stats.end:.6g}) "
                          f"fully stalled: 0 records vs baseline "
                          f"{base['ops']:.1f} ops/window")))

        best: dict = {}
        for s in suspects:
            held = best.get((s.kind, s.target))
            if held is None or s.score > held.score:
                best[(s.kind, s.target)] = s
        suspects = list(best.values())
        suspects.sort(key=lambda s: (-s.score, s.kind, s.target))
        return suspects

    def _pid_explains(self, g: WindowGraph, server, base,
                      by_pid) -> bool:
        """Is a lookback server's slow window fully explained by ONE
        straggling pid?  Then the pid owns the blame, not the wire.
        Several pids slow on the same server is the converse proof —
        the server (or its link) is the common cause; and a flagged
        window where (nearly) *everyone* went quiet is a systemic
        stall no single pid explains."""
        if len(base["pid"]) < 2:
            return False
        present = sum(1 for p in base["pid"]
                      if by_pid.get(p, (0,))[0] > 0)
        if present * 2 < len(base["pid"]):
            return False
        b = base["srv"].get(server)
        if not b or b["lat"] <= 0.0:
            return False
        rows: dict = {}
        for e in g.edges:
            if e.server == server:
                row = rows.setdefault(e.pid, [0, 0.0])
                row[0] += e.ops
                row[1] += e.dur_sum
        slow = [p for p, (n, d) in rows.items()
                if n and d / n >= self.latency_factor * b["lat"]]
        if len(slow) != 1:
            return False
        total = sum(d for _n, d in rows.values())
        return rows[slow[0]][1] >= 0.8 * total

    @staticmethod
    def _dominant_pid(graph: WindowGraph, server):
        """The pid owning >= 80% of a server's window time, if any."""
        per_pid: dict = {}
        for e in graph.edges:
            if e.server == server:
                per_pid[e.pid] = per_pid.get(e.pid, 0.0) + e.dur_sum
        total = sum(per_pid.values())
        if total <= 0.0:
            return None
        pid, top = max(per_pid.items(), key=lambda kv: (kv[1], -kv[0]))
        return pid if top >= 0.8 * total else None

    def _absent_server_suspects(self, graph, stats, base,
                                by_server, by_pid) -> list[Suspect]:
        """Servers missing from the flagged window whose last-seen
        requests are still in flight through it."""
        reach_floor = stats.start + self.stall_span * self.window
        out: list[Suspect] = []
        for server, b in sorted(base["srv"].items()):
            if b["ops"] < 0.5 or b["lat"] <= 0.0:
                continue
            if by_server.get(server, (0,))[0] > 0:
                continue
            found = self._last_active(
                server, lambda g: g.by_server(),
                lambda g: g.max_end, stats.index)
            if found is None:
                continue
            g, (ops, dur, retries, failures), reach = found
            if failures > 0:
                # Fail-fast attempts end instantly, so a crashed
                # server's reach never extends — failures plus silence
                # IS the crash signature, no in-flight proof needed.
                out.append(Suspect(
                    kind=SERVER_STALL, target=server,
                    score=50.0 + min(5.0 * failures, 30.0),
                    evidence=(f"{server} stall: {failures} failed "
                              f"requests in window {g.index}, nothing "
                              f"completed since")))
                continue
            if reach < reach_floor:
                continue
            ratio = (dur / ops) / b["lat"]
            if ratio < self.latency_factor:
                continue
            if self._pid_explains(g, server, base, by_pid):
                continue
            if reach >= stats.end and stats.index - g.index >= 2:
                # The requests issued back then are STILL in flight
                # past this entire window and the server has been
                # start-silent for 2+ windows — only a wire hold does
                # that; a merely saturated device keeps starting (and
                # completing) work almost every window.
                out.append(Suspect(
                    kind=LINK_DEGRADE, target=server,
                    score=20.0 + min(ratio, 30.0),
                    evidence=(f"{server} link stall: requests issued "
                              f"in window {g.index} held "
                              f"{ratio:.1f}x baseline and still in "
                              f"flight past this window")))
            else:
                out.append(Suspect(
                    kind=SERVER_DEGRADE, target=server,
                    score=12.0 + min(ratio, 20.0),
                    evidence=(f"{server} queue saturation: window "
                              f"{g.index} requests {ratio:.1f}x "
                              f"baseline and still draining")))
        return out

    def _absent_pid_suspects(self, graph, stats, base,
                             by_pid) -> list[Suspect]:
        """Pids missing from the flagged window mid-flight — only when
        the *other* pids kept completing (otherwise the stall is
        global, and rule 5's server form owns it)."""
        if len(base["pid"]) < 2:
            return []
        present = sum(1 for p in base["pid"]
                      if by_pid.get(p, (0,))[0] > 0)
        if present * 2 < len(base["pid"]):
            return []
        reach_floor = stats.start + self.stall_span * self.window
        out: list[Suspect] = []
        for pid, b in sorted(base["pid"].items()):
            if b["ops"] < 0.5 or b["lat"] <= 0.0:
                continue
            if by_pid.get(pid, (0,))[0] > 0:
                continue
            found = self._last_active(
                pid, lambda g: g.by_pid(),
                lambda g: g.pid_max_end, stats.index)
            if found is None:
                continue
            g, (ops, dur, retries, failures), reach = found
            if reach < reach_floor:
                continue
            ratio = (dur / ops) / b["lat"]
            if ratio < self.latency_factor:
                continue
            out.append(Suspect(
                kind=STRAGGLER, target=str(pid),
                score=10.0 + min(ratio, 20.0),
                evidence=(f"pid {pid} straggler: window {g.index} "
                          f"requests {ratio:.1f}x baseline and still "
                          f"in flight while other pids complete")))
        return out

    def _last_active(self, key, rows_of, reach_of, before_index):
        """Most recent retained graph where ``key`` completed ops."""
        for g in reversed(self._recent):
            if g.index >= before_index:
                continue
            row = rows_of(g).get(key)
            if not row or row[0] == 0:
                continue
            return g, tuple(row), reach_of(g).get(key, -math.inf)
        return None


def ranked_suspects(anomalies) -> tuple[Suspect, ...]:
    """All suspects across a run's anomalies, strongest first."""
    out: list[Suspect] = []
    for anomaly in anomalies:
        out.extend(getattr(anomaly, "suspects", ()))
    out.sort(key=lambda s: (-s.score, s.kind, s.target))
    return tuple(out)
