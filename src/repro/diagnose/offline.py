"""Offline root-cause attribution over a recorded trace.

:func:`diagnose_trace` replays a :class:`~repro.core.records.TraceCollection`
through the exact streaming pipeline ``bps watch --attribute`` runs —
same completion-order delivery, same detector, same
:class:`~repro.diagnose.attribute.Attributor` — so the post-hoc
diagnosis and a live one over the same records are identical by
construction (asserted suspect-for-suspect in the parity tests).

Server attribution on a bare trace needs the stripe geometry the
recording system used; :func:`stripe_server_of` rebuilds the offset ->
server key from ``(n_servers, stripe_size)``, defaulting to the
system's default layout convention (``servers[stripe % width]``,
64 KiB stripes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.records import IORecord, TraceCollection
from repro.diagnose.attribute import Attributor, Suspect, ranked_suspects
from repro.diagnose.graph import DiagnoseError
from repro.util.units import KiB


def stripe_server_of(n_servers: int,
                     stripe_size: int = 64 * KiB) -> Callable:
    """Offset -> ``serverN`` key for a default striped layout.

    Mirrors the live tap's first-stripe attribution rule
    (:func:`repro.live.tap._server_key`): the server holding a
    record's first byte claims the record; unknown offsets land on
    ``"?"``.
    """
    if n_servers < 1:
        raise DiagnoseError(f"server count must be >= 1, got {n_servers}")
    if stripe_size < 1:
        raise DiagnoseError(f"stripe size must be >= 1, got {stripe_size}")
    # Interned name table: key_of runs once per record on the live
    # ingest path, and building "serverN" there is half its cost.
    names = tuple(f"server{i}" for i in range(n_servers))

    def key_of(record: IORecord) -> str:
        offset = record.offset
        if offset < 0:
            return "?"
        return names[(offset // stripe_size) % n_servers]

    return key_of


@dataclass(frozen=True)
class Diagnosis:
    """Everything :func:`diagnose_trace` settles."""

    #: The replay's :class:`~repro.live.stream.LiveResult` (anomalies
    #: carry their ``suspects`` payloads).
    result: object

    @property
    def anomalies(self) -> tuple:
        return self.result.anomalies

    @property
    def suspects(self) -> tuple[Suspect, ...]:
        """Every suspect across the run, strongest evidence first."""
        return ranked_suspects(self.result.anomalies)

    @property
    def top_suspect(self) -> Suspect | None:
        suspects = self.suspects
        return suspects[0] if suspects else None

    def as_dict(self) -> dict:
        """JSON-safe report (the ``bps diagnose --json`` payload)."""
        return {
            "windows": len(self.result.windows),
            "anomalies": [a.as_event() for a in self.result.anomalies],
            "suspects": [s.as_event() for s in self.suspects],
            "top_suspect": (self.top_suspect.as_event()
                            if self.top_suspect else None),
        }


def diagnose_trace(
    trace: TraceCollection,
    *,
    window: float | None = None,
    bins: int = 20,
    origin: float | None = None,
    block_size: int = 512,
    detector=None,
    server_of: Callable[[IORecord], str] | None = None,
    attributor: Attributor | None = None,
    watermark_lag: float | None = None,
    exec_time: float | None = None,
) -> Diagnosis:
    """Run the offline attribution path over a recorded trace.

    ``window``/``bins`` follow the ``bps watch`` convention (explicit
    width, or span / ``bins``); ``detector`` defaults to a stock
    :class:`~repro.live.anomaly.BpsAnomalyDetector`.  Pass ``server_of``
    (e.g. :func:`stripe_server_of`) to enable server-level suspects on
    a trace whose offsets follow a known stripe geometry.

    ``watermark_lag`` pins the replay to a fixed settle lag instead of
    the adaptive one.  To reproduce a live run's attribution exactly,
    pass the lag the live tap used; a lag longer than the longest
    request makes every window's evidence complete on both paths, so
    the two produce identical ranked suspects.
    """
    from repro.live.anomaly import BpsAnomalyDetector
    from repro.live.replay import watch_trace

    if detector is None:
        detector = BpsAnomalyDetector()
    result = watch_trace(
        trace, window=window, bins=bins, origin=origin,
        block_size=block_size, detector=detector,
        attribute=True, server_of=server_of, attributor=attributor,
        watermark_lag=watermark_lag, exec_time=exec_time)
    return Diagnosis(result=result)
