"""Per-window causal trace graphs — the evidence base for attribution.

A :class:`TraceGraph` folds completed I/O records into one bucket per
metric window, keyed by the **directly-follows chain** of the request
path: ``pid -> op -> server``.  Each edge carries the counters the
attributor diffs against its baseline (operations, blocks, response
time, retries, failures), and each bucket additionally keeps the
record intervals *clipped to the window* per server, so a window's
per-server clipped-union occupancy — who owned the window's active
time — is computable at close.

Two properties are load-bearing:

- **window-of-start bucketing** — a record belongs wholly to the
  window containing its *start* (its interval clipped to that window's
  bounds for occupancy).  Every accumulation is commutative, so the
  closed bucket is independent of arrival order: the streaming feed
  (completion order, out of start order) and the offline replay build
  identical graphs, which is what makes streaming and offline
  attribution agree suspect-for-suspect;
- **bounded memory** — the attributor pops each bucket as its window
  closes, so a long-running stream holds O(open windows) of graph
  state, never O(run).

The ``server`` vertex comes from a caller-supplied key function
(``server_of``), normally the stripe-layout mapping the live tap uses
(:func:`repro.live.tap._server_key`); without one every record lands on
``"?"`` and server-level attribution degrades gracefully to pid/op
signals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.core.records import IORecord
from repro.errors import ReproError


class DiagnoseError(ReproError):
    """Invalid diagnose configuration or use."""


@dataclass(frozen=True)
class GraphEdge:
    """One ``pid -> op -> server`` chain of a closed window."""

    pid: int
    op: str
    server: str
    ops: int
    blocks: int
    dur_sum: float
    retries: int
    failures: int


@dataclass(frozen=True)
class WindowGraph:
    """The settled graph of one closed window."""

    index: int
    edges: tuple[GraphEdge, ...]
    #: server -> union of the window-clipped record intervals (the
    #: share of the window's active time this server owned).
    occupancy: dict
    #: server -> latest (unclipped) completion time of any record that
    #: *started* here — how far this window's requests reached into the
    #: future.  The attributor's lookback uses it to tell "server went
    #: idle" from "server's requests are still in flight".
    max_end: dict = field(default_factory=dict)
    #: pid -> latest (unclipped) completion time, same contract.
    pid_max_end: dict = field(default_factory=dict)

    @property
    def ops(self) -> int:
        return sum(e.ops for e in self.edges)

    @property
    def failures(self) -> int:
        return sum(e.failures for e in self.edges)

    @property
    def retries(self) -> int:
        return sum(e.retries for e in self.edges)

    @property
    def dur_sum(self) -> float:
        return sum(e.dur_sum for e in self.edges)

    def by_server(self) -> dict:
        """server -> [ops, dur_sum, retries, failures] over its edges."""
        out: dict = {}
        for e in self.edges:
            row = out.setdefault(e.server, [0, 0.0, 0, 0])
            row[0] += e.ops
            row[1] += e.dur_sum
            row[2] += e.retries
            row[3] += e.failures
        return out

    def by_pid(self) -> dict:
        """pid -> [ops, dur_sum, retries, failures] over its edges."""
        out: dict = {}
        for e in self.edges:
            row = out.setdefault(e.pid, [0, 0.0, 0, 0])
            row[0] += e.ops
            row[1] += e.dur_sum
            row[2] += e.retries
            row[3] += e.failures
        return out


def _sweep_union(intervals: list) -> float:
    """Union length of ``[lo, hi)`` tuples (the Fig. 3 merge sweep).

    Semantically :func:`repro.core.intervals.union_time`, but a window
    bucket holds at most a few hundred intervals per server — at that
    size the ndarray conversion costs more than the whole sweep, and
    this runs once per server per closed window on the live path.
    """
    intervals.sort()
    total = 0.0
    lo, hi = intervals[0]
    for start, end in intervals:
        if start > hi:
            total += hi - lo
            lo, hi = start, end
        elif end > hi:
            hi = end
    return total + (hi - lo)


class _Bucket:
    """Open-window accumulator (mutable, order-independent sums)."""

    __slots__ = ("edges", "server_intervals", "server_max_end",
                 "pid_max_end")

    def __init__(self) -> None:
        #: (pid, op, server) -> [ops, blocks, dur_sum, retries, failures]
        self.edges: dict[tuple, list] = {}
        #: server -> clipped [lo, hi) interval tuples.
        self.server_intervals: dict[str, list] = {}
        #: server -> max unclipped record end (commutative max).
        self.server_max_end: dict[str, float] = {}
        #: pid -> max unclipped record end (commutative max).
        self.pid_max_end: dict[int, float] = {}


class TraceGraph:
    """Incrementally maintained per-window dependency graph."""

    def __init__(self, *, window: float, origin: float | None = None,
                 server_of: Callable[[IORecord], str] | None = None,
                 block_size: int = 512) -> None:
        if not (window > 0) or math.isnan(window):
            raise DiagnoseError(f"window width must be > 0, got {window}")
        if block_size <= 0:
            raise DiagnoseError(f"bad block size {block_size}")
        self.window = float(window)
        self.origin = origin
        self.block_size = block_size
        self.server_of = server_of
        self._buckets: dict[int, _Bucket] = {}

    # -- feed --------------------------------------------------------------

    def add_record(self, record: IORecord) -> None:
        """Fold one completed record into its start window's bucket.

        This runs once per delivered record on the live path, riding
        the same ingest loop as the metric stream, so it is written
        flat: locals over attribute chases, no property calls, one
        dict probe per structure.  The window index must match
        :meth:`repro.live.stream.MetricStream._index_of` bit-for-bit
        (``int(floor(...))``) or a record could land in a different
        bucket than the window it is judged under.
        """
        origin = self.origin
        if origin is None:
            origin = self.origin = record.start
        start = record.start
        end = record.end
        pid = record.pid
        index = int(math.floor((start - origin) / self.window))
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = _Bucket()
        server = "?" if self.server_of is None else self.server_of(record)
        edges = bucket.edges
        key = (pid, record.op, server)
        edge = edges.get(key)
        if edge is None:
            edge = edges[key] = [0, 0, 0.0, 0, 0]
        edge[0] += 1
        edge[1] += -(-record.nbytes // self.block_size)
        edge[2] += end - start
        edge[3] += record.retries
        if not record.success:
            edge[4] += 1
        hi = origin + (index + 1) * self.window
        if end < hi:
            hi = end
        if hi > start:
            intervals = bucket.server_intervals.get(server)
            if intervals is None:
                intervals = bucket.server_intervals[server] = []
            intervals.append((start, hi))
        prev = bucket.server_max_end.get(server)
        if prev is None or end > prev:
            bucket.server_max_end[server] = end
        prev = bucket.pid_max_end.get(pid)
        if prev is None or end > prev:
            bucket.pid_max_end[pid] = end

    def add_chunk(self, chunk) -> None:
        """Fold one columnar chunk in (row order, same scalar sums).

        Deliberately the scalar loop: identical float-addition order to
        per-record ingest keeps the streaming chunked path and the
        offline replay building bit-identical buckets.
        """
        for record in chunk.records():
            self.add_record(record)

    # -- close -------------------------------------------------------------

    def window_graph(self, index: int) -> WindowGraph:
        """The settled graph of window ``index`` (empty if untouched)."""
        bucket = self._buckets.get(index)
        if bucket is None:
            return WindowGraph(index=index, edges=(), occupancy={},
                               max_end={}, pid_max_end={})
        edges = tuple(
            GraphEdge(pid=pid, op=op, server=server, ops=row[0],
                      blocks=row[1], dur_sum=row[2], retries=row[3],
                      failures=row[4])
            for (pid, op, server), row in sorted(bucket.edges.items()))
        occupancy = {
            server: _sweep_union(ivals)
            for server, ivals in sorted(bucket.server_intervals.items())
        }
        return WindowGraph(index=index, edges=edges, occupancy=occupancy,
                           max_end=dict(sorted(
                               bucket.server_max_end.items())),
                           pid_max_end=dict(sorted(
                               bucket.pid_max_end.items())))

    def pop_window(self, index: int) -> WindowGraph:
        """Settle window ``index`` and release its bucket (the
        streaming close path — keeps graph memory O(open windows))."""
        graph = self.window_graph(index)
        self._buckets.pop(index, None)
        return graph

    @property
    def open_windows(self) -> int:
        """Buckets currently held (diagnostic)."""
        return len(self._buckets)
