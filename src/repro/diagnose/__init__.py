"""repro.diagnose — root-cause attribution for BPS anomalies.

The observability layer above detection: the
:class:`~repro.live.anomaly.BpsAnomalyDetector` says *when* windowed
BPS collapsed; this package says *why*, by diffing the flagged
window's causal trace graph against a rolling baseline of healthy
windows (the directly-follows-graph localization idea applied to the
paper's per-layer trace decomposition):

- :mod:`repro.diagnose.graph` — :class:`TraceGraph`, the per-window
  ``pid -> op -> server`` dependency graph with per-server clipped-
  union occupancy, maintained incrementally as windows close;
- :mod:`repro.diagnose.attribute` — :class:`Attributor`, the rolling
  non-flagged baseline plus the diff rules that turn a flagged window
  into ranked, typed :class:`Suspect` evidence;
- :mod:`repro.diagnose.offline` — :func:`diagnose_trace`, the
  post-hoc path (``bps diagnose``), identical by construction to the
  streaming path (``bps watch --attribute`` / ``LiveTap``).
"""

from repro.diagnose.attribute import (
    FAULT_KIND_SUSPECTS,
    LINK_DEGRADE,
    RETRY_STORM,
    SERVER_DEGRADE,
    SERVER_STALL,
    STRAGGLER,
    SUSPECT_KINDS,
    WINDOW_STALL,
    Attributor,
    Suspect,
    ranked_suspects,
)
from repro.diagnose.graph import (
    DiagnoseError,
    GraphEdge,
    TraceGraph,
    WindowGraph,
)
from repro.diagnose.offline import (
    Diagnosis,
    diagnose_trace,
    stripe_server_of,
)

__all__ = [
    "TraceGraph",
    "WindowGraph",
    "GraphEdge",
    "DiagnoseError",
    "Attributor",
    "Suspect",
    "ranked_suspects",
    "Diagnosis",
    "diagnose_trace",
    "stripe_server_of",
    "SUSPECT_KINDS",
    "SERVER_STALL",
    "SERVER_DEGRADE",
    "LINK_DEGRADE",
    "STRAGGLER",
    "RETRY_STORM",
    "WINDOW_STALL",
    "FAULT_KIND_SUSPECTS",
]
