"""Set 6 (extension, beyond the paper) — BPS under injected faults.

The paper evaluates metrics on healthy systems.  Real I/O systems
degrade: devices slow down, servers crash and come back, links flap,
and middleware retries.  This extension sweeps a *fault severity*
ladder on a 4-server PVFS running the hot-spot workload and asks the
paper's question once more: which metric still tracks overall
performance when the system is sick?

Every severity step turns the same knobs a little further, against the
same fixed fault-window schedule:

- the bulk servers' disks degrade (factor ``1 + DEGRADE_SPAN*s``) — the
  smooth driver of execution time;
- the hot server suffers timed crash windows; middleware retries its
  fail-fast refusals with cheap backoff, so *operation counts* balloon
  while blocks barely move (the hot file is small);
- disks throw per-byte transient faults that the file system retries
  transparently (``device_retries``), so *device-boundary bytes*
  balloon with no application-visible failure;
- one server's NIC gains latency, another slows down, and rank 0
  straggles — flavour faults that stretch time without touching any
  numerator.

Expected shape (and why):

- execution time rises monotonically with severity;
- BPS falls monotonically: its block numerator is dominated by the
  bulk stripes, which never retry at the middleware, so B is nearly
  constant — BPS ~ 1/T, the correct story;
- IOPS *flattens and bends back up* at high severity: thousands of
  cheap failed attempts on the hot file inflate N faster than T grows;
- bandwidth bends likewise: transparent device-retry traffic inflates
  the fs-byte numerator (recovery bytes are real bytes moved, but not
  application progress).

So |CC| of BPS against execution time stays high while bandwidth's and
IOPS's collapse — the degradation analogue of the paper's Set 1-4
findings, with ARPT's direction flip along for the ride.
"""

from __future__ import annotations

from repro.core.analysis import SweepAnalysis
from repro.experiments.runner import (
    ExperimentScale,
    SweepSpec,
    run_sweep,
    spec_cell_task,
)
from repro.faults.plan import (
    DEVICE_DEGRADE,
    LINK_LATENCY,
    SERVER_CRASH,
    SERVER_SLOWDOWN,
    STRAGGLER,
    FaultEvent,
    FaultPlan,
)
from repro.middleware.retry import RetryPolicy
from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads.base import run_workload
from repro.workloads.hotspot import HotSpotWorkload

#: Severity ladder; 0 is the healthy control point.
SEVERITIES: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)

# Platform (the paper's PVFS testbed, scaled down).
N_SERVERS = 4
HOT_SERVER = 0
JITTER_SIGMA = 0.05
BASE_OPS_PER_PROC = 64
NPROC = 4

# Smooth time drivers (linear in severity).
DEGRADE_SPAN = 3.0     # bulk disks: service-time factor 1 + span*s
LINK_SPAN = 1.0        # one server NIC: latency factor 1 + span*s
SLOWDOWN_SPAN = 1.0    # one server: request-overhead factor 1 + span*s
STRAGGLER_SPAN = 0.25  # rank 0: middleware stretch 1 + span*s

# Numerator corruptors (convex in severity, biting at the top end).
FAULT_P_MAX = 0.30     # per-64KiB transient device fault probability
FAULT_SHAPE = 4        # p(s) = FAULT_P_MAX * s**FAULT_SHAPE
FAULT_PER_BYTES = 64 * KiB
FAULT_TIME_FRACTION = 0.5
DEVICE_RETRIES = 2     # fs-transparent resubmissions (recovery bytes)
CRASH_SHAPE = 4        # window length ~ s**CRASH_SHAPE
#: Hot-server crash windows as (start, full-severity duration), in
#: seconds at scale factor 1; both scale with the op count.
CRASH_WINDOWS: tuple[tuple[float, float], ...] = (
    (0.030, 0.040),
    (0.100, 0.050),
    (0.170, 0.060),
)

#: Cheap, persistent middleware retry: refusals cost ~a round trip plus
#: a sub-millisecond backoff, so a crash window multiplies *attempts*
#: without moving time much — exactly the IOPS-corruption mechanism.
RETRY = RetryPolicy(max_retries=15, backoff_base_s=0.0001,
                    backoff_factor=1.2, backoff_jitter=0.1)

EXPECTED_MISLEADING = ("ARPT", "IOPS", "BW")


def fault_plan(severity: float, time_scale: float = 1.0) -> FaultPlan | None:
    """The fixed fault schedule, dialled to ``severity`` in [0, 1].

    ``time_scale`` stretches window starts/durations with the workload
    size so smoke runs keep the same fault phasing as full runs.
    """
    if severity <= 0.0:
        return None
    events = [
        FaultEvent(kind=DEVICE_DEGRADE, target=f"server{index}.disk",
                   at=0.0, factor=1.0 + DEGRADE_SPAN * severity)
        for index in range(N_SERVERS) if index != HOT_SERVER
    ]
    events.append(FaultEvent(kind=LINK_LATENCY, target="server2",
                             at=0.0, factor=1.0 + LINK_SPAN * severity))
    events.append(FaultEvent(kind=SERVER_SLOWDOWN, target="server3",
                             at=0.0, factor=1.0 + SLOWDOWN_SPAN * severity))
    events.append(FaultEvent(kind=STRAGGLER, target="0", at=0.0,
                             factor=1.0 + STRAGGLER_SPAN * severity))
    length_scale = severity ** CRASH_SHAPE
    for start, full_duration in CRASH_WINDOWS:
        duration = full_duration * length_scale * time_scale
        if duration > 0.0:
            events.append(FaultEvent(kind=SERVER_CRASH,
                                     target=f"server{HOT_SERVER}",
                                     at=start * time_scale,
                                     duration=duration))
    return FaultPlan(events)


def point_config(severity: float, time_scale: float = 1.0,
                 *, retry: RetryPolicy | None = RETRY,
                 replication: int = 1) -> SystemConfig:
    """One severity step's platform description."""
    return SystemConfig(
        kind="pfs", n_servers=N_SERVERS,
        device_spec="sata-hdd-7200",
        jitter_sigma=JITTER_SIGMA,
        fault_probability=FAULT_P_MAX * severity ** FAULT_SHAPE,
        fault_time_fraction=FAULT_TIME_FRACTION,
        fault_per_bytes=FAULT_PER_BYTES,
        device_retries=DEVICE_RETRIES,
        replication=replication,
        retry_policy=retry,
        fault_plan=fault_plan(severity, time_scale),
    )


def build_sweep(scale: ExperimentScale) -> SweepSpec:
    """Severity ladder on the hot-spot PVFS."""
    ops = max(16, int(BASE_OPS_PER_PROC * scale.factor))
    time_scale = ops / BASE_OPS_PER_PROC
    points = []
    for severity in SEVERITIES:
        config = point_config(severity, time_scale)

        def make_workload() -> HotSpotWorkload:
            return HotSpotWorkload(ops_per_proc=ops, nproc=NPROC,
                                   hot_server=HOT_SERVER)
        points.append((f"{severity:.1f}", make_workload, config))
    return SweepSpec(knob="fault severity", points=points)


def run_set6(scale: ExperimentScale | None = None,
             smoke: bool = False,
             **run_kwargs) -> SweepAnalysis:
    """Run the fault-severity sweep (extension figure 'ext2').

    ``smoke`` shrinks the sweep to a seconds-long CI-sized run (fewer
    ops, two repetitions) while keeping every fault kind active.
    """
    if smoke:
        scale = ExperimentScale(factor=0.25, repetitions=2)
    scale = scale or ExperimentScale()
    run_kwargs.setdefault("grid_task", spec_cell_task(
        f"{__name__}:build_sweep", scale))
    return run_sweep(build_sweep(scale), scale, **run_kwargs)


def compare_policies(scale: ExperimentScale | None = None,
                     severity: float = 0.8) -> dict[str, dict]:
    """Retry-policy face-off at one fixed severity.

    Runs the same faulted platform under: no middleware recovery, plain
    retry/backoff, and retry plus replica failover (2-way replication).
    Returns per-policy summaries — execution time, BPS, giveups,
    failovers — so examples and tests can show graceful degradation
    paying for itself.
    """
    scale = scale or ExperimentScale()
    ops = max(16, int(BASE_OPS_PER_PROC * scale.factor))
    time_scale = ops / BASE_OPS_PER_PROC
    policies: dict[str, tuple[RetryPolicy | None, int]] = {
        "no-retry": (None, 1),
        "retry": (RETRY, 1),
        "retry+failover": (RetryPolicy(
            max_retries=RETRY.max_retries,
            backoff_base_s=RETRY.backoff_base_s,
            backoff_factor=RETRY.backoff_factor,
            backoff_jitter=RETRY.backoff_jitter,
            failover=True), 2),
    }
    rows: dict[str, dict] = {}
    for label, (retry, replication) in policies.items():
        config = point_config(severity, time_scale,
                              retry=retry, replication=replication)
        workload = HotSpotWorkload(ops_per_proc=ops, nproc=NPROC,
                                   hot_server=HOT_SERVER)
        measurement = run_workload(workload,
                                   config.with_seed(scale.base_seed))
        metrics = measurement.metrics()
        retry_stats = measurement.extras["retry"]
        rows[label] = {
            "exec_time": measurement.exec_time,
            "bps": metrics.bps,
            "bandwidth": metrics.bandwidth,
            "iops": metrics.iops,
            "attempts": retry_stats["attempts"],
            "retries": retry_stats["retries"],
            "giveups": retry_stats["giveups"],
            "failovers": measurement.extras["pfs_failovers"],
        }
    return rows
