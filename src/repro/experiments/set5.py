"""Set 5 (extension, beyond the paper) — asynchronous I/O depth.

The paper's concurrency sets vary the *process count*; modern stacks
get the same I/O overlap from one process with asynchronous submission.
This extension sweeps the async queue depth (1 → 32) for single-process
random 4 KiB reads on the SSD and asks the paper's question again:
which metric tracks overall performance?

Expected shape (and why):

- execution time falls with depth (the SSD's channels and the software
  stack overlap);
- IOPS/BW/BPS = work over *union* time rise: correct direction;
- ARPT rises — a request's response time now includes queue wait — while
  the application gets faster: ARPT flips, exactly as in the paper's
  multi-process sets.  BPS generalises cleanly to this form of
  concurrency because the union-time rule never cared where the overlap
  came from.
"""

from __future__ import annotations

from repro.core.analysis import SweepAnalysis
from repro.experiments.runner import (
    ExperimentScale,
    SweepSpec,
    run_sweep,
    spec_cell_task,
)
from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads.aio import AsyncReadWorkload

QUEUE_DEPTHS: tuple[int, ...] = (1, 2, 4, 8, 16, 32)
BASE_OPS = 256
IO_SIZE = 4 * KiB
JITTER_SIGMA = 0.08

EXPECTED_MISLEADING = ("ARPT",)


def build_sweep(scale: ExperimentScale) -> SweepSpec:
    """Queue-depth ladder on the paper's SSD."""
    total_ops = max(32, int(BASE_OPS * scale.factor))
    config = SystemConfig(kind="local", device_spec="pcie-ssd",
                          cache_pages=0,  # raw device latency, no cache
                          jitter_sigma=JITTER_SIGMA)
    points = []
    for depth in QUEUE_DEPTHS:
        def make_workload(_depth=depth) -> AsyncReadWorkload:
            return AsyncReadWorkload(
                file_size=32 * MiB, io_size=IO_SIZE,
                total_ops=total_ops, queue_depth=_depth,
                pattern="random",
            )
        points.append((str(depth), make_workload, config))
    return SweepSpec(knob="async queue depth", points=points)


def run_set5(scale: ExperimentScale | None = None,
             **run_kwargs) -> SweepAnalysis:
    """Run the queue-depth sweep (extension figure 'ext1')."""
    scale = scale or ExperimentScale()
    run_kwargs.setdefault("grid_task", spec_cell_task(
        f"{__name__}:build_sweep", scale))
    return run_sweep(build_sweep(scale), scale, **run_kwargs)
