"""Figure/table registry: paper artifact id → regeneration code.

``FIGURES`` maps every evaluation figure and table of the paper to a
:class:`FigureSpec` whose ``produce(scale)`` returns the artifact as
text.  ``python -m repro figures fig5`` (see :mod:`repro.cli`) and the
benchmark harness both go through this registry, so the per-experiment
index in DESIGN.md stays honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.correlation import EXPECTED_DIRECTIONS
from repro.errors import ExperimentError
from repro.experiments.registry import EXPERIMENT_SETS
from repro.experiments.runner import ExperimentScale
from repro.experiments.set1 import run_set1
from repro.experiments.set2 import run_set2, set2_detail
from repro.experiments.set3 import run_set3_ior, run_set3_pure, set3_detail
from repro.experiments.set4 import run_set4
from repro.experiments.set5 import run_set5
from repro.experiments.set6 import run_set6
from repro.experiments.summary import run_summary
from repro.util.tables import TextTable


@dataclass(frozen=True)
class FigureSpec:
    """One reproducible paper artifact."""

    figure_id: str
    title: str
    paper_expectation: str
    produce: Callable[[ExperimentScale], str]


def _fig1(_scale: ExperimentScale) -> str:
    """Fig. 1: six two-request cases, rendered from the definitions.

    Each sub-case compares two services of the same application demand;
    the metric that cannot tell them apart (or prefers the slower one)
    is exactly the paper's target.
    """
    from repro.core.metrics import arpt, bandwidth, bps, iops
    from repro.core.records import IORecord, TraceCollection

    def trace(*specs):
        return TraceCollection([
            IORecord(0, "read", nbytes, start, end)
            for nbytes, start, end in specs
        ])

    sections = []

    # (a) Different I/O sizes: two size-S requests in 2T vs one 2S in T.
    left = trace((512, 0.0, 1.0), (512, 1.0, 2.0))
    right = trace((1024, 0.0, 1.0))
    table = TextTable(["case (a) different I/O sizes",
                       "IOPS", "BPS", "I/O time"])
    table.add_row(["two S-requests in 2T", f"{iops(left):.2f}",
                   f"{bps(left):.2f}", "2T"])
    table.add_row(["one 2S-request in T", f"{iops(right):.2f}",
                   f"{bps(right):.2f}", "T"])
    sections.append(table.render()
                    + "\nIOPS ties them; BPS prefers the faster right case.")

    # (b) Different actual data movement: same app demand, fs moves 2x.
    app = trace((1024, 0.0, 1.0), (1024, 1.0, 2.0))
    table = TextTable(["case (b) extra data movement",
                       "BW (B/s)", "BPS", "I/O time"])
    table.add_row(["fs moves what was asked",
                   f"{bandwidth(app, fs_bytes=2048):.0f}",
                   f"{bps(app):.2f}", "2T"])
    table.add_row(["fs moves 2x (holes)",
                   f"{bandwidth(app, fs_bytes=4096):.0f}",
                   f"{bps(app):.2f}", "2T"])
    sections.append(table.render()
                    + "\nBW doubles for identical application service; "
                      "BPS is unmoved.")

    # (c) Different concurrency: sequential vs concurrent T-requests.
    sequential = trace((512, 0.0, 1.0), (512, 1.0, 2.0))
    concurrent = trace((512, 0.0, 1.0), (512, 0.0, 1.0))
    table = TextTable(["case (c) different concurrency",
                       "ARPT", "BPS", "I/O time"])
    table.add_row(["sequential", f"{arpt(sequential):.2f}",
                   f"{bps(sequential):.2f}", "2T"])
    table.add_row(["concurrent", f"{arpt(concurrent):.2f}",
                   f"{bps(concurrent):.2f}", "T"])
    sections.append(table.render()
                    + "\nARPT ties them; BPS doubles for the overlap.")

    return "\n\n".join(sections)


def _fig2(_scale: ExperimentScale) -> str:
    """Fig. 2: the union-time worked example, recomputed."""
    from repro.core.intervals import (
        idle_time,
        total_request_time,
        union_time,
        union_time_paper,
    )
    intervals = [(0.0, 3.0), (1.0, 4.0), (2.0, 5.0), (7.0, 9.0)]
    table = TextTable(["quantity", "value"])
    table.add_row(["requests", "R1=[0,3] R2=[1,4] R3=[2,5] R4=[7,9]"])
    table.add_row(["sum of T1..T4 (NOT used)",
                   f"{total_request_time(intervals):.1f}"])
    table.add_row(["dt1 (R1-R3 merged)", "5.0"])
    table.add_row(["dt2 (R4)", "2.0"])
    table.add_row(["idle gap (excluded)",
                   f"{idle_time(intervals):.1f}"])
    table.add_row(["T = dt1 + dt2 (numpy impl)",
                   f"{union_time(intervals):.1f}"])
    table.add_row(["T = dt1 + dt2 (paper Fig.3 port)",
                   f"{union_time_paper(intervals):.1f}"])
    return table.render()


def _table1(_scale: ExperimentScale) -> str:
    table = TextTable(["I/O metric", "expected CC direction"])
    for metric, direction in EXPECTED_DIRECTIONS.items():
        table.add_row([metric, "negative" if direction < 0 else "positive"])
    return table.render()


def _table2(_scale: ExperimentScale) -> str:
    table = TextTable(["set", "description", "paper tool", "workload",
                       "figures", "expected misleading"])
    for spec in EXPERIMENT_SETS.values():
        table.add_row([
            f"Set{spec.set_id}",
            spec.description,
            spec.paper_tool,
            spec.workload,
            ",".join(spec.figures),
            ",".join(spec.expected_misleading) or "-",
        ])
    return table.render()


def _cc_figure(title: str, runner) -> Callable[[ExperimentScale], str]:
    def produce(scale: ExperimentScale) -> str:
        sweep = runner(scale)
        return (sweep.render_cc_figure(title) + "\n\n"
                + sweep.render_cc_table())
    return produce


FIGURES: dict[str, FigureSpec] = {
    "fig1": FigureSpec(
        "fig1", "Six two-request cases: when each metric cannot tell",
        "IOPS blind to sizes; BW credits unwanted movement; ARPT blind "
        "to concurrency; BPS discriminates all three",
        _fig1,
    ),
    "fig2": FigureSpec(
        "fig2", "Union-time measurement worked example",
        "T = dt1 + dt2 = 7; overlap counted once, idle excluded",
        _fig2,
    ),
    "table1": FigureSpec(
        "table1", "Expected correlation directions of each I/O metric",
        "IOPS/BW/BPS negative, ARPT positive",
        _table1,
    ),
    "table2": FigureSpec(
        "table2", "I/O access cases",
        "four sets: device, size, concurrency, data movement",
        _table2,
    ),
    "fig4": FigureSpec(
        "fig4", "Normalized CC values, various storage devices (Set 1)",
        "all four metrics correct, |CC| ~ 0.93",
        _cc_figure("Fig.4 — CC by metric, storage-device sweep", run_set1),
    ),
    "fig5": FigureSpec(
        "fig5", "Normalized CC values, I/O sizes, HDD (Set 2)",
        "BW/BPS correct ~0.90; IOPS & ARPT flipped",
        _cc_figure("Fig.5 — CC by metric, record-size sweep (HDD)",
                   lambda scale: run_set2("hdd", scale)),
    ),
    "fig6": FigureSpec(
        "fig6", "Normalized CC values, I/O sizes, SSD (Set 2)",
        "BW/BPS correct ~0.90; IOPS & ARPT flipped",
        _cc_figure("Fig.6 — CC by metric, record-size sweep (SSD)",
                   lambda scale: run_set2("ssd", scale)),
    ),
    "fig7": FigureSpec(
        "fig7", "IOPS and execution time vs I/O size, HDD (Set 2 detail)",
        "both IOPS and execution time fall as records grow",
        lambda scale: set2_detail("hdd", "IOPS", scale),
    ),
    "fig8": FigureSpec(
        "fig8", "ARPT and execution time vs I/O size, SSD (Set 2 detail)",
        "ARPT rises while execution time falls",
        lambda scale: set2_detail("ssd", "ARPT", scale),
    ),
    "fig9": FigureSpec(
        "fig9", "Normalized CC values, pure concurrency (Set 3a)",
        "IOPS/BW/BPS correct ~0.96; ARPT flipped ~0.58",
        _cc_figure("Fig.9 — CC by metric, pure-concurrency sweep",
                   run_set3_pure),
    ),
    "fig10": FigureSpec(
        "fig10", "ARPT and execution time vs concurrency (Set 3a detail)",
        "execution time collapses; ARPT barely moves (slight rise)",
        lambda scale: set3_detail(scale),
    ),
    "fig11": FigureSpec(
        "fig11", "Normalized CC values, IOR shared file (Set 3b)",
        "IOPS/BW/BPS correct ~0.91; ARPT flipped ~0.39",
        _cc_figure("Fig.11 — CC by metric, IOR concurrency sweep",
                   run_set3_ior),
    ),
    "fig12": FigureSpec(
        "fig12", "Normalized CC values, data sieving (Set 4)",
        "IOPS/ARPT/BPS correct ~0.92; BW flipped",
        _cc_figure("Fig.12 — CC by metric, region-spacing sweep",
                   run_set4),
    ),
    "summary": FigureSpec(
        "summary", "Section IV.C.5 — cross-set summary",
        "BPS is the only metric correct in every sweep; overall ~0.91",
        lambda scale: run_summary(scale).render(),
    ),
    "ext1": FigureSpec(
        "ext1", "Extension — async queue-depth sweep (Set 5, not in paper)",
        "IOPS/BW/BPS correct; ARPT flips again: queue wait raises "
        "response times while the run gets faster",
        _cc_figure("Ext.1 — CC by metric, async queue-depth sweep",
                   run_set5),
    ),
    "ext2": FigureSpec(
        "ext2", "Extension — fault-severity sweep (Set 6, not in paper)",
        "BPS stays strongly correct; IOPS inflated by retry attempts "
        "and BW by recovery traffic lose correlation; ARPT flips",
        _cc_figure("Ext.2 — CC by metric, fault-severity sweep",
                   run_set6),
    ),
}


def regenerate(figure_id: str,
               scale: ExperimentScale | None = None) -> str:
    """Produce one paper artifact as text."""
    try:
        spec = FIGURES[figure_id]
    except KeyError:
        known = ", ".join(sorted(FIGURES))
        raise ExperimentError(
            f"unknown figure {figure_id!r}; known: {known}"
        ) from None
    return spec.produce(scale or ExperimentScale())
