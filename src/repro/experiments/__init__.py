"""Experiment sets reproducing the paper's evaluation (section IV).

Each ``setN`` module builds the sweep of one experiment set from
Table 2, runs it (5 repetitions per point by default, as the paper
does), and returns a :class:`~repro.core.analysis.SweepAnalysis` whose
correlation table is the corresponding CC bar figure.

:mod:`repro.experiments.figures` maps paper figure/table identifiers to
the callables that regenerate them; :mod:`repro.experiments.registry`
is the machine-readable Table 2.
"""

from repro.experiments.registry import EXPERIMENT_SETS, ExperimentSpec
from repro.experiments.runner import SweepSpec, run_sweep, ExperimentScale
from repro.experiments.set1 import run_set1
from repro.experiments.set2 import run_set2, set2_detail
from repro.experiments.set3 import run_set3_pure, run_set3_ior, set3_detail
from repro.experiments.set4 import run_set4
from repro.experiments.set5 import run_set5
from repro.experiments.set6 import run_set6, compare_policies
from repro.experiments.figures import FIGURES, regenerate, FigureSpec
from repro.experiments.summary import run_summary, SummaryResult

__all__ = [
    "EXPERIMENT_SETS",
    "ExperimentSpec",
    "SweepSpec",
    "run_sweep",
    "ExperimentScale",
    "run_set1",
    "run_set2",
    "set2_detail",
    "run_set3_pure",
    "run_set3_ior",
    "set3_detail",
    "run_set4",
    "run_set5",
    "run_set6",
    "compare_policies",
    "FIGURES",
    "FigureSpec",
    "regenerate",
    "run_summary",
    "SummaryResult",
]
