"""Set 3 — various I/O concurrency (paper Figs. 9-11).

Two environments:

- **Pure concurrency** (Figs. 9-10): IOzone throughput mode, n = 1..8
  processes on one client node, each process reading its own PVFS file
  pinned to an individual I/O server (one-server stripe layouts), so
  disk contention is designed away.  Total data volume is fixed, so
  execution time falls with n.  Finding: IOPS/BW/BPS correct and strong
  (≈0.96); ARPT flips — it barely moves (Fig. 10) while execution time
  collapses, so "average response time" misses concurrency entirely.
- **Real HPC I/O** (Fig. 11): IOR over MPI-IO, one shared file striped
  across 8 servers (default layout), fixed 64 KB transfers, n = 1..32
  processes on separate client nodes.  Finding: IOPS/BW/BPS still good
  (≈0.91); ARPT wrong direction and weak (≈0.39).

Paper scale: 32 GB.  Default reproduction: 32 MiB (pure) / 16 MiB (IOR),
same process ladders.

One modelling note (recorded in DESIGN.md): the pure-concurrency client
node gets a 10 GbE NIC.  On a strictly gigabit client the eight
concurrent streams would saturate the client link at n≈3 and execution
time would flatten, which contradicts the near-linear scaling the
paper's Fig. 10 shows; a faster client link reproduces the published
shape while keeping servers on GigE.
"""

from __future__ import annotations

from repro.core.analysis import SweepAnalysis
from repro.errors import ExperimentError
from repro.experiments.runner import (
    ExperimentScale,
    SweepSpec,
    run_sweep,
    spec_cell_task,
)
from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads.ior import IORWorkload
from repro.workloads.iozone import IOzoneWorkload

#: Paper-quoted results for EXPERIMENTS.md comparison.
PAPER_PURE_AVG_ABS_CC = 0.96
PAPER_PURE_ARPT_CC = 0.58    # wrong direction
PAPER_IOR_AVG_ABS_CC = 0.91
PAPER_IOR_ARPT_CC = 0.39     # wrong direction
PAPER_MISLEADING = ("ARPT",)

PURE_PROCESS_COUNTS: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)
IOR_PROCESS_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16, 32)

BASE_TOTAL_PURE = 32 * MiB
BASE_TOTAL_IOR = 16 * MiB
RECORD_SIZE = 64 * KiB
JITTER_SIGMA = 0.08
N_SERVERS = 8
TEN_GBE = 1250 * MiB


def build_pure_sweep(scale: ExperimentScale) -> SweepSpec:
    """IOzone throughput mode, file-per-server, one client node."""
    total = scale.size(BASE_TOTAL_PURE,
                       granule=RECORD_SIZE * max(PURE_PROCESS_COUNTS))
    config = SystemConfig(
        kind="pfs", device_spec="sata-hdd-7200", n_servers=N_SERVERS,
        client_bandwidth=TEN_GBE, jitter_sigma=JITTER_SIGMA,
    )
    points = []
    for nproc in PURE_PROCESS_COUNTS:
        def make_workload(_n=nproc) -> IOzoneWorkload:
            return IOzoneWorkload(
                file_size=total, record_size=RECORD_SIZE, nproc=_n,
                mode="throughput", pin_files_to_servers=True,
                shared_client=True,
            )
        points.append((str(nproc), make_workload, config))
    return SweepSpec(knob="I/O concurrency (pure)", points=points)


def build_ior_sweep(scale: ExperimentScale) -> SweepSpec:
    """IOR, shared striped file, separate client nodes."""
    total = scale.size(BASE_TOTAL_IOR,
                       granule=RECORD_SIZE * max(IOR_PROCESS_COUNTS))
    config = SystemConfig(
        kind="pfs", device_spec="sata-hdd-7200", n_servers=N_SERVERS,
        stripe_size=64 * KiB, jitter_sigma=JITTER_SIGMA,
        # Up to 32 ranks stream through each server concurrently; the
        # server OS's per-file read-ahead keeps them all sequential, so
        # give the disk model one stream slot per potential rank.
        device_overrides={"cache_segments": max(IOR_PROCESS_COUNTS)},
    )
    points = []
    for nproc in IOR_PROCESS_COUNTS:
        def make_workload(_n=nproc) -> IORWorkload:
            return IORWorkload(file_size=total, transfer_size=RECORD_SIZE,
                               nproc=_n)
        points.append((str(nproc), make_workload, config))
    return SweepSpec(knob="I/O concurrency (IOR)", points=points)


def run_set3_pure(scale: ExperimentScale | None = None,
                  **run_kwargs) -> SweepAnalysis:
    """Run the pure-concurrency sweep; its CC table is Fig. 9."""
    scale = scale or ExperimentScale()
    run_kwargs.setdefault("grid_task", spec_cell_task(
        f"{__name__}:build_pure_sweep", scale))
    return run_sweep(build_pure_sweep(scale), scale, **run_kwargs)


def run_set3_ior(scale: ExperimentScale | None = None,
                 **run_kwargs) -> SweepAnalysis:
    """Run the IOR sweep; its CC table is Fig. 11."""
    scale = scale or ExperimentScale()
    run_kwargs.setdefault("grid_task", spec_cell_task(
        f"{__name__}:build_ior_sweep", scale))
    return run_sweep(build_ior_sweep(scale), scale, **run_kwargs)


def set3_detail(scale: ExperimentScale | None = None) -> str:
    """Fig. 10: ARPT vs execution time across the pure sweep."""
    sweep = run_set3_pure(scale)
    return sweep.render_detail(["ARPT", "exec_time"])
