"""Cross-set summary — the paper's section IV.C.5 headline.

"BPS is the only metric that works well for all the scenarios.  BPS
correctly correlates with the overall computer performance in all the
tests, and achieves high CC values" — with an overall BPS |CC| of 0.91
quoted in the introduction.

:func:`run_summary` runs every sweep (Figs. 4-6, 9, 11, 12), collects
the normalised CC tables, and reports per-metric: in how many sweeps the
direction was correct, and the average correlation strength.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.correlation import METRIC_ORDER, CorrelationResult
from repro.experiments.runner import ExperimentScale
from repro.experiments.set1 import run_set1
from repro.experiments.set2 import run_set2
from repro.experiments.set3 import run_set3_ior, run_set3_pure
from repro.experiments.set4 import run_set4
from repro.util.tables import TextTable

#: Paper-quoted overall BPS correlation for EXPERIMENTS.md.
PAPER_BPS_OVERALL_CC = 0.91

#: The six CC-figure sweeps, in paper order.
SWEEP_RUNNERS = (
    ("fig4: devices", lambda scale: run_set1(scale)),
    ("fig5: I/O size (HDD)", lambda scale: run_set2("hdd", scale)),
    ("fig6: I/O size (SSD)", lambda scale: run_set2("ssd", scale)),
    ("fig9: concurrency (pure)", lambda scale: run_set3_pure(scale)),
    ("fig11: concurrency (IOR)", lambda scale: run_set3_ior(scale)),
    ("fig12: data sieving", lambda scale: run_set4(scale)),
)


@dataclass(frozen=True)
class SummaryResult:
    """All sweeps' correlation tables plus the per-metric verdicts."""

    tables: dict[str, dict[str, CorrelationResult]]

    def correct_counts(self) -> dict[str, int]:
        """Sweeps (out of len(tables)) where each metric kept direction."""
        counts = {metric: 0 for metric in METRIC_ORDER}
        for table in self.tables.values():
            for metric, result in table.items():
                if result.direction_correct:
                    counts[metric] += 1
        return counts

    def mean_normalized(self) -> dict[str, float]:
        """Average normalised CC per metric across sweeps."""
        sums = {metric: 0.0 for metric in METRIC_ORDER}
        for table in self.tables.values():
            for metric, result in table.items():
                sums[metric] += result.normalized
        n = len(self.tables)
        return {metric: total / n for metric, total in sums.items()}

    def bps_always_correct(self) -> bool:
        """The headline claim: BPS never flips."""
        return all(table["BPS"].direction_correct
                   for table in self.tables.values())

    def only_bps_always_correct(self) -> bool:
        """The stronger claim: every other metric flips somewhere."""
        counts = self.correct_counts()
        total = len(self.tables)
        return (counts["BPS"] == total
                and all(counts[m] < total for m in METRIC_ORDER
                        if m != "BPS"))

    def render(self) -> str:
        """Human-readable summary table."""
        table = TextTable(["sweep", *METRIC_ORDER])
        for name, results in self.tables.items():
            table.add_row([
                name,
                *(f"{results[m].normalized:+.3f}" for m in METRIC_ORDER),
            ])
        counts = self.correct_counts()
        table.add_row([
            "correct direction",
            *(f"{counts[m]}/{len(self.tables)}" for m in METRIC_ORDER),
        ])
        means = self.mean_normalized()
        table.add_row([
            "mean normalized CC",
            *(f"{means[m]:+.3f}" for m in METRIC_ORDER),
        ])
        return table.render()


def run_summary(scale: ExperimentScale | None = None) -> SummaryResult:
    """Run all six CC sweeps and aggregate (expensive: ~6 full sweeps)."""
    scale = scale or ExperimentScale()
    tables = {
        name: runner(scale).correlations()
        for name, runner in SWEEP_RUNNERS
    }
    return SummaryResult(tables)
