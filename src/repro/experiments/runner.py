"""Sweep execution: points × repetitions → SweepAnalysis.

The paper runs each experiment 5 times and averages (section IV.B).
:func:`run_sweep` does the same: for every sweep point it runs
``repetitions`` independent simulations (distinct seeds, so device
jitter decorrelates them) and feeds the per-repetition metric sets into
a :class:`~repro.core.analysis.SweepAnalysis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.analysis import SweepAnalysis
from repro.errors import ExperimentError
from repro.system import SystemConfig
from repro.workloads.base import Workload


@dataclass(frozen=True)
class ExperimentScale:
    """Global size scaling for experiment sweeps.

    The paper's runs move 16-64 GB per point; simulating the identical
    request *counts* is what matters for metric behaviour, so the
    default scale moves megabytes instead.  ``factor`` multiplies every
    data size an experiment uses; ``repetitions`` is the paper's 5 by
    default.
    """

    factor: float = 1.0
    repetitions: int = 5
    base_seed: int = 20130520  # IPDPS'13 vintage

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ExperimentError(f"bad scale factor {self.factor}")
        if self.repetitions < 1:
            raise ExperimentError(f"bad repetitions {self.repetitions}")

    def size(self, base_bytes: int, *, granule: int = 4096) -> int:
        """Scale a byte size, keeping it a positive multiple of granule."""
        scaled = int(base_bytes * self.factor)
        scaled = max(granule, (scaled // granule) * granule)
        return scaled


@dataclass(frozen=True)
class SweepSpec:
    """One sweep: labelled points, each a (workload, config) pair."""

    knob: str
    points: Sequence[tuple[str, Callable[[], Workload], SystemConfig]] = field(
        default_factory=list)

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ExperimentError(
                f"sweep {self.knob!r} needs >= 2 points for correlation, "
                f"got {len(self.points)}"
            )


def run_sweep(spec: SweepSpec, scale: ExperimentScale) -> SweepAnalysis:
    """Run every point ``scale.repetitions`` times; return the analysis.

    Workloads are constructed fresh per repetition (factories, not
    instances) because workload objects hold per-run state.
    """
    sweep = SweepAnalysis(spec.knob)
    for point_index, (label, make_workload, config) in enumerate(spec.points):
        runs = []
        for rep in range(scale.repetitions):
            seed = scale.base_seed + 7919 * point_index + rep
            workload = make_workload()
            runs.append(workload.run(config.with_seed(seed)))
        sweep.add_runs(label, runs)
    return sweep
