"""Sweep execution: points × repetitions → SweepAnalysis.

The paper runs each experiment 5 times and averages (section IV.B).
:func:`run_sweep` does the same: for every sweep point it runs
``repetitions`` independent simulations (distinct seeds, so device
jitter decorrelates them) and feeds the per-repetition metric sets into
a :class:`~repro.core.analysis.SweepAnalysis`.

Runs are independent by construction (fresh system per run, seed fully
determines the simulation), so the points × repetitions grid is
embarrassingly parallel.  :func:`run_sweep` fans the grid out over the
**supervised** fork pool of :mod:`repro.exec.supervisor` when more than
one worker is available: a crashed worker re-queues its job instead of
aborting the sweep, hung jobs can be reaped by a per-job timeout, and a
pool that keeps breaking degrades to serial execution.  Results are
reassembled in (point, repetition) order with the exact per-rep seeds
of the serial path, so the analysis is bit-identical either way — with
or without failures along the way.  Control knobs:

- ``backend=`` / ``REPRO_SWEEP_BACKEND`` env var — which executor
  backend runs the grid (``fork`` pool, in-process ``async``, or the
  multi-host ``socket`` dispatcher; see :mod:`repro.exec.backends`);
- ``parallel=False`` — force the serial path (the escape hatch);
- ``workers=N`` — explicit pool size;
- ``REPRO_SWEEP_WORKERS`` env var — site-wide default pool size
  (``1`` disables parallelism without touching call sites);
- ``policy=SupervisorPolicy(...)`` — retry/timeout/fallback budget;
- ``checkpoint=path`` — journal each completed job durably
  (:mod:`repro.exec.checkpoint`); with ``resume=True`` (default) an
  existing journal's jobs are skipped, so an interrupted sweep picks
  up where it died and still returns the identical analysis.

The pool uses the ``fork`` start method so sweep specs (whose workload
factories are typically closures, which don't pickle) are inherited by
the children rather than shipped; on platforms without ``fork`` the
runner silently falls back to serial execution.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.core.analysis import RunMeasurement, SweepAnalysis
from repro.errors import ExperimentError
from repro.exec.backends import (
    AsyncBackend,
    GridTask,
    SocketBackend,
    import_ref,
    resolve_backend,
    run_jobs,
)
from repro.exec.backends.wire import resolve_liveness
from repro.exec.checkpoint import (
    CheckpointJournal,
    measurement_from_payload,
    measurement_to_payload,
)
from repro.exec.supervisor import (
    SupervisionReport,
    SupervisorPolicy,
    fork_available,
    run_supervised,
)
from repro.system import SystemConfig
from repro.workloads.base import Workload


@dataclass(frozen=True)
class ExperimentScale:
    """Global size scaling for experiment sweeps.

    The paper's runs move 16-64 GB per point; simulating the identical
    request *counts* is what matters for metric behaviour, so the
    default scale moves megabytes instead.  ``factor`` multiplies every
    data size an experiment uses; ``repetitions`` is the paper's 5 by
    default.
    """

    factor: float = 1.0
    repetitions: int = 5
    base_seed: int = 20130520  # IPDPS'13 vintage

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ExperimentError(f"bad scale factor {self.factor}")
        if self.repetitions < 1:
            raise ExperimentError(f"bad repetitions {self.repetitions}")

    def size(self, base_bytes: int, *, granule: int = 4096) -> int:
        """Scale a byte size, keeping it a positive multiple of granule."""
        scaled = int(base_bytes * self.factor)
        scaled = max(granule, (scaled // granule) * granule)
        return scaled


@dataclass(frozen=True)
class SweepSpec:
    """One sweep: labelled points, each a (workload, config) pair."""

    knob: str
    points: Sequence[tuple[str, Callable[[], Workload], SystemConfig]] = field(
        default_factory=list)

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ExperimentError(
                f"sweep {self.knob!r} needs >= 2 points for correlation, "
                f"got {len(self.points)}"
            )


#: Spec visible to forked pool workers (inherited memory, not pickled).
_WORKER_SPEC: SweepSpec | None = None


def _run_job(spec: SweepSpec, job: tuple[int, int]) -> RunMeasurement:
    """Execute one (point, seed) cell of the sweep grid."""
    point_index, seed = job
    _label, make_workload, config = spec.points[point_index]
    # Workloads are constructed fresh per repetition (factories, not
    # instances) because workload objects hold per-run state.
    workload = make_workload()
    return workload.run(config.with_seed(seed))


def _pool_job(job: tuple[int, int]) -> RunMeasurement:
    return _run_job(_WORKER_SPEC, job)


def _cells_from_builder(builder: str, args: tuple = (),
                        kwargs: dict | None = None) -> Callable:
    """:class:`GridTask` factory: rebuild a spec, return its cell runner.

    Runs on a grid worker: imports the named sweep *builder*
    (``"repro.experiments.set1:build_sweep"``), calls it with the
    dispatcher's own inputs, and serves cells out of the resulting
    spec.  Same code + same inputs = same spec on every host, which
    (with the seed carried inside each cell) is what makes distributed
    sweeps bit-identical to serial.
    """
    spec = import_ref(builder)(*args, **(kwargs or {}))

    def run_cell(job: tuple[int, int]) -> RunMeasurement:
        return _run_job(spec, job)

    return run_cell


def spec_cell_task(builder: str, *args, **kwargs) -> GridTask:
    """The grid task for a sweep whose spec builder is importable.

    ``builder`` is a ``"package.module:attr"`` reference; ``args`` /
    ``kwargs`` are its inputs (device names, the
    :class:`ExperimentScale`) and must pickle — they ride the socket
    handshake to every worker.
    """
    return GridTask(factory=f"{__name__}:_cells_from_builder",
                    args=(builder, tuple(args), dict(kwargs)))


def resolve_workers(workers: int | None = None) -> int:
    """Pool size: explicit argument > REPRO_SWEEP_WORKERS > cpu count.

    A non-positive ``REPRO_SWEEP_WORKERS`` is clamped to 1 with a
    warning (a site-wide env var should degrade, not abort every
    sweep); a non-positive explicit argument is a caller bug and
    raises.
    """
    if workers is not None:
        if workers < 1:
            raise ExperimentError(f"bad worker count {workers}")
        return workers
    env = os.environ.get("REPRO_SWEEP_WORKERS", "").strip()
    if env:
        try:
            parsed = int(env)
        except ValueError:
            raise ExperimentError(
                f"REPRO_SWEEP_WORKERS must be an integer, got {env!r}"
            ) from None
        if parsed < 1:
            warnings.warn(
                f"REPRO_SWEEP_WORKERS={parsed} is not a valid pool "
                f"size; clamping to 1 (serial)", RuntimeWarning,
                stacklevel=2)
            return 1
        return parsed
    return os.cpu_count() or 1


def _sweep_jobs(spec: SweepSpec,
                scale: ExperimentScale) -> list[tuple[int, int]]:
    """The (point_index, seed) grid, in serial execution order."""
    return [
        (point_index, scale.base_seed + 7919 * point_index + rep)
        for point_index in range(len(spec.points))
        for rep in range(scale.repetitions)
    ]


def _job_key(job: tuple[int, int]) -> str:
    point_index, seed = job
    return f"p{point_index}:s{seed}"


def _sweep_tag(spec: SweepSpec, scale: ExperimentScale) -> str:
    """Checkpoint identity: resuming a *different* sweep must fail."""
    return (f"knob={spec.knob}|points={len(spec.points)}"
            f"|reps={scale.repetitions}|seed={scale.base_seed}"
            f"|factor={scale.factor!r}")


def run_sweep(spec: SweepSpec, scale: ExperimentScale, *,
              parallel: bool | None = None,
              workers: int | None = None,
              policy: SupervisorPolicy | None = None,
              checkpoint: str | Path | None = None,
              resume: bool = True,
              backend: str | None = None,
              grid_workers: str | Sequence | None = None,
              grid_task: GridTask | None = None,
              grid_token: str | None = None,
              grid_heartbeat: float | None = None,
              grid_liveness: float | None = None) -> SweepAnalysis:
    """Run every point ``scale.repetitions`` times; return the analysis.

    ``backend`` selects where the grid executes (explicit argument >
    ``REPRO_SWEEP_BACKEND`` env var > ``"fork"``):

    - ``"fork"`` — the supervised local fork pool.  ``parallel=None``
      (default) engages it whenever more than one worker is available
      and the platform supports forked pools; ``parallel=False``
      forces the serial path; ``parallel=True`` requires the pool
      (serial fallback only if fork is unavailable);
    - ``"async"`` — in-process serial execution through the same
      driver (retry/timeout semantics intact, no forks) — smoke grids
      and single-core CI;
    - ``"socket"`` — the multi-host dispatcher: ``grid_workers`` names
      the ``bps grid-worker`` daemons (``"host:port,host:port"``) and
      ``grid_task`` the importable spec builder each worker re-runs
      (:func:`spec_cell_task`; the ``run_setN`` entry points supply it
      automatically).  ``grid_token`` (default: ``REPRO_GRID_TOKEN``
      env var) must match the daemons' token, and
      ``grid_heartbeat``/``grid_liveness`` set the dispatcher-side
      liveness clocks (clamp-and-warn via
      :func:`~repro.exec.backends.wire.resolve_liveness`; env
      fallbacks ``REPRO_GRID_HEARTBEAT``/``REPRO_GRID_LIVENESS``).

    Whatever the backend, worker count, or crash schedule, the
    per-repetition seeds and the result order are identical, so the
    returned analysis matches the serial path bit-for-bit — crashes,
    retries, and resumed checkpoints included.

    ``checkpoint`` journals every completed job durably; with
    ``resume=True`` an existing journal's completed jobs are reloaded
    instead of re-run.  The supervision outcome is attached to the
    returned analysis as ``analysis.supervision``
    (:class:`~repro.exec.supervisor.SupervisionReport`).
    """
    global _WORKER_SPEC
    backend_name = resolve_backend(backend)
    if backend_name == "socket":
        if grid_workers is None:
            raise ExperimentError(
                "socket backend needs grid worker addresses "
                "(grid_workers=\"host:port,host:port\")")
        if grid_task is None:
            raise ExperimentError(
                "socket backend needs a grid task naming an importable "
                "spec builder (see spec_cell_task); the run_setN entry "
                "points supply one automatically")
    pool_size = resolve_workers(workers)
    jobs = _sweep_jobs(spec, scale)

    journal: CheckpointJournal | None = None
    results: list[RunMeasurement | None] = [None] * len(jobs)
    todo = list(range(len(jobs)))
    if checkpoint is not None:
        journal = CheckpointJournal(checkpoint,
                                    tag=_sweep_tag(spec, scale),
                                    resume=resume)
        completed = journal.completed()
        todo = []
        for index, job in enumerate(jobs):
            payload = completed.get(_job_key(job))
            if payload is not None:
                results[index] = measurement_from_payload(payload)
            else:
                todo.append(index)

    def on_result(todo_position: int, payload: RunMeasurement) -> None:
        index = todo[todo_position]
        results[index] = payload
        if journal is not None:
            journal.record(_job_key(jobs[index]),
                           measurement_to_payload(payload))

    if backend_name == "fork":
        engage = (parallel if parallel is not None else pool_size > 1) \
            and pool_size > 1 and fork_available()
    else:
        # async/socket run through the driver unless serial is forced.
        engage = parallel is not False
    engage = engage and len(todo) > 1
    report = SupervisionReport(jobs=len(todo))
    try:
        if todo:
            if not engage:
                for position, index in enumerate(todo):
                    on_result(position, _run_job(spec, jobs[index]))
            elif backend_name == "fork":
                _WORKER_SPEC = spec
                try:
                    _results, report = run_supervised(
                        [jobs[i] for i in todo], _pool_job,
                        workers=min(pool_size, len(todo)),
                        policy=policy, on_result=on_result)
                finally:
                    _WORKER_SPEC = None
            else:
                if backend_name == "socket":
                    token = grid_token if grid_token is not None \
                        else os.environ.get("REPRO_GRID_TOKEN") or None
                    hb, lv = resolve_liveness(grid_heartbeat,
                                              grid_liveness)
                    exec_backend = SocketBackend(
                        grid_workers, grid_task, token=token,
                        heartbeat_interval=hb, liveness_timeout=lv)
                else:
                    exec_backend = AsyncBackend()
                report.backend = backend_name

                def local_cell(job: tuple[int, int]) -> RunMeasurement:
                    return _run_job(spec, job)

                run_jobs(exec_backend, [jobs[i] for i in todo],
                         local_cell, policy=policy or SupervisorPolicy(),
                         report=report, on_result=on_result)
        if journal is not None:
            journal.finalize()
    finally:
        if journal is not None:
            journal.close()

    sweep = SweepAnalysis(spec.knob)
    for point_index, (label, _make, _config) in enumerate(spec.points):
        base = point_index * scale.repetitions
        sweep.add_runs(label, results[base:base + scale.repetitions])
    sweep.supervision = report
    return sweep
