"""Machine-readable Table 2: the four I/O access case sets.

Each entry names the knob the set varies, the benchmark tool the paper
used, our workload class, and the paper figures the set produces.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentSpec:
    """One row of the paper's Table 2, with reproduction pointers."""

    set_id: int
    description: str          # the paper's wording
    knob: str                 # what the sweep varies
    paper_tool: str           # IOzone / IOR / Hpio
    workload: str             # our workload class
    figures: tuple[str, ...]  # paper figures this set produces
    expected_misleading: tuple[str, ...]  # metrics that flip direction


EXPERIMENT_SETS: dict[int, ExperimentSpec] = {
    1: ExperimentSpec(
        set_id=1,
        description="various storage device",
        knob="storage configuration (HDD, SSD, PVFS x 1/2/4/8 servers)",
        paper_tool="IOzone (single-process sequential read)",
        workload="IOzoneWorkload(mode='sequential')",
        figures=("fig4",),
        expected_misleading=(),  # everything behaves on device swaps
    ),
    2: ExperimentSpec(
        set_id=2,
        description="various I/O request size",
        knob="record size 4KB -> 8MB",
        paper_tool="IOzone (single-process read, local FS)",
        workload="IOzoneWorkload(mode='sequential')",
        figures=("fig5", "fig6", "fig7", "fig8"),
        expected_misleading=("IOPS", "ARPT"),
    ),
    3: ExperimentSpec(
        set_id=3,
        description="various I/O concurrency",
        knob="process count 1-8 (pure) / 1-32 (IOR shared file)",
        paper_tool="IOzone throughput mode; IOR with MPI-IO",
        workload="IOzoneWorkload(mode='throughput'); IORWorkload",
        figures=("fig9", "fig10", "fig11"),
        expected_misleading=("ARPT",),
    ),
    4: ExperimentSpec(
        set_id=4,
        description="various additional data movement",
        knob="region spacing 8B -> 4096B under data sieving",
        paper_tool="Hpio (noncontiguous read, MPI-IO, 4 I/O servers)",
        workload="HpioWorkload",
        figures=("fig12",),
        expected_misleading=("BW",),
    ),
}
