"""One-command reproduction report.

:func:`generate_report` runs every paper artifact (tables, CC figures,
details, the cross-set summary) at a chosen scale and assembles a
single Markdown document with measured output next to the paper's
expectation — the "rerun everything and show me" entry point
(``bps report``).
"""

from __future__ import annotations

import time

from repro.experiments.figures import FIGURES
from repro.experiments.runner import ExperimentScale

#: Render order: definitions first, sweeps in paper order, then the
#: summary and the extension.
REPORT_ORDER: tuple[str, ...] = (
    "table1", "table2",
    "fig1", "fig2",
    "fig4", "fig5", "fig6", "fig7", "fig8",
    "fig9", "fig10", "fig11", "fig12",
    "summary", "ext1", "ext2",
)


def generate_report(scale: ExperimentScale | None = None, *,
                    title: str = "BPS reproduction report") -> str:
    """Produce the full Markdown report (runs every sweep: minutes)."""
    scale = scale or ExperimentScale()
    sections: list[str] = [
        f"# {title}",
        "",
        f"Scale factor {scale.factor}, {scale.repetitions} repetitions "
        f"per sweep point, base seed {scale.base_seed}.",
        "",
        "Reproduces: He, Sun, Yin. \"BPS: A Performance Metric of I/O "
        "System.\" IPDPSW 2013.",
        "",
    ]
    total_start = time.perf_counter()
    for figure_id in REPORT_ORDER:
        spec = FIGURES[figure_id]
        started = time.perf_counter()
        body = spec.produce(scale)
        elapsed = time.perf_counter() - started
        sections.extend([
            f"## {figure_id}: {spec.title}",
            "",
            f"*Paper expectation: {spec.paper_expectation}*",
            "",
            "```text",
            body,
            "```",
            "",
            f"_(generated in {elapsed:.1f}s)_",
            "",
        ])
    sections.append(
        f"_Total generation time: "
        f"{time.perf_counter() - total_start:.1f}s_")
    return "\n".join(sections)
