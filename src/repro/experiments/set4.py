"""Set 4 — various additional data movement (paper Fig. 12).

Hpio-style noncontiguous read on PVFS with 4 I/O servers, data sieving
enabled.  Region count and size fixed (paper: 4096000 × 256 B), region
spacing swept 8 B → 4096 B, so the sieve drags in ever more hole bytes
the application never asked for.

Finding: IOPS, ARPT, and BPS all correlate correctly (≈0.92) — but
**bandwidth flips**: the file system moves more data per second as
spacing grows (bigger contiguous sieve reads), yet the application only
gets *slower*.  File-system throughput is simply not I/O-system
performance once the middleware moves data the application didn't ask
for; BPS, which counts application-required blocks, keeps the right
direction.

Paper scale: 4 096 000 regions/process.  Default reproduction: 2048
regions × 4 processes with the identical spacing ladder (the
amplification ratio per spacing point is what drives the effect, and it
is scale-free).
"""

from __future__ import annotations

from repro.core.analysis import SweepAnalysis
from repro.experiments.runner import (
    ExperimentScale,
    SweepSpec,
    run_sweep,
    spec_cell_task,
)
from repro.middleware.sieving import SievingConfig
from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads.hpio import HpioWorkload

#: Paper-quoted results for EXPERIMENTS.md comparison.
PAPER_AVG_ABS_CC = 0.92
PAPER_MISLEADING = ("BW",)

#: The paper's spacing ladder, 8 B → 4096 B.
REGION_SPACINGS: tuple[int, ...] = (8, 32, 128, 512, 1024, 2048, 4096)
REGION_SIZE = 256
BASE_REGION_COUNT = 2048
NPROC = 4
N_SERVERS = 4
JITTER_SIGMA = 0.08


def build_sweep(scale: ExperimentScale, *,
                sieving_enabled: bool = True) -> SweepSpec:
    """The spacing ladder (``sieving_enabled=False`` is the ablation)."""
    region_count = max(64, int(BASE_REGION_COUNT * scale.factor))
    config = SystemConfig(
        kind="pfs", device_spec="sata-hdd-7200", n_servers=N_SERVERS,
        stripe_size=64 * KiB, jitter_sigma=JITTER_SIGMA,
    )
    sieving = SievingConfig(enabled=sieving_enabled, buffer_size=4 * MiB,
                            max_hole=64 * KiB)
    points = []
    for spacing in REGION_SPACINGS:
        def make_workload(_gap=spacing) -> HpioWorkload:
            return HpioWorkload(
                region_count=region_count, region_size=REGION_SIZE,
                region_spacing=_gap, nproc=NPROC, sieving=sieving,
            )
        points.append((f"{spacing}B", make_workload, config))
    return SweepSpec(knob="region spacing", points=points)


def run_set4(scale: ExperimentScale | None = None, *,
             sieving_enabled: bool = True,
             **run_kwargs) -> SweepAnalysis:
    """Run the Set 4 sweep; its CC table is Fig. 12."""
    scale = scale or ExperimentScale()
    run_kwargs.setdefault("grid_task", spec_cell_task(
        f"{__name__}:build_sweep", scale,
        sieving_enabled=sieving_enabled))
    return run_sweep(build_sweep(scale, sieving_enabled=sieving_enabled),
                     scale, **run_kwargs)
