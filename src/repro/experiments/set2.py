"""Set 2 — various I/O request sizes (paper Figs. 5-8).

Single-process IOzone-style sequential read of one file through the
local file system, record size swept 4 KB → 8 MB, once on HDD
(Fig. 5) and once on SSD (Fig. 6).  The paper's finding: BW and BPS
stay correct and strong (≈0.90); IOPS and ARPT *flip direction* —
IOPS falls while the application gets faster (Fig. 7) and ARPT rises
while the application gets faster (Fig. 8), because both ignore how
much data a request carries.

Paper scale: 16 GB file.  Default reproduction scale: 16 MiB with the
identical record-size ladder.
"""

from __future__ import annotations

from repro.core.analysis import SweepAnalysis
from repro.errors import ExperimentError
from repro.experiments.runner import (
    ExperimentScale,
    SweepSpec,
    run_sweep,
    spec_cell_task,
)
from repro.system import SystemConfig
from repro.util.units import KiB, MiB, format_size
from repro.workloads.iozone import IOzoneWorkload

#: Paper-quoted results for EXPERIMENTS.md comparison.
PAPER_AVG_ABS_CC_BW_BPS = 0.90
PAPER_MISLEADING = ("IOPS", "ARPT")

#: The paper's record-size ladder, 4 KB → 8 MB.
RECORD_SIZES: tuple[int, ...] = (
    4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB, 8 * MiB,
)

BASE_FILE_SIZE = 16 * MiB
JITTER_SIGMA = 0.08

_DEVICES = {"hdd": "sata-hdd-7200", "ssd": "pcie-ssd"}


def build_sweep(device: str, scale: ExperimentScale) -> SweepSpec:
    """The record-size ladder on one device ('hdd' or 'ssd')."""
    try:
        device_spec = _DEVICES[device]
    except KeyError:
        raise ExperimentError(
            f"unknown device {device!r}; expected one of {set(_DEVICES)}"
        ) from None
    file_size = scale.size(BASE_FILE_SIZE, granule=max(RECORD_SIZES))
    config = SystemConfig(kind="local", device_spec=device_spec,
                          jitter_sigma=JITTER_SIGMA)
    points = []
    for record_size in RECORD_SIZES:
        def make_workload(_record=record_size) -> IOzoneWorkload:
            return IOzoneWorkload(file_size=file_size, record_size=_record)
        points.append((format_size(record_size), make_workload, config))
    return SweepSpec(knob=f"record size ({device})", points=points)


def run_set2(device: str = "hdd",
             scale: ExperimentScale | None = None,
             **run_kwargs) -> SweepAnalysis:
    """Run the Set 2 sweep on one device.

    ``device='hdd'`` reproduces Fig. 5, ``device='ssd'`` Fig. 6.
    Extra keyword arguments pass through to
    :func:`~repro.experiments.runner.run_sweep`.
    """
    scale = scale or ExperimentScale()
    run_kwargs.setdefault("grid_task", spec_cell_task(
        f"{__name__}:build_sweep", device, scale))
    return run_sweep(build_sweep(device, scale), scale, **run_kwargs)


def set2_detail(device: str, metric: str,
                scale: ExperimentScale | None = None) -> str:
    """The per-point detail views of Figs. 7 and 8.

    Fig. 7 = ``('hdd', 'IOPS')``: IOPS and execution time both falling.
    Fig. 8 = ``('ssd', 'ARPT')``: ARPT rising while execution time falls.
    """
    sweep = run_set2(device, scale)
    return sweep.render_detail([metric, "exec_time"])
