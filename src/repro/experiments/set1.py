"""Set 1 — various storage devices (paper Fig. 4).

Single-process IOzone-style sequential read of one large file on six
storage configurations: local HDD, local SSD, and PVFS on 1, 2, 4, and
8 I/O servers.  The paper's finding: *all four* metrics correlate
correctly and strongly here (average |CC| ≈ 0.93) — conventional metrics
are fine as long as only the device changes.

Paper scale: 64 GB file.  Default reproduction scale: 32 MiB (the sweep
compares configurations, so only relative timing matters).
"""

from __future__ import annotations

from repro.core.analysis import SweepAnalysis
from repro.experiments.runner import (
    ExperimentScale,
    SweepSpec,
    run_sweep,
    spec_cell_task,
)
from repro.system import SystemConfig
from repro.util.units import MiB
from repro.workloads.iozone import IOzoneWorkload

#: Paper-quoted result for EXPERIMENTS.md comparison.
PAPER_AVG_ABS_CC = 0.93
PAPER_MISLEADING: tuple[str, ...] = ()

#: Base (unscaled) sizes.
BASE_FILE_SIZE = 32 * MiB
RECORD_SIZE = 1 * MiB
JITTER_SIGMA = 0.08


def build_sweep(scale: ExperimentScale) -> SweepSpec:
    """The six storage configurations of Fig. 4."""
    file_size = scale.size(BASE_FILE_SIZE, granule=RECORD_SIZE)

    def make_workload() -> IOzoneWorkload:
        return IOzoneWorkload(file_size=file_size, record_size=RECORD_SIZE)

    points: list[tuple[str, object, SystemConfig]] = []
    points.append((
        "hdd",
        make_workload,
        SystemConfig(kind="local", device_spec="sata-hdd-7200",
                     jitter_sigma=JITTER_SIGMA),
    ))
    points.append((
        "ssd",
        make_workload,
        SystemConfig(kind="local", device_spec="pcie-ssd",
                     jitter_sigma=JITTER_SIGMA),
    ))
    for n_servers in (1, 2, 4, 8):
        points.append((
            f"pvfs-{n_servers}",
            make_workload,
            SystemConfig(kind="pfs", device_spec="sata-hdd-7200",
                         n_servers=n_servers, jitter_sigma=JITTER_SIGMA),
        ))
    return SweepSpec(knob="storage configuration", points=points)


def run_set1(scale: ExperimentScale | None = None,
             **run_kwargs) -> SweepAnalysis:
    """Run the Set 1 sweep; its correlation table is Fig. 4.

    Extra keyword arguments (``checkpoint``, ``policy``, ...) pass
    through to :func:`~repro.experiments.runner.run_sweep`.
    """
    scale = scale or ExperimentScale()
    run_kwargs.setdefault("grid_task", spec_cell_task(
        f"{__name__}:build_sweep", scale))
    return run_sweep(build_sweep(scale), scale, **run_kwargs)
