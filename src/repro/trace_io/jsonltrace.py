"""JSON-lines trace format: one JSON object per record.

Required keys per line: ``pid``, ``op``, ``nbytes``, ``start``, ``end``.
Optional: ``file``, ``offset``, ``success``, ``layer``, ``retries``.
Unknown keys are ignored (forward compatibility with richer tracers).

``errors="salvage"`` (or an :class:`~repro.trace_io.policy.ErrorPolicy`)
skips malformed lines into a quarantine report instead of raising; see
:mod:`repro.trace_io.policy`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.core.records import IORecord, LAYER_APP, TraceCollection
from repro.errors import AnalysisError, TraceFormatError
from repro.trace_io.policy import ErrorPolicy, SalvageSession

_REQUIRED = ("pid", "op", "nbytes", "start", "end")


def record_from_object(obj) -> IORecord:
    """Build an :class:`IORecord` from one decoded JSONL object.

    Raises :class:`~repro.errors.TraceFormatError` with the *reason*
    only (no file:line prefix — the caller owns location context).
    Shared by the file reader below and the ``bps serve`` wire
    protocol, so a line means exactly the same thing on disk and on
    the socket.
    """
    if not isinstance(obj, dict):
        raise TraceFormatError(
            f"expected an object, got {type(obj).__name__}")
    missing = [k for k in _REQUIRED if k not in obj]
    if missing:
        raise TraceFormatError(f"missing keys {missing}")
    try:
        return IORecord(
            pid=int(obj["pid"]),
            op=str(obj["op"]),
            nbytes=int(obj["nbytes"]),
            start=float(obj["start"]),
            end=float(obj["end"]),
            file=str(obj.get("file", "")),
            offset=int(obj.get("offset", -1)),
            success=bool(obj.get("success", True)),
            layer=str(obj.get("layer", LAYER_APP)),
            retries=int(obj.get("retries", 0)),
        )
    except (TypeError, ValueError, AnalysisError) as exc:
        raise TraceFormatError(f"bad record: {exc}") from exc


def decode_jsonl_line(line: str) -> IORecord | None:
    """Decode one JSONL trace line into a record.

    Returns None for blank lines and ``#`` comments.  Raises
    :class:`~repro.errors.TraceFormatError` (reason only) on malformed
    input — the single line-decode path shared by file ingestion and
    the streaming daemon.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    try:
        obj = json.loads(stripped)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"invalid JSON: {exc}") from exc
    return record_from_object(obj)


def read_jsonl_trace(source: str | Path | IO[str], *,
                     errors: ErrorPolicy | str | None = None,
                     ) -> TraceCollection:
    """Read a JSONL trace from a path or open text stream."""
    if isinstance(source, (str, Path)):
        with open(source) as handle:
            return _read(handle, name=str(source), errors=errors)
    return _read(source, name=getattr(source, "name", "<stream>"),
                 errors=errors)


def _read(handle: IO[str], name: str,
          errors: ErrorPolicy | str | None) -> TraceCollection:
    session = SalvageSession(errors, name)
    trace = TraceCollection()
    for line_number, raw in enumerate(handle, start=1):
        try:
            record = decode_jsonl_line(raw)
        except TraceFormatError as exc:
            session.bad(line_number, str(exc), raw)
            continue
        if record is None:
            continue
        trace.add(record)
        session.kept()
    session.finish()
    if len(trace) == 0:
        raise TraceFormatError(
            f"{name}: trace contains no records "
            f"({session.report.lines_seen} data line(s) examined)")
    return trace


def write_jsonl_trace(trace: TraceCollection,
                      destination: str | Path | IO[str]) -> None:
    """Write a trace as JSON lines."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w") as handle:
            _write(trace, handle)
        return
    _write(trace, destination)


def _write(trace: TraceCollection, handle: IO[str]) -> None:
    for record in trace:
        handle.write(json.dumps({
            "pid": record.pid,
            "op": record.op,
            "nbytes": record.nbytes,
            "start": record.start,
            "end": record.end,
            "file": record.file,
            "offset": record.offset,
            "success": record.success,
            "layer": record.layer,
            "retries": record.retries,
        }) + "\n")
