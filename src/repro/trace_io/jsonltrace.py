"""JSON-lines trace format: one JSON object per record.

Required keys per line: ``pid``, ``op``, ``nbytes``, ``start``, ``end``.
Optional: ``file``, ``offset``, ``success``, ``layer``, ``retries``.
Unknown keys are ignored (forward compatibility with richer tracers).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.core.records import IORecord, LAYER_APP, TraceCollection
from repro.errors import TraceFormatError

_REQUIRED = ("pid", "op", "nbytes", "start", "end")


def read_jsonl_trace(source: str | Path | IO[str]) -> TraceCollection:
    """Read a JSONL trace from a path or open text stream."""
    if isinstance(source, (str, Path)):
        with open(source) as handle:
            return _read(handle, name=str(source))
    return _read(source, name=getattr(source, "name", "<stream>"))


def _read(handle: IO[str], name: str) -> TraceCollection:
    trace = TraceCollection()
    for line_number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"{name}:{line_number}: invalid JSON: {exc}"
            ) from exc
        if not isinstance(obj, dict):
            raise TraceFormatError(
                f"{name}:{line_number}: expected an object, got "
                f"{type(obj).__name__}"
            )
        missing = [k for k in _REQUIRED if k not in obj]
        if missing:
            raise TraceFormatError(
                f"{name}:{line_number}: missing keys {missing}"
            )
        try:
            record = IORecord(
                pid=int(obj["pid"]),
                op=str(obj["op"]),
                nbytes=int(obj["nbytes"]),
                start=float(obj["start"]),
                end=float(obj["end"]),
                file=str(obj.get("file", "")),
                offset=int(obj.get("offset", -1)),
                success=bool(obj.get("success", True)),
                layer=str(obj.get("layer", LAYER_APP)),
                retries=int(obj.get("retries", 0)),
            )
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(
                f"{name}:{line_number}: bad record: {exc}"
            ) from exc
        trace.add(record)
    if len(trace) == 0:
        raise TraceFormatError(f"{name}: trace contains no records")
    return trace


def write_jsonl_trace(trace: TraceCollection,
                      destination: str | Path | IO[str]) -> None:
    """Write a trace as JSON lines."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w") as handle:
            _write(trace, handle)
        return
    _write(trace, destination)


def _write(trace: TraceCollection, handle: IO[str]) -> None:
    for record in trace:
        handle.write(json.dumps({
            "pid": record.pid,
            "op": record.op,
            "nbytes": record.nbytes,
            "start": record.start,
            "end": record.end,
            "file": record.file,
            "offset": record.offset,
            "success": record.success,
            "layer": record.layer,
            "retries": record.retries,
        }) + "\n")
