"""Parser for blkparse(1) default text output.

``blktrace -d /dev/sdX -o - | blkparse -i -`` emits one line per block
trace event::

    8,0    3    42     0.000123456   697  Q   R 223490 + 8 [iozone]
    dev    cpu  seq    timestamp     pid  act rwbs sector + sectors [comm]

To turn events into I/O *intervals* we pair a start action (``Q`` queue
or ``D`` dispatch, caller's choice) with the matching completion ``C``
on the same (device, sector).  The paper's record is exactly such an
interval: (pid, size, start, end) — so BPS can be computed from a raw
blktrace capture with no kernel changes, the "wrap blktrace" path of
this reproduction.

Unmatched completions and never-completed starts are tolerated by
default (real captures truncate at both ends); ``strict=True`` raises.
An explicit ``errors`` policy overrides both: ``"strict"`` behaves
like ``strict=True``, ``"salvage"`` quarantines unparseable lines and
pairing problems into a :class:`~repro.trace_io.policy.QuarantineReport`
under the policy's error budget.  Note that blkparse's trailing summary
block counts against a salvage budget (legacy mode skips it silently) —
salvage is meant for event streams, not full reports.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import IO

from repro.core.records import IORecord, TraceCollection
from repro.errors import TraceFormatError
from repro.trace_io.policy import ErrorPolicy, SalvageSession

_LINE_RE = re.compile(
    r"^\s*(?P<dev>\d+,\d+)"
    r"\s+(?P<cpu>\d+)"
    r"\s+(?P<seq>\d+)"
    r"\s+(?P<time>\d+\.\d+)"
    r"\s+(?P<pid>\d+)"
    r"\s+(?P<action>[A-Z]+)"
    r"\s+(?P<rwbs>[RWDSNFBM]+)"
    r"(?:\s+(?P<sector>\d+)\s*\+\s*(?P<count>\d+))?"
    r"(?:\s+\[(?P<comm>[^\]]*)\])?"
    r"\s*$"
)

SECTOR_BYTES = 512


def read_blkparse(source: str | Path | IO[str], *,
                  start_action: str = "Q",
                  strict: bool = False,
                  errors: ErrorPolicy | str | None = None,
                  ) -> TraceCollection:
    """Parse blkparse text into an interval trace.

    ``start_action`` selects what counts as the start of an I/O:
    ``"Q"`` (request queued — includes scheduler queueing time) or
    ``"D"`` (dispatched to the device — device service time only).
    """
    if start_action not in ("Q", "D"):
        raise TraceFormatError(
            f"start_action must be 'Q' or 'D', got {start_action!r}"
        )
    if errors is not None:
        strict = ErrorPolicy.coerce(errors).mode == "strict"
    if isinstance(source, (str, Path)):
        with open(source) as handle:
            return _read(handle, str(source), start_action, strict,
                         errors)
    return _read(source, getattr(source, "name", "<stream>"),
                 start_action, strict, errors)


def _read(handle: IO[str], name: str, start_action: str,
          strict: bool, errors: ErrorPolicy | str | None,
          ) -> TraceCollection:
    session = SalvageSession(errors, name) if errors is not None else None
    salvage = session is not None and session.salvage
    pending: dict[tuple[str, int], tuple[float, int, int, str, int]] = {}
    trace = TraceCollection()
    line_count = 0

    def problem(line_number: int, reason: str, raw: str = "") -> None:
        """Route through the session when present, else legacy rules."""
        if session is not None:
            session.bad(line_number, reason, raw)
        elif strict:
            raise TraceFormatError(f"{name}:{line_number}: {reason}")

    for line_number, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        line_count += 1
        match = _LINE_RE.match(line)
        if match is None:
            # blkparse appends a summary block; legacy mode stops
            # caring at the first non-event line unless strict.
            problem(line_number, f"unparseable line {stripped!r}", line)
            continue
        if match.group("sector") is None:
            continue  # event without a sector range (e.g. plug/unplug)
        action = match.group("action")
        if action not in (start_action, "C"):
            continue
        key = (match.group("dev"), int(match.group("sector")))
        timestamp = float(match.group("time"))
        nbytes = int(match.group("count")) * SECTOR_BYTES
        if nbytes == 0:
            continue  # zero-sector events (flushes) carry no data
        op = "write" if "W" in match.group("rwbs") else "read"
        if action == start_action:
            if key in pending:
                problem(line_number, f"duplicate start for {key}", line)
                if not salvage:
                    # Legacy non-strict keeps the newer start.
                    pass
            pending[key] = (timestamp, int(match.group("pid")), nbytes,
                            op, line_number)
        else:  # completion
            started = pending.pop(key, None)
            if started is None:
                problem(line_number,
                        f"completion without start for {key}", line)
                continue
            start_time, pid, start_bytes, start_op, _start_line = started
            if timestamp < start_time:
                if salvage:
                    session.bad(
                        line_number,
                        f"completion at {timestamp} precedes start at "
                        f"{start_time} for {key}", line)
                    continue
                raise TraceFormatError(
                    f"{name}:{line_number}: completion at {timestamp} "
                    f"precedes start at {start_time} for {key}"
                )
            trace.add(IORecord(
                pid=pid, op=start_op, nbytes=start_bytes,
                start=start_time, end=timestamp,
                file=key[0], offset=key[1] * SECTOR_BYTES,
            ))
            if session is not None:
                session.kept()
    for key, (_t, _pid, _nbytes, _op, start_line) in sorted(
            pending.items(), key=lambda item: item[1][4]):
        problem(start_line, f"I/O {key} never completed")
    if session is not None:
        session.finish()
    if len(trace) == 0:
        raise TraceFormatError(
            f"{name}: no completed I/Os found "
            f"({line_count} event line(s) examined)")
    return trace