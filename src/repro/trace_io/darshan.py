"""Reader for ``darshan-parser`` text output (POSIX module counters).

Darshan is the de-facto HPC I/O characterisation tool; its binary logs
are dumped to text with ``darshan-parser``.  Per (rank, file record)
the POSIX module reports counters like::

    POSIX -1 8589... POSIX_READS        1024  /path/file ...
    POSIX -1 8589... POSIX_BYTES_READ   4194304 /path/file ...
    POSIX -1 8589... POSIX_F_READ_TIME  1.75  /path/file ...

Like fio (see :mod:`repro.trace_io.fiojson`), Darshan publishes
*aggregates*, not per-I/O intervals, so this reader reconstructs a
synthetic interval trace per (rank, file, direction):

- operation count and byte volume are exact (→ B is exact);
- the direction's cumulative busy time (``POSIX_F_READ_TIME`` /
  ``POSIX_F_WRITE_TIME``) is preserved: the reconstructed intervals
  tile ``[F_OPEN_START or 0, ...)`` back-to-back, so the per-stream
  union time equals Darshan's reported I/O time;
- rank -1 (shared file records) is mapped to pid 0, matching Darshan's
  convention of aggregating fully-shared files.

Lines from other modules (MPIIO, STDIO, LUSTRE) and header comments are
ignored.  This covers the common "I already have Darshan logs of my
app — what's its BPS?" case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

from repro.core.records import IORecord, TraceCollection
from repro.errors import TraceFormatError
from repro.trace_io.policy import ErrorPolicy, SalvageSession

_COUNTERS = {
    "POSIX_READS", "POSIX_WRITES",
    "POSIX_BYTES_READ", "POSIX_BYTES_WRITTEN",
    "POSIX_F_READ_TIME", "POSIX_F_WRITE_TIME",
    "POSIX_F_OPEN_START_TIMESTAMP",
}


@dataclass
class _FileRecord:
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_time: float = 0.0
    write_time: float = 0.0
    open_start: float = 0.0


def read_darshan(source: str | Path | IO[str], *,
                 errors: ErrorPolicy | str | None = None,
                 ) -> TraceCollection:
    """Build a synthetic interval trace from darshan-parser output."""
    if isinstance(source, (str, Path)):
        with open(source) as handle:
            return _read(handle, str(source), errors)
    return _read(source, getattr(source, "name", "<stream>"), errors)


def _read(handle: IO[str], name: str,
          errors: ErrorPolicy | str | None) -> TraceCollection:
    session = SalvageSession(errors, name)
    records: dict[tuple[int, str], _FileRecord] = {}
    for line_number, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        fields = stripped.split()
        if len(fields) < 6 or fields[0] != "POSIX":
            continue
        counter = fields[3]
        if counter not in _COUNTERS:
            continue
        try:
            rank = int(fields[1])
            value = float(fields[4])
        except ValueError as exc:
            session.bad(line_number,
                        f"bad POSIX counter line: {exc}", line)
            continue
        session.kept()
        file_name = fields[5]
        pid = max(rank, 0)  # rank -1 = shared record → pid 0
        record = records.setdefault((pid, file_name), _FileRecord())
        if counter == "POSIX_READS":
            record.reads = int(value)
        elif counter == "POSIX_WRITES":
            record.writes = int(value)
        elif counter == "POSIX_BYTES_READ":
            record.bytes_read = int(value)
        elif counter == "POSIX_BYTES_WRITTEN":
            record.bytes_written = int(value)
        elif counter == "POSIX_F_READ_TIME":
            record.read_time = value
        elif counter == "POSIX_F_WRITE_TIME":
            record.write_time = value
        elif counter == "POSIX_F_OPEN_START_TIMESTAMP":
            record.open_start = value

    trace = TraceCollection()
    for (pid, file_name), record in sorted(records.items()):
        _emit(trace, pid, file_name, "read", record.reads,
              record.bytes_read, record.read_time, record.open_start,
              name, session)
        _emit(trace, pid, file_name, "write", record.writes,
              record.bytes_written, record.write_time,
              record.open_start + record.read_time, name, session)
    session.finish()
    if len(trace) == 0:
        raise TraceFormatError(
            f"{name}: no POSIX I/O records found in darshan output "
            f"({session.report.lines_seen} counter line(s) examined)"
        )
    return trace


def _emit(trace: TraceCollection, pid: int, file_name: str, op: str,
          ops: int, total_bytes: int, busy_time: float, start: float,
          name: str, session: SalvageSession) -> None:
    if ops <= 0:
        return
    if total_bytes < 0 or busy_time < 0:
        if session.salvage:
            session.bad(0, f"negative counter for {file_name!r} "
                           f"({op} stream skipped)")
            return
        raise TraceFormatError(
            f"{name}: negative counter for {file_name!r}"
        )
    if busy_time == 0.0:
        # Cached/instant I/O: Darshan can report 0 time for real ops.
        # Give the stream a vanishing but positive extent.
        busy_time = 1e-9 * ops
    io_size = total_bytes // ops
    remainder = total_bytes - io_size * ops
    slot = busy_time / ops
    for index in range(ops):
        nbytes = io_size + (remainder if index == ops - 1 else 0)
        interval_start = start + index * slot
        trace.add(IORecord(
            pid=pid, op=op, nbytes=nbytes,
            start=interval_start, end=interval_start + slot,
            file=file_name,
        ))
