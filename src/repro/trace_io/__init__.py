"""Offline trace toolkit: compute BPS from recorded traces.

The paper's conclusion promises "an easy-to-use toolkit" — this package
is it.  It reads I/O traces from four formats and produces a
:class:`~repro.core.records.TraceCollection` ready for
:func:`~repro.core.metrics.compute_metrics`:

- the native CSV format (:mod:`repro.trace_io.csvtrace`);
- JSON-lines (:mod:`repro.trace_io.jsonltrace`);
- ``blkparse``-style text output (:mod:`repro.trace_io.blkparse`),
  covering the "wrap blktrace" use case;
- ``fio --output-format=json`` results (:mod:`repro.trace_io.fiojson`) —
  fio reports aggregates, not per-I/O intervals, so this reader
  *reconstructs* a synthetic interval trace that preserves fio's
  reported IOPS/bandwidth/latency (documented there);
- ``darshan-parser`` text output (:mod:`repro.trace_io.darshan`) —
  POSIX-module counters, reconstructed the same way per (rank, file,
  direction).

:func:`read_trace` is the one-stop dispatcher the CLI uses: it guesses
the format from the file suffix and accepts ``"-"`` for standard input
(JSONL unless a format is given), so traces can be piped straight into
``bps analyze`` / ``bps replay`` / ``bps watch``.
"""

from __future__ import annotations

import sys
from typing import IO

from repro.core.records import TraceCollection
from repro.trace_io.policy import (
    ErrorPolicy,
    QuarantineEntry,
    QuarantineReport,
)
from repro.trace_io.csvtrace import read_csv_trace, write_csv_trace
from repro.trace_io.jsonltrace import (
    decode_jsonl_line,
    read_jsonl_trace,
    record_from_object,
    write_jsonl_trace,
)
from repro.trace_io.blkparse import read_blkparse
from repro.trace_io.fiojson import read_fio_json
from repro.trace_io.darshan import read_darshan

#: Format name -> reader; every reader takes a path or open text stream.
TRACE_READERS = {
    "csv": read_csv_trace,
    "jsonl": read_jsonl_trace,
    "blkparse": read_blkparse,
    "fio": read_fio_json,
    "darshan": read_darshan,
}


def guess_format(path: str) -> str:
    """Best-effort trace format from a file name."""
    lowered = path.lower()
    if lowered.endswith(".csv"):
        return "csv"
    if lowered.endswith((".jsonl", ".ndjson")):
        return "jsonl"
    if lowered.endswith(".json"):
        return "fio"
    if lowered.endswith(".darshan.txt"):
        return "darshan"
    return "blkparse"


def read_trace(source: str, *, fmt: str | None = None,
               stdin: IO[str] | None = None,
               errors: ErrorPolicy | str | None = None,
               ) -> TraceCollection:
    """Read a trace from a path, or from stdin when ``source == "-"``.

    Stdin defaults to JSONL (the only line-structured format a pipe
    naturally produces); pass ``fmt`` to override.  ``stdin`` is
    injectable for tests.  ``errors`` selects the shared
    strict-or-salvage ingestion policy (:mod:`repro.trace_io.policy`);
    pass an :class:`ErrorPolicy` instance to get the quarantine report
    back as ``policy.report``.
    """
    if source == "-":
        handle = sys.stdin if stdin is None else stdin
        return TRACE_READERS[fmt or "jsonl"](handle, errors=errors)
    return TRACE_READERS[fmt or guess_format(source)](source,
                                                      errors=errors)


__all__ = [
    "TRACE_READERS",
    "guess_format",
    "read_trace",
    "ErrorPolicy",
    "QuarantineEntry",
    "QuarantineReport",
    "read_csv_trace",
    "write_csv_trace",
    "read_jsonl_trace",
    "write_jsonl_trace",
    "decode_jsonl_line",
    "record_from_object",
    "read_blkparse",
    "read_fio_json",
    "read_darshan",
]
