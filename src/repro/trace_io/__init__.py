"""Offline trace toolkit: compute BPS from recorded traces.

The paper's conclusion promises "an easy-to-use toolkit" — this package
is it.  It reads I/O traces from four formats and produces a
:class:`~repro.core.records.TraceCollection` ready for
:func:`~repro.core.metrics.compute_metrics`:

- the native CSV format (:mod:`repro.trace_io.csvtrace`);
- JSON-lines (:mod:`repro.trace_io.jsonltrace`);
- ``blkparse``-style text output (:mod:`repro.trace_io.blkparse`),
  covering the "wrap blktrace" use case;
- ``fio --output-format=json`` results (:mod:`repro.trace_io.fiojson`) —
  fio reports aggregates, not per-I/O intervals, so this reader
  *reconstructs* a synthetic interval trace that preserves fio's
  reported IOPS/bandwidth/latency (documented there);
- ``darshan-parser`` text output (:mod:`repro.trace_io.darshan`) —
  POSIX-module counters, reconstructed the same way per (rank, file,
  direction).
"""

from repro.trace_io.csvtrace import read_csv_trace, write_csv_trace
from repro.trace_io.jsonltrace import read_jsonl_trace, write_jsonl_trace
from repro.trace_io.blkparse import read_blkparse
from repro.trace_io.fiojson import read_fio_json
from repro.trace_io.darshan import read_darshan

__all__ = [
    "read_csv_trace",
    "write_csv_trace",
    "read_jsonl_trace",
    "write_jsonl_trace",
    "read_blkparse",
    "read_fio_json",
    "read_darshan",
]
