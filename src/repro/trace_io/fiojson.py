"""Reader for ``fio --output-format=json`` results.

fio reports *aggregates* per job (total I/Os, runtime, mean latency),
not per-I/O intervals, so an exact interval trace cannot be recovered.
This reader reconstructs a **synthetic** trace that preserves, per job:

- the operation count and byte volume (→ B of BPS is exact);
- the runtime window (→ the job's I/O intervals tile its runtime, so
  single-job union time equals runtime and BPS matches fio's own
  throughput arithmetic);
- the mean latency (each synthetic interval's length is the job's mean
  completion latency, capped at the runtime).

For multi-job files the jobs' windows all start at zero (fio starts
jobs together), so cross-job overlap is handled by the usual union.
The reconstruction is documented as approximate — it is for "give me
BPS from the fio run I already have", not for microscopic timeline
analysis.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.core.records import IORecord, TraceCollection
from repro.errors import TraceFormatError
from repro.trace_io.policy import ErrorPolicy, SalvageSession

_DIRECTIONS = ("read", "write")


def read_fio_json(source: str | Path | IO[str], *,
                  errors: ErrorPolicy | str | None = None,
                  ) -> TraceCollection:
    """Build a synthetic interval trace from a fio JSON result.

    fio output is one JSON document, so the salvage unit is the *job*:
    ``errors="salvage"`` quarantines jobs with inconsistent counters
    (I/O reported against zero runtime) instead of raising.  A document
    that does not parse at all always raises — there is no healthy
    subset to keep.
    """
    if isinstance(source, (str, Path)):
        with open(source) as handle:
            text = handle.read()
        name = str(source)
    else:
        text = source.read()
        name = getattr(source, "name", "<stream>")
    session = SalvageSession(errors, name)
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{name}: invalid JSON: {exc}") from exc
    jobs = doc.get("jobs")
    if not isinstance(jobs, list) or not jobs:
        raise TraceFormatError(f"{name}: no jobs in fio output")
    trace = TraceCollection()
    for job_index, job in enumerate(jobs):
        _add_job(trace, job, job_index, name, session)
    session.finish()
    if len(trace) == 0:
        raise TraceFormatError(
            f"{name}: fio output contains no I/O "
            f"({len(jobs)} job(s) examined)")
    return trace


def _mean_latency_s(direction: dict) -> float:
    """fio nests latency as clat_ns/lat_ns/clat (us) across versions."""
    for key, scale in (("clat_ns", 1e-9), ("lat_ns", 1e-9),
                       ("clat", 1e-6), ("lat", 1e-6)):
        stats = direction.get(key)
        if isinstance(stats, dict) and "mean" in stats:
            return float(stats["mean"]) * scale
    return 0.0


def _add_job(trace: TraceCollection, job: dict, job_index: int,
             name: str, session: SalvageSession) -> None:
    job_name = job.get("jobname", f"job{job_index}")
    for op in _DIRECTIONS:
        direction = job.get(op)
        if not isinstance(direction, dict):
            continue
        try:
            total_ios = int(direction.get("total_ios", 0))
            io_bytes = int(direction.get("io_bytes", 0))
            runtime_s = float(direction.get("runtime", 0)) / 1000.0  # ms
        except (TypeError, ValueError) as exc:
            if session.salvage:
                session.bad(job_index,
                            f"job {job_name!r} has non-numeric "
                            f"{op} counters: {exc}")
                continue
            raise TraceFormatError(
                f"{name}: job {job_name!r} has non-numeric {op} "
                f"counters: {exc}") from exc
        if total_ios <= 0 or io_bytes <= 0:
            continue
        if runtime_s <= 0:
            if session.salvage:
                session.bad(job_index,
                            f"job {job_name!r} has I/O but zero "
                            f"runtime ({op} stream skipped)")
                continue
            raise TraceFormatError(
                f"{name}: job {job_name!r} has I/O but zero runtime"
            )
        session.kept()
        latency_s = _mean_latency_s(direction)
        if latency_s <= 0 or latency_s > runtime_s:
            latency_s = runtime_s / total_ios
        io_size = io_bytes // total_ios
        remainder = io_bytes - io_size * total_ios
        # Tile the runtime: starts evenly spaced, each interval one mean
        # latency long (clipped to the runtime window).
        spacing = runtime_s / total_ios
        for i in range(total_ios):
            start = i * spacing
            end = min(start + latency_s, runtime_s)
            if end <= start:
                end = min(start + spacing, runtime_s)
            nbytes = io_size + (remainder if i == total_ios - 1 else 0)
            trace.add(IORecord(
                pid=job_index, op=op, nbytes=nbytes,
                start=start, end=end, file=job_name,
            ))
