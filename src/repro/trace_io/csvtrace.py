"""Native CSV trace format.

Header: ``pid,op,nbytes,start,end,file,offset,success``.
The first five columns are required (they are the paper's record plus
the operation); the rest are optional and default sensibly.  Lines
starting with ``#`` and blank lines are ignored.

``errors="salvage"`` skips malformed *rows* into a quarantine report
(:mod:`repro.trace_io.policy`); a missing/garbled header is structural
and always raises — there is nothing to salvage around it.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import IO

from repro.core.records import IORecord, TraceCollection
from repro.errors import AnalysisError, TraceFormatError
from repro.trace_io.policy import ErrorPolicy, SalvageSession

REQUIRED_COLUMNS = ("pid", "op", "nbytes", "start", "end")
OPTIONAL_COLUMNS = ("file", "offset", "success", "retries")


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("1", "true", "yes", "y"):
        return True
    if lowered in ("0", "false", "no", "n"):
        return False
    raise TraceFormatError(f"unparseable boolean {text!r}")


def read_csv_trace(source: str | Path | IO[str], *,
                   errors: ErrorPolicy | str | None = None,
                   ) -> TraceCollection:
    """Read a CSV trace from a path or open text stream."""
    if isinstance(source, (str, Path)):
        with open(source, newline="") as handle:
            return _read(handle, name=str(source), errors=errors)
    return _read(source, name=getattr(source, "name", "<stream>"),
                 errors=errors)


def _read(handle: IO[str], name: str,
          errors: ErrorPolicy | str | None) -> TraceCollection:
    session = SalvageSession(errors, name)
    filtered = (line for line in handle
                if line.strip() and not line.lstrip().startswith("#"))
    reader = csv.DictReader(filtered)
    if reader.fieldnames is None:
        raise TraceFormatError(f"{name}: empty trace file")
    fields = [f.strip() for f in reader.fieldnames]
    missing = [c for c in REQUIRED_COLUMNS if c not in fields]
    if missing:
        raise TraceFormatError(
            f"{name}: missing required columns {missing}; header was {fields}"
        )
    trace = TraceCollection()
    for line_number, row in enumerate(reader, start=2):
        row = {(k or "").strip(): (v or "").strip() for k, v in row.items()}
        try:
            record = IORecord(
                pid=int(row["pid"]),
                op=row["op"],
                nbytes=int(row["nbytes"]),
                start=float(row["start"]),
                end=float(row["end"]),
                file=row.get("file", "") or "",
                offset=int(row["offset"]) if row.get("offset") else -1,
                success=_parse_bool(row["success"])
                if row.get("success") else True,
                retries=int(row["retries"]) if row.get("retries") else 0,
            )
        except (TraceFormatError, KeyError, ValueError,
                AnalysisError) as exc:
            session.bad(line_number, f"bad record {row!r}: {exc}",
                        ",".join(str(v) for v in row.values()))
            continue
        trace.add(record)
        session.kept()
    session.finish()
    if len(trace) == 0:
        raise TraceFormatError(
            f"{name}: trace contains no records "
            f"({session.report.lines_seen} data row(s) examined)")
    return trace


def write_csv_trace(trace: TraceCollection,
                    destination: str | Path | IO[str]) -> None:
    """Write a trace in the native CSV format."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            _write(trace, handle)
        return
    _write(trace, destination)


def _write(trace: TraceCollection, handle: IO[str]) -> None:
    writer = csv.writer(handle)
    writer.writerow(list(REQUIRED_COLUMNS) + list(OPTIONAL_COLUMNS))
    for record in trace:
        writer.writerow([
            record.pid, record.op, record.nbytes,
            repr(record.start), repr(record.end),
            record.file, record.offset, int(record.success),
            record.retries,
        ])


def trace_to_csv_text(trace: TraceCollection) -> str:
    """The CSV serialisation as a string (convenience for tests)."""
    buffer = io.StringIO()
    _write(trace, buffer)
    return buffer.getvalue()
