"""Shared ``strict | salvage`` error policy for trace ingestion.

Production traces are partial, truncated, and occasionally corrupted —
one mangled line in a million-record capture should not abort the whole
analysis.  Every trace reader threads its per-line/per-record failures
through a :class:`SalvageSession`:

- in **strict** mode (the default everywhere) the first malformed
  input raises :class:`~repro.errors.TraceFormatError`, exactly the
  pre-salvage behaviour;
- in **salvage** mode malformed lines are *quarantined* — counted,
  their line numbers and reasons recorded in a
  :class:`QuarantineReport`, optionally copied verbatim to a
  quarantine file — and ingestion continues with the healthy records;
- a **max error ratio** bounds the damage: once the malformed fraction
  exceeds the budget the reader raises
  :class:`~repro.errors.SalvageError` — a file that is mostly garbage
  should fail fast, not produce a confidently wrong metric.  The check
  runs incrementally (so a gigabyte of noise is abandoned early) and
  again at end-of-file (so small files get an exact verdict).

The :class:`ErrorPolicy` instance passed to a reader receives the
read's :class:`QuarantineReport` as ``policy.report`` — the CLI prints
it after ``bps analyze --on-error salvage``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import IO

from repro.errors import SalvageError, TraceFormatError

STRICT = "strict"
SALVAGE = "salvage"

#: Default malformed-line budget: past this fraction the file is
#: considered garbage and salvage gives up.
DEFAULT_MAX_ERROR_RATIO = 0.25

#: Incremental budget checks start once this many data lines were seen
#: (small prefixes are noisy; tiny files are judged exactly at EOF).
_FAST_FAIL_MIN_LINES = 50


@dataclass(frozen=True)
class QuarantineEntry:
    """One skipped input: where, why, and (truncated) what."""

    line_number: int
    reason: str
    text: str = ""


class QuarantineReport:
    """What salvage-mode ingestion skipped, and why."""

    def __init__(self, source: str, *, max_error_ratio: float,
                 quarantine_path: str | Path | None = None) -> None:
        self.source = source
        self.max_error_ratio = max_error_ratio
        self.quarantine_path = (Path(quarantine_path)
                                if quarantine_path else None)
        self.entries: list[QuarantineEntry] = []
        #: Data lines (or records) examined — comments/blanks excluded.
        self.lines_seen = 0
        self.records_kept = 0

    @property
    def skipped(self) -> int:
        return len(self.entries)

    @property
    def error_ratio(self) -> float:
        return self.skipped / self.lines_seen if self.lines_seen else 0.0

    def summary(self) -> str:
        """Human-readable digest (the CLI prints this)."""
        lines = [
            f"salvage: {self.source}: kept {self.records_kept} "
            f"record(s), quarantined {self.skipped} of "
            f"{self.lines_seen} line(s) "
            f"({self.error_ratio:.1%}, budget {self.max_error_ratio:.0%})"
        ]
        for entry in self.entries[:10]:
            lines.append(f"  line {entry.line_number}: {entry.reason}")
        if self.skipped > 10:
            lines.append(f"  ... and {self.skipped - 10} more")
        if self.quarantine_path is not None:
            lines.append(f"  quarantined lines written to "
                         f"{self.quarantine_path}")
        return "\n".join(lines)


class ErrorPolicy:
    """Ingestion error policy: mode, budget, quarantine destination.

    Pass one instance per read when you want the report back —
    ``policy.report`` is (re)bound by each read that uses the policy.
    """

    def __init__(self, mode: str = STRICT, *,
                 max_error_ratio: float = DEFAULT_MAX_ERROR_RATIO,
                 quarantine_path: str | Path | None = None) -> None:
        if mode not in (STRICT, SALVAGE):
            raise TraceFormatError(
                f"error policy mode must be {STRICT!r} or {SALVAGE!r}, "
                f"got {mode!r}")
        if not (0.0 < max_error_ratio <= 1.0):
            raise TraceFormatError(
                f"max_error_ratio must be in (0, 1], "
                f"got {max_error_ratio}")
        self.mode = mode
        self.max_error_ratio = max_error_ratio
        self.quarantine_path = quarantine_path
        self.report: QuarantineReport | None = None

    @property
    def salvage(self) -> bool:
        return self.mode == SALVAGE

    @classmethod
    def coerce(cls, errors: "ErrorPolicy | str | None") -> "ErrorPolicy":
        """Accept a policy, a mode string, or None (strict)."""
        if errors is None:
            return cls(STRICT)
        if isinstance(errors, str):
            return cls(errors)
        return errors


class SalvageSession:
    """One read's error accounting; every reader drives one of these."""

    def __init__(self, errors: ErrorPolicy | str | None,
                 name: str) -> None:
        self.policy = ErrorPolicy.coerce(errors)
        self.name = name
        self.report = QuarantineReport(
            name,
            max_error_ratio=self.policy.max_error_ratio,
            quarantine_path=(self.policy.quarantine_path
                             if self.policy.salvage else None))
        self.policy.report = self.report
        self._quarantine: IO[str] | None = None

    @property
    def salvage(self) -> bool:
        return self.policy.salvage

    def kept(self) -> None:
        """One healthy record ingested."""
        self.report.lines_seen += 1
        self.report.records_kept += 1

    def bad(self, line_number: int, reason: str, text: str = "") -> None:
        """One malformed input: raise (strict) or quarantine (salvage)."""
        if not self.salvage:
            raise TraceFormatError(f"{self.name}:{line_number}: {reason}")
        self.report.lines_seen += 1
        self.report.entries.append(QuarantineEntry(
            line_number=line_number, reason=reason, text=text[:500]))
        if text and self.report.quarantine_path is not None:
            if self._quarantine is None:
                self._quarantine = open(self.report.quarantine_path, "w")
            self._quarantine.write(text.rstrip("\n") + "\n")
        if self.report.lines_seen >= _FAST_FAIL_MIN_LINES and \
                self.report.error_ratio > self.report.max_error_ratio:
            self._give_up()

    def finish(self) -> None:
        """End of input: close the quarantine, apply the exact budget."""
        if self._quarantine is not None:
            self._quarantine.close()
            self._quarantine = None
        if self.report.skipped and \
                self.report.error_ratio > self.report.max_error_ratio:
            self._give_up()

    def _give_up(self) -> None:
        if self._quarantine is not None:
            self._quarantine.close()
            self._quarantine = None
        report = self.report
        raise SalvageError(
            f"{self.name}: {report.skipped} of {report.lines_seen} "
            f"line(s) malformed ({report.error_ratio:.1%} > "
            f"{report.max_error_ratio:.0%} budget) — refusing to "
            f"salvage a garbage file; last reason: "
            f"{report.entries[-1].reason}")
