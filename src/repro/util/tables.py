"""Plain-text rendering of tables, bar charts, and series.

The experiment harness reproduces the paper's figures as terminal output:
CC bar charts (Figs. 4-6, 9, 11, 12) and two-axis series (Figs. 7, 8, 10).
Everything here is presentation-only; no analysis logic.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class TextTable:
    """Monospace table builder with per-column alignment.

    >>> t = TextTable(["metric", "CC"])
    >>> t.add_row(["BPS", "0.91"])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    metric | CC
    -------+-----
    BPS    | 0.91
    """

    def __init__(self, headers: Sequence[str]) -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        cells = [str(c) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    vmin: float = -1.0,
    vmax: float = 1.0,
    title: str = "",
) -> str:
    """Horizontal signed bar chart, mirroring the paper's CC figures.

    Values are clipped to ``[vmin, vmax]``; the zero axis sits at the
    proportional position so negative (sign-flipped) CCs visibly extend
    left — the paper's key visual.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if vmax <= vmin:
        raise ValueError("vmax must exceed vmin")
    span = vmax - vmin
    zero_col = round((0.0 - vmin) / span * width)
    label_w = max((len(l) for l in labels), default=0)
    lines: list[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        v = max(vmin, min(vmax, value))
        col = round((v - vmin) / span * width)
        cells = [" "] * (width + 1)
        lo, hi = sorted((zero_col, col))
        for i in range(lo, hi + 1):
            cells[i] = "#" if i != zero_col else "|"
        cells[zero_col] = "|"
        lines.append(f"{label.ljust(label_w)} {''.join(cells)} {value:+.3f}")
    axis = [" "] * (width + 1)
    axis[zero_col] = "0"
    axis[0] = f"{vmin:+.0f}"[0]
    lines.append(f"{' ' * label_w} {''.join(axis)}")
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence[object],
    columns: dict[str, Sequence[float]],
    *,
    float_fmt: str = "{:.6g}",
) -> str:
    """Tabular rendering of one x-axis against several y-series.

    Used for the paper's detail figures (e.g. Fig. 7: IOPS and execution
    time against I/O size).
    """
    for name, ys in columns.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, x-axis has {len(xs)}"
            )
    table = TextTable([x_label, *columns.keys()])
    for i, x in enumerate(xs):
        row: list[object] = [x]
        for ys in columns.values():
            row.append(float_fmt.format(ys[i]))
        table.add_row(row)
    return table.render()
