"""Byte-size units, block arithmetic, and human-readable formatting.

The paper defines a *block* as the unit BPS counts ("e.g., 512 bytes",
section III.A); :data:`BLOCK_SIZE` is that default.  All sizes inside the
library are plain ``int`` bytes and all times are ``float`` seconds — these
helpers exist so the conversion rules live in exactly one place.
"""

from __future__ import annotations

import math
import re

#: Binary size multipliers (bytes).
KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB
TiB: int = 1024 * GiB

#: Default I/O block unit, per the paper's definition of BPS (512 B).
BLOCK_SIZE: int = 512

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[kKmMgGtT]?i?[bB]?)\s*$"
)

_UNIT_FACTORS = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
    "t": TiB,
    "tb": TiB,
    "tib": TiB,
}


def bytes_to_blocks(nbytes: int, block_size: int = BLOCK_SIZE) -> int:
    """Number of blocks covering ``nbytes``, rounding partial blocks up.

    The paper counts "all the I/O blocks issued from the application",
    so a 100-byte request still occupies one 512-byte block.

    >>> bytes_to_blocks(512)
    1
    >>> bytes_to_blocks(513)
    2
    >>> bytes_to_blocks(0)
    0
    """
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    if block_size <= 0:
        raise ValueError(f"block size must be positive, got {block_size}")
    return -(-nbytes // block_size)


def blocks_to_bytes(nblocks: int, block_size: int = BLOCK_SIZE) -> int:
    """Exact byte count of ``nblocks`` whole blocks."""
    if nblocks < 0:
        raise ValueError(f"negative block count: {nblocks}")
    if block_size <= 0:
        raise ValueError(f"block size must be positive, got {block_size}")
    return nblocks * block_size


def parse_size(text: str | int) -> int:
    """Parse a human size string ("64KB", "8 MiB", "4096") into bytes.

    Integers pass through unchanged.  Units are case-insensitive and
    binary (K = 1024), matching how the paper quotes sizes (4KB record
    sizes, 64KB transfers, ...).

    >>> parse_size("64KB")
    65536
    >>> parse_size("8MiB")
    8388608
    >>> parse_size(512)
    512
    """
    if isinstance(text, int):
        if text < 0:
            raise ValueError(f"negative size: {text}")
        return text
    m = _SIZE_RE.match(text)
    if m is None:
        raise ValueError(f"unparseable size string: {text!r}")
    num = float(m.group("num"))
    unit = m.group("unit").lower()
    try:
        factor = _UNIT_FACTORS[unit]
    except KeyError:
        raise ValueError(f"unknown size unit in {text!r}") from None
    value = num * factor
    if not value.is_integer():
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(value)


def format_size(nbytes: int | float) -> str:
    """Render a byte count with a binary suffix ("4.0KiB", "64.0MiB")."""
    if nbytes < 0:
        return "-" + format_size(-nbytes)
    value = float(nbytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_rate(bytes_per_second: float) -> str:
    """Render a data rate ("120.5MiB/s")."""
    return f"{format_size(bytes_per_second)}/s"


def format_seconds(seconds: float) -> str:
    """Render a duration with an adaptive unit (ns/us/ms/s).

    >>> format_seconds(0.000002)
    '2.000us'
    >>> format_seconds(3.5)
    '3.500s'
    """
    if seconds != seconds:  # NaN
        return "nan"
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds == 0:
        return "0s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.3f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds:.3f}s"


def align_down(value: int, granularity: int) -> int:
    """Largest multiple of ``granularity`` that is <= ``value``."""
    if granularity <= 0:
        raise ValueError(f"granularity must be positive, got {granularity}")
    return (value // granularity) * granularity


def align_up(value: int, granularity: int) -> int:
    """Smallest multiple of ``granularity`` that is >= ``value``."""
    if granularity <= 0:
        raise ValueError(f"granularity must be positive, got {granularity}")
    return -(-value // granularity) * granularity


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= ``value`` (with ``value >= 1``)."""
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    return 1 << max(0, math.ceil(math.log2(value)))
