"""Small statistics helpers used across metrics and experiment analysis.

The Pearson correlation coefficient here is the paper's equation (2); the
higher-level sign-normalisation convention lives in
:mod:`repro.core.correlation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import AnalysisError


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if len(values) == 0:
        raise AnalysisError("mean of empty sequence")
    return float(np.mean(np.asarray(values, dtype=float)))


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise AnalysisError("geomean of empty sequence")
    if np.any(arr <= 0):
        raise AnalysisError("geomean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean of positive values (the right mean for rates)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise AnalysisError("harmonic mean of empty sequence")
    if np.any(arr <= 0):
        raise AnalysisError("harmonic mean requires strictly positive values")
    return float(arr.size / np.sum(1.0 / arr))


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient — the paper's equation (2).

    ``CC = sum((x - xbar)(y - ybar)) / (sqrt(sum((x - xbar)^2)) *
    sqrt(sum((y - ybar)^2)))``.

    Raises :class:`AnalysisError` for mismatched lengths, fewer than two
    points, or a zero-variance series (the coefficient is undefined there;
    callers that want a "no correlation" fallback should catch it).
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise AnalysisError(
            f"pearson needs two equal-length 1-D series, got shapes "
            f"{xa.shape} and {ya.shape}"
        )
    if xa.size < 2:
        raise AnalysisError("pearson needs at least two points")
    xd = xa - xa.mean()
    yd = ya - ya.mean()
    # Second centering pass: when the data sit far from zero, the first
    # subtraction leaves a common rounding offset that dominates tiny
    # deviations (and breaks invariance under affine shifts).  The
    # residual means are exactly that offset; removing them is the
    # standard two-pass correction (Chan, Golub & LeVeque 1983).
    xd -= xd.mean()
    yd -= yd.mean()
    denom = math.sqrt(float(xd @ xd)) * math.sqrt(float(yd @ yd))
    if denom == 0.0:
        raise AnalysisError("pearson undefined: a series has zero variance")
    cc = float(xd @ yd) / denom
    # Clamp tiny floating-point excursions outside [-1, 1].
    return max(-1.0, min(1.0, cc))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    min: float
    max: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.6g} std={self.std:.6g} "
            f"min={self.min:.6g} max={self.max:.6g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary`; raises on empty input."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise AnalysisError("summarize of empty sequence")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        min=float(arr.min()),
        max=float(arr.max()),
    )


def coefficient_of_variation(values: Sequence[float]) -> float:
    """std / mean; a unitless spread measure for repetition stability."""
    s = summarize(values)
    if s.mean == 0:
        raise AnalysisError("CV undefined for zero-mean sample")
    return s.std / abs(s.mean)
