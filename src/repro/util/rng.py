"""Deterministic random-number plumbing.

Every stochastic component in the simulator (device timing jitter, workload
think times, fault injection) draws from an :class:`RngStream` derived from
a single experiment seed, so any run is exactly reproducible from
``(code, config, seed)``.  Streams are spawned with
:meth:`numpy.random.SeedSequence.spawn`, which guarantees statistical
independence between subsystems without manual seed bookkeeping.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


class RngStream:
    """A named, independently-seeded random stream.

    Thin wrapper over :class:`numpy.random.Generator` adding a name (for
    debugging/repr) and child spawning.
    """

    __slots__ = ("name", "_seed_seq", "_gen")

    def __init__(self, name: str, seed_seq: np.random.SeedSequence) -> None:
        self.name = name
        self._seed_seq = seed_seq
        self._gen = np.random.default_rng(seed_seq)

    @classmethod
    def from_seed(cls, seed: int | None, name: str = "root") -> "RngStream":
        """Create a root stream from an integer seed (None = OS entropy)."""
        return cls(name, np.random.SeedSequence(seed))

    @property
    def generator(self) -> np.random.Generator:
        """The underlying NumPy generator."""
        return self._gen

    def spawn(self, name: str) -> "RngStream":
        """Derive an independent child stream."""
        (child,) = self._seed_seq.spawn(1)
        return RngStream(f"{self.name}/{name}", child)

    def spawn_many(self, name: str, n: int) -> list["RngStream"]:
        """Derive ``n`` independent child streams named ``name[i]``."""
        children = self._seed_seq.spawn(n)
        return [
            RngStream(f"{self.name}/{name}[{i}]", child)
            for i, child in enumerate(children)
        ]

    # -- convenience draws -------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw in [low, high)."""
        return float(self._gen.uniform(low, high))

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        """One normal draw."""
        return float(self._gen.normal(loc, scale))

    def lognormal_factor(self, sigma: float) -> float:
        """A multiplicative jitter factor with median 1.0.

        Used for device service-time noise: ``service *= jitter``.
        ``sigma = 0`` returns exactly 1.0.
        """
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if sigma == 0.0:
            return 1.0
        return float(self._gen.lognormal(mean=0.0, sigma=sigma))

    def exponential(self, scale: float) -> float:
        """One exponential draw with the given mean."""
        return float(self._gen.exponential(scale))

    def integers(self, low: int, high: int) -> int:
        """One integer draw in [low, high)."""
        return int(self._gen.integers(low, high))

    def choice(self, seq):
        """Pick one element of a non-empty sequence."""
        if len(seq) == 0:
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self._gen.integers(0, len(seq)))]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._gen.shuffle(seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStream({self.name!r})"


def spawn_rng(seed: int | None, *names: str) -> Iterator[RngStream]:
    """Yield one independent stream per name, all derived from ``seed``.

    >>> dev, net = spawn_rng(42, "device", "network")
    """
    root = RngStream.from_seed(seed)
    for name in names:
        yield root.spawn(name)
