"""Shared utilities: units, RNG plumbing, statistics, text rendering."""

from repro.util.units import (
    KiB,
    MiB,
    GiB,
    BLOCK_SIZE,
    bytes_to_blocks,
    blocks_to_bytes,
    parse_size,
    format_size,
    format_rate,
    format_seconds,
)
from repro.util.rng import RngStream, spawn_rng
from repro.util.stats import (
    mean,
    geomean,
    harmonic_mean,
    pearson,
    summarize,
    Summary,
)
from repro.util.tables import TextTable, render_bar_chart, render_series

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "BLOCK_SIZE",
    "bytes_to_blocks",
    "blocks_to_bytes",
    "parse_size",
    "format_size",
    "format_rate",
    "format_seconds",
    "RngStream",
    "spawn_rng",
    "mean",
    "geomean",
    "harmonic_mean",
    "pearson",
    "summarize",
    "Summary",
    "TextTable",
    "render_bar_chart",
    "render_series",
]
