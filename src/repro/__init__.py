"""repro — a full reproduction of "BPS: A Performance Metric of I/O System".

He, Sun, Yin.  IEEE IPDPSW 2013.  DOI 10.1109/IPDPSW.2013.64.

The package provides, from the bottom up:

- a deterministic discrete-event simulator (:mod:`repro.sim`);
- device, network, local-FS, and parallel-FS substrates
  (:mod:`repro.devices`, :mod:`repro.net`, :mod:`repro.fs`,
  :mod:`repro.pfs`);
- the instrumented I/O middleware where BPS measures
  (:mod:`repro.middleware`);
- **the paper's contribution** — BPS, its measurement methodology, and
  the correlation-based evaluation (:mod:`repro.core`);
- workloads shaped after IOzone/IOR/Hpio (:mod:`repro.workloads`);
- the complete evaluation-section reproduction
  (:mod:`repro.experiments`);
- an offline toolkit for real traces (:mod:`repro.trace_io`,
  :mod:`repro.cli`);
- a streaming metrics engine — windowed BPS, online union time,
  anomaly flags, telemetry sinks — for watching runs live
  (:mod:`repro.live`).

Quick taste::

    from repro import IOzoneWorkload, SystemConfig
    measurement = IOzoneWorkload().run(SystemConfig(kind="local"))
    print(measurement.metrics().bps)
"""

from repro.core import (
    IORecord,
    TraceCollection,
    MetricSet,
    bps,
    iops,
    bandwidth,
    arpt,
    union_io_time,
    union_time,
    union_time_paper,
    compute_metrics,
    EXPECTED_DIRECTIONS,
    normalized_cc,
    correlation_table,
    RunMeasurement,
    SweepAnalysis,
)
from repro.faults import FaultEvent, FaultPlan, random_fault_plan
from repro.live import (
    BpsAnomalyDetector,
    LiveTap,
    MetricStream,
    StreamingUnion,
    watch_trace,
)
from repro.middleware import RetryPolicy
from repro.system import System, SystemConfig, build_system
from repro.workloads import (
    HotSpotWorkload,
    IOzoneWorkload,
    IORWorkload,
    HpioWorkload,
    RandomAccessWorkload,
    MixedReadWriteWorkload,
    ReplayWorkload,
    ReplayOp,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "IORecord",
    "TraceCollection",
    "MetricSet",
    "bps",
    "iops",
    "bandwidth",
    "arpt",
    "union_io_time",
    "union_time",
    "union_time_paper",
    "compute_metrics",
    "EXPECTED_DIRECTIONS",
    "normalized_cc",
    "correlation_table",
    "RunMeasurement",
    "SweepAnalysis",
    "System",
    "SystemConfig",
    "build_system",
    "FaultEvent",
    "FaultPlan",
    "random_fault_plan",
    "StreamingUnion",
    "MetricStream",
    "LiveTap",
    "BpsAnomalyDetector",
    "watch_trace",
    "RetryPolicy",
    "HotSpotWorkload",
    "IOzoneWorkload",
    "IORWorkload",
    "HpioWorkload",
    "RandomAccessWorkload",
    "MixedReadWriteWorkload",
    "ReplayWorkload",
    "ReplayOp",
    "ReproError",
    "__version__",
]
