"""RAM-backed device: near-zero latency, memory-speed transfers.

Used in tests (fast, deterministic) and as the "infinitely fast storage"
baseline in ablations — with a RamDisk the I/O stack's software overheads
dominate, which isolates middleware costs from device costs.
"""

from __future__ import annotations

from repro.devices.base import BlockDevice, DeviceRequest
from repro.sim.engine import Engine
from repro.util.rng import RngStream
from repro.util.units import GiB


class RamDisk(BlockDevice):
    """Memory-speed block device (default 8 GiB at 6 GiB/s)."""

    def __init__(
        self,
        engine: Engine,
        name: str = "ramdisk",
        *,
        capacity_bytes: int = 8 * GiB,
        access_latency_s: float = 0.000001,
        transfer_rate: float = 6.0 * GiB,
        channels: int = 8,
        rng: RngStream | None = None,
        jitter_sigma: float = 0.0,
        fault_injector=None,
    ) -> None:
        super().__init__(
            engine, name, capacity_bytes,
            channels=channels,
            scheduler="fifo",
            rng=rng,
            jitter_sigma=jitter_sigma,
            fault_injector=fault_injector,
        )
        self.access_latency_s = access_latency_s
        self.transfer_rate = transfer_rate

    def service_time(self, request: DeviceRequest) -> float:
        return self.access_latency_s + request.nbytes / self.transfer_rate
