"""Block-device models: mechanical HDD, multi-channel SSD, RAM disk.

Each device turns a (op, offset, nbytes) request into a simulated service
time, with contention via the engine's resources.  The HDD/SSD parameter
defaults mirror the paper's testbed (250 GB 7200 RPM SATA-II disk, PCI-E
X4 100 GB SSD).
"""

from repro.devices.base import (
    BlockDevice,
    DeviceRequest,
    DeviceResult,
    DeviceStats,
    FaultInjector,
    READ,
    WRITE,
)
from repro.devices.hdd import HDDModel
from repro.devices.ssd import SSDModel
from repro.devices.ramdisk import RamDisk
from repro.devices.raid import RAIDArray
from repro.devices.specs import (
    DEVICE_SPECS,
    make_device,
    paper_hdd,
    paper_ssd,
)

__all__ = [
    "BlockDevice",
    "DeviceRequest",
    "DeviceResult",
    "DeviceStats",
    "FaultInjector",
    "READ",
    "WRITE",
    "HDDModel",
    "SSDModel",
    "RamDisk",
    "RAIDArray",
    "DEVICE_SPECS",
    "make_device",
    "paper_hdd",
    "paper_ssd",
]
