"""Mechanical hard-disk model: seek + rotational latency + transfer.

The model keeps the head position (byte address) as state:

- sequential access (request starts where the head stopped) pays neither
  seek nor rotational latency — this is what makes large-record sequential
  reads fast and gives Set 2 its shape;
- a non-sequential access pays a distance-dependent seek (square-root
  curve between ``track_to_track_s`` and ``full_stroke_s``) plus an average
  rotational latency of half a revolution (the paper's section II quotes
  exactly this empirical half-period relation);
- the transfer itself is ``nbytes / transfer_rate`` regardless of locality;
- every command pays a fixed controller overhead ``command_overhead_s``.

Like a real drive's segmented cache (and the OS's per-file read-ahead),
the model tracks up to ``cache_segments`` concurrent sequential streams:
a request that exactly continues *any* tracked stream is serviced at
sequential cost, so N interleaved sequential readers do not degenerate
into a seek storm.  Genuinely random access still pays the full
positioning cost.
"""

from __future__ import annotations

import math

from repro.devices.base import BlockDevice, DeviceRequest
from repro.errors import DeviceError
from repro.sim.engine import Engine
from repro.util.rng import RngStream
from repro.util.units import GiB, MiB


class HDDModel(BlockDevice):
    """Single-actuator rotating disk.

    Defaults approximate the paper's 250 GB 7200 RPM SATA-II drive:
    ~8.5 ms average seek, 4.17 ms average rotational latency,
    ~100 MiB/s sustained media rate.
    """

    def __init__(
        self,
        engine: Engine,
        name: str = "hdd",
        *,
        capacity_bytes: int = 250 * GiB,
        rpm: float = 7200.0,
        full_stroke_s: float = 0.017,
        track_to_track_s: float = 0.0008,
        transfer_rate: float = 100.0 * MiB,
        command_overhead_s: float = 0.00010,
        cache_segments: int = 8,
        scheduler: str = "fifo",
        rng: RngStream | None = None,
        jitter_sigma: float = 0.0,
        fault_injector=None,
    ) -> None:
        if rpm <= 0:
            raise DeviceError(f"rpm must be positive: {rpm}")
        if transfer_rate <= 0:
            raise DeviceError(f"transfer_rate must be positive: {transfer_rate}")
        if full_stroke_s < track_to_track_s:
            raise DeviceError(
                "full-stroke seek cannot be shorter than track-to-track"
            )
        super().__init__(
            engine, name, capacity_bytes,
            channels=1,  # one actuator arm
            scheduler=scheduler,
            rng=rng,
            jitter_sigma=jitter_sigma,
            fault_injector=fault_injector,
        )
        self.rpm = rpm
        self.full_stroke_s = full_stroke_s
        self.track_to_track_s = track_to_track_s
        self.transfer_rate = transfer_rate
        self.command_overhead_s = command_overhead_s
        #: Byte address one past the last serviced byte (head position).
        self.head_position = 0
        if cache_segments < 1:
            raise DeviceError(f"cache_segments must be >= 1: {cache_segments}")
        self.cache_segments = cache_segments
        #: End positions of recently-seen sequential streams (LRU order,
        #: most recent last) — the drive's segmented cache.
        self._streams: list[int] = []

    # -- timing components ---------------------------------------------------

    @property
    def rotation_period_s(self) -> float:
        """One full revolution in seconds."""
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency_s(self) -> float:
        """Half a revolution — the empirical average the paper quotes."""
        return self.rotation_period_s / 2.0

    def seek_time(self, from_byte: int, to_byte: int) -> float:
        """Distance-dependent seek: sqrt curve over the stroke.

        Zero for a perfectly sequential continuation; otherwise between
        ``track_to_track_s`` and ``full_stroke_s``.
        """
        if from_byte == to_byte:
            return 0.0
        fraction = abs(to_byte - from_byte) / self.capacity_bytes
        return (self.track_to_track_s
                + (self.full_stroke_s - self.track_to_track_s)
                * math.sqrt(min(1.0, fraction)))

    def _continues_stream(self, offset: int) -> bool:
        """Does ``offset`` exactly continue any tracked stream?"""
        return offset == self.head_position or offset in self._streams

    def service_time(self, request: DeviceRequest) -> float:
        positioning = 0.0
        if not self._continues_stream(request.offset):
            positioning = (self.seek_time(self.head_position, request.offset)
                           + self.avg_rotational_latency_s)
        transfer = request.nbytes / self.transfer_rate
        return self.command_overhead_s + positioning + transfer

    def _note_serviced(self, request: DeviceRequest) -> None:
        self.head_position = request.end
        if request.offset in self._streams:
            self._streams.remove(request.offset)
        self._streams.append(request.end)
        if len(self._streams) > self.cache_segments:
            del self._streams[0]
