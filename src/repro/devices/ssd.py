"""Solid-state drive model: fixed access latency, parallel channels.

An SSD has no positional state.  Each request pays a per-op access
latency (flash read/program latency plus controller work) and a transfer
time at the per-channel rate; up to ``channels`` requests proceed in
parallel, so the aggregate sequential bandwidth is roughly
``channels * channel_rate`` under sufficient queue depth.

Writes are slower than reads (program > read latency), which the model
exposes via separate latency parameters.
"""

from __future__ import annotations

from repro.devices.base import BlockDevice, DeviceRequest, READ
from repro.errors import DeviceError
from repro.sim.engine import Engine
from repro.util.rng import RngStream
from repro.util.units import GiB, MiB


class SSDModel(BlockDevice):
    """Multi-channel flash device.

    Defaults approximate the paper's PCI-E X4 100 GB SSD: 60 µs read
    latency, 4 channels at 180 MiB/s each (~720 MiB/s aggregate).
    """

    def __init__(
        self,
        engine: Engine,
        name: str = "ssd",
        *,
        capacity_bytes: int = 100 * GiB,
        read_latency_s: float = 0.000060,
        write_latency_s: float = 0.000250,
        channel_rate: float = 180.0 * MiB,
        channels: int = 4,
        command_overhead_s: float = 0.000020,
        rng: RngStream | None = None,
        jitter_sigma: float = 0.0,
        fault_injector=None,
    ) -> None:
        if read_latency_s < 0 or write_latency_s < 0:
            raise DeviceError("latencies must be non-negative")
        if channel_rate <= 0:
            raise DeviceError(f"channel_rate must be positive: {channel_rate}")
        super().__init__(
            engine, name, capacity_bytes,
            channels=channels,
            scheduler="fifo",  # no positional state => elevator is pointless
            rng=rng,
            jitter_sigma=jitter_sigma,
            fault_injector=fault_injector,
        )
        self.read_latency_s = read_latency_s
        self.write_latency_s = write_latency_s
        self.channel_rate = channel_rate
        self.command_overhead_s = command_overhead_s

    def service_time(self, request: DeviceRequest) -> float:
        latency = (self.read_latency_s if request.op == READ
                   else self.write_latency_s)
        transfer = request.nbytes / self.channel_rate
        return self.command_overhead_s + latency + transfer
