"""Named device specifications and a factory.

``DEVICE_SPECS`` is a catalog keyed by spec name; :func:`make_device`
instantiates one on an engine.  ``paper_hdd`` / ``paper_ssd`` build the
two devices of the paper's testbed (section IV.B): a 250 GB 7200 RPM
SATA-II disk and a PCI-E X4 100 GB SSD.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.devices.base import BlockDevice
from repro.devices.hdd import HDDModel
from repro.devices.ramdisk import RamDisk
from repro.devices.ssd import SSDModel
from repro.errors import DeviceError
from repro.sim.engine import Engine
from repro.util.rng import RngStream
from repro.util.units import GiB, MiB


@dataclass(frozen=True)
class DeviceSpec:
    """A named device configuration."""

    name: str
    kind: str  # "hdd" | "ssd" | "ramdisk"
    params: dict[str, Any] = field(default_factory=dict)
    description: str = ""


DEVICE_SPECS: dict[str, DeviceSpec] = {
    "sata-hdd-7200": DeviceSpec(
        name="sata-hdd-7200",
        kind="hdd",
        params=dict(
            capacity_bytes=250 * GiB,
            rpm=7200.0,
            full_stroke_s=0.017,
            track_to_track_s=0.0008,
            transfer_rate=100.0 * MiB,
            command_overhead_s=0.00010,
        ),
        description="250GB 7200RPM SATA-II HDD (paper testbed compute node)",
    ),
    "sata-hdd-5400": DeviceSpec(
        name="sata-hdd-5400",
        kind="hdd",
        params=dict(
            capacity_bytes=250 * GiB,
            rpm=5400.0,
            full_stroke_s=0.021,
            track_to_track_s=0.0011,
            transfer_rate=70.0 * MiB,
            command_overhead_s=0.00012,
        ),
        description="Slower laptop-class 5400RPM HDD",
    ),
    "pcie-ssd": DeviceSpec(
        name="pcie-ssd",
        kind="ssd",
        params=dict(
            capacity_bytes=100 * GiB,
            read_latency_s=0.000060,
            write_latency_s=0.000250,
            channel_rate=180.0 * MiB,
            channels=4,
            command_overhead_s=0.000020,
        ),
        description="PCI-E X4 100GB SSD (paper testbed, 17 nodes)",
    ),
    "sata-ssd": DeviceSpec(
        name="sata-ssd",
        kind="ssd",
        params=dict(
            capacity_bytes=120 * GiB,
            read_latency_s=0.000090,
            write_latency_s=0.000350,
            channel_rate=120.0 * MiB,
            channels=2,
            command_overhead_s=0.000030,
        ),
        description="SATA-attached consumer SSD",
    ),
    "ramdisk": DeviceSpec(
        name="ramdisk",
        kind="ramdisk",
        params=dict(capacity_bytes=8 * GiB),
        description="Memory-speed device for tests and software-overhead ablations",
    ),
    "nvme-ssd": DeviceSpec(
        name="nvme-ssd",
        kind="ssd",
        params=dict(
            capacity_bytes=1024 * GiB,
            read_latency_s=0.000012,
            write_latency_s=0.000020,
            channel_rate=350.0 * MiB,
            channels=8,
            command_overhead_s=0.000004,
        ),
        description="Modern NVMe drive (post-paper hardware, for "
                    "what-if replays)",
    ),
    "sas-hdd-15k": DeviceSpec(
        name="sas-hdd-15k",
        kind="hdd",
        params=dict(
            capacity_bytes=146 * GiB,
            rpm=15000.0,
            full_stroke_s=0.0065,
            track_to_track_s=0.0004,
            transfer_rate=160.0 * MiB,
            command_overhead_s=0.00008,
        ),
        description="Enterprise 15K RPM SAS drive",
    ),
    "raid0-hdd-4": DeviceSpec(
        name="raid0-hdd-4",
        kind="raid",
        params=dict(level=0, n_members=4, member_spec="sata-hdd-7200",
                    chunk_size=64 * 1024),
        description="4-disk RAID-0 over the paper's HDDs",
    ),
    "raid1-hdd-2": DeviceSpec(
        name="raid1-hdd-2",
        kind="raid",
        params=dict(level=1, n_members=2, member_spec="sata-hdd-7200",
                    chunk_size=64 * 1024),
        description="2-disk mirror over the paper's HDDs",
    ),
}

_KIND_CLASSES: dict[str, type[BlockDevice]] = {
    "hdd": HDDModel,
    "ssd": SSDModel,
    "ramdisk": RamDisk,
}


def make_device(
    engine: Engine,
    spec: str | DeviceSpec,
    *,
    name: str | None = None,
    rng: RngStream | None = None,
    jitter_sigma: float = 0.0,
    **overrides: Any,
):
    """Instantiate a device from a spec name or :class:`DeviceSpec`.

    ``overrides`` replace individual spec parameters (e.g. a different
    ``capacity_bytes`` for a scaled-down test).  Returns a
    :class:`BlockDevice` or, for "raid" specs, a
    :class:`~repro.devices.raid.RAIDArray` (same submit/access
    protocol).
    """
    if isinstance(spec, str):
        try:
            spec = DEVICE_SPECS[spec]
        except KeyError:
            known = ", ".join(sorted(DEVICE_SPECS))
            raise DeviceError(
                f"unknown device spec {spec!r}; known specs: {known}"
            ) from None
    params = dict(spec.params)
    params.update(overrides)
    if spec.kind == "raid":
        from repro.devices.raid import RAIDArray
        array_name = name or spec.name
        n_members = params.pop("n_members")
        member_spec = params.pop("member_spec")
        member_rngs = (rng.spawn_many("member", n_members)
                       if rng is not None else [None] * n_members)
        members = [
            make_device(engine, member_spec,
                        name=f"{array_name}.m{index}",
                        rng=member_rngs[index],
                        jitter_sigma=jitter_sigma)
            for index in range(n_members)
        ]
        return RAIDArray(engine, members, name=array_name, **params)
    try:
        cls = _KIND_CLASSES[spec.kind]
    except KeyError:
        raise DeviceError(f"unknown device kind {spec.kind!r}") from None
    return cls(
        engine,
        name or spec.name,
        rng=rng,
        jitter_sigma=jitter_sigma,
        **params,
    )


def paper_hdd(engine: Engine, *, name: str = "hdd",
              rng: RngStream | None = None,
              jitter_sigma: float = 0.0, **overrides: Any) -> HDDModel:
    """The paper testbed's HDD (250GB 7200RPM SATA-II)."""
    device = make_device(engine, "sata-hdd-7200", name=name, rng=rng,
                         jitter_sigma=jitter_sigma, **overrides)
    assert isinstance(device, HDDModel)
    return device


def paper_ssd(engine: Engine, *, name: str = "ssd",
              rng: RngStream | None = None,
              jitter_sigma: float = 0.0, **overrides: Any) -> SSDModel:
    """The paper testbed's SSD (PCI-E X4 100GB)."""
    device = make_device(engine, "pcie-ssd", name=name, rng=rng,
                         jitter_sigma=jitter_sigma, **overrides)
    assert isinstance(device, SSDModel)
    return device
