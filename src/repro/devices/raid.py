"""Software RAID over member block devices.

Adds storage-configuration variety beyond single devices (the Set 1
axis): RAID-0 stripes requests across members for bandwidth, RAID-1
mirrors them for redundancy (reads go to one member, writes to all).

The array presents the same :class:`~repro.devices.base.BlockDevice`
``submit``/``access`` surface, so it drops into
:class:`~repro.fs.localfs.LocalFileSystem` or an I/O server unchanged —
including an extra device spec (``raid0-hdd-4``) usable from
:class:`~repro.system.SystemConfig`.
"""

from __future__ import annotations

from repro.devices.base import (
    BlockDevice,
    DeviceRequest,
    DeviceResult,
    DeviceStats,
    READ,
    WRITE,
)
from repro.errors import DeviceError
from repro.sim.engine import Engine
from repro.sim.events import Completion
from repro.sim.monitor import UtilizationTracker
from repro.util.units import KiB


class RAIDArray:
    """RAID-0 or RAID-1 over equal member devices.

    Not a :class:`BlockDevice` subclass — the array has no service-time
    model of its own; it decomposes requests and delegates.  It matches
    the BlockDevice *protocol* (``capacity_bytes``, ``submit``,
    ``access``, ``stats``, ``name``), which is all the FS layer uses.
    """

    def __init__(self, engine: Engine, members: list[BlockDevice], *,
                 level: int = 0, chunk_size: int = 64 * KiB,
                 name: str = "raid") -> None:
        if len(members) < 2:
            raise DeviceError("a RAID array needs at least two members")
        if level not in (0, 1):
            raise DeviceError(f"unsupported RAID level {level}")
        if chunk_size <= 0:
            raise DeviceError(f"bad chunk size {chunk_size}")
        capacities = {m.capacity_bytes for m in members}
        if len(capacities) != 1:
            raise DeviceError("RAID members must have equal capacity")
        self.engine = engine
        self.members = list(members)
        self.level = level
        self.chunk_size = chunk_size
        self.name = name
        self.stats = DeviceStats()
        self.utilization = UtilizationTracker(engine, name=f"{name}.util")
        member_capacity = members[0].capacity_bytes
        if level == 0:
            self.capacity_bytes = member_capacity * len(members)
        else:
            self.capacity_bytes = member_capacity
        self._read_cursor = 0  # RAID-1 read balancing

    # -- request decomposition ------------------------------------------------

    def _split_raid0(self, request: DeviceRequest
                     ) -> list[tuple[BlockDevice, DeviceRequest]]:
        parts = []
        position = request.offset
        end = request.end
        n = len(self.members)
        while position < end:
            chunk = position // self.chunk_size
            within = position - chunk * self.chunk_size
            take = min(end - position, self.chunk_size - within)
            member = self.members[chunk % n]
            member_offset = (chunk // n) * self.chunk_size + within
            parts.append((member, DeviceRequest(request.op,
                                                member_offset, take)))
            position += take
        return parts

    def _members_for_raid1(self, request: DeviceRequest
                           ) -> list[BlockDevice]:
        if request.op == WRITE:
            return list(self.members)  # every mirror writes
        # Round-robin read balancing across mirrors.
        member = self.members[self._read_cursor % len(self.members)]
        self._read_cursor += 1
        return [member]

    # -- BlockDevice protocol --------------------------------------------------

    def submit(self, request: DeviceRequest) -> Completion:
        """Queue a request; completion fires with a DeviceResult."""
        if request.end > self.capacity_bytes:
            raise DeviceError(
                f"{self.name}: request [{request.offset}, {request.end}) "
                f"exceeds capacity {self.capacity_bytes}"
            )
        done = self.engine.completion()
        self.engine.spawn(self._serve(request, done),
                          name=f"{self.name}.serve")
        return done

    def access(self, op: str, offset: int, nbytes: int) -> Completion:
        """Convenience wrapper building the request inline."""
        return self.submit(DeviceRequest(op, offset, nbytes))

    def _serve(self, request: DeviceRequest, done: Completion):
        start = self.engine.now
        self.utilization.busy()
        try:
            if self.level == 0:
                pending = [member.submit(part)
                           for member, part in self._split_raid0(request)]
            else:
                pending = [member.submit(request)
                           for member in self._members_for_raid1(request)]
            results: list[DeviceResult] = yield self.engine.all_of(pending)
        finally:
            self.utilization.idle()
        success = all(r.success for r in results)
        errors = "; ".join(r.error for r in results if not r.success)
        if request.op == READ:
            self.stats.reads += 1
            if success:
                self.stats.bytes_read += request.nbytes
        else:
            self.stats.writes += 1
            if success:
                self.stats.bytes_written += request.nbytes
        if not success:
            self.stats.faults += 1
        done.trigger(DeviceResult(request, start, self.engine.now,
                                  success=success, error=errors))

    @property
    def queue_length(self) -> int:
        """Total requests queued at members."""
        return sum(m.queue_length for m in self.members)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<RAIDArray level={self.level} "
                f"members={len(self.members)} {self.name}>")
