"""Common block-device machinery: request/result types, queueing, faults.

A device is a resource (its channels) plus a service-time model supplied
by subclasses.  Requests go through :meth:`BlockDevice.submit`, which
returns a completion firing with a :class:`DeviceResult`.  Two queueing
disciplines are available: FIFO (default) and an elevator (C-LOOK-style)
order keyed on the request offset — an ablation target in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeviceError, DeviceFault
from repro.sim.engine import Engine
from repro.sim.events import Completion
from repro.sim.monitor import UtilizationTracker
from repro.sim.resources import PriorityResource, Resource
from repro.util.rng import RngStream

#: Operation tags used across the whole stack.
READ = "read"
WRITE = "write"

_VALID_OPS = frozenset((READ, WRITE))


@dataclass(frozen=True)
class DeviceRequest:
    """One block-level access: ``op`` on ``nbytes`` at byte ``offset``."""

    op: str
    offset: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.op not in _VALID_OPS:
            raise DeviceError(f"unknown op {self.op!r}")
        if self.offset < 0:
            raise DeviceError(f"negative offset {self.offset}")
        if self.nbytes <= 0:
            raise DeviceError(f"non-positive size {self.nbytes}")

    @property
    def end(self) -> int:
        """One past the last byte touched."""
        return self.offset + self.nbytes


@dataclass(frozen=True)
class DeviceResult:
    """Outcome of a device access.

    ``success`` is False when a fault was injected; the paper's B counts
    such accesses anyway (section III.A), so callers must not silently
    drop failed results from traces.
    """

    request: DeviceRequest
    start: float
    end: float
    success: bool = True
    error: str = ""

    @property
    def latency(self) -> float:
        """Wall time the access spent in the device (including queueing)."""
        return self.end - self.start


@dataclass
class DeviceStats:
    """Cumulative counters kept by every device."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    faults: int = 0
    total_service_time: float = 0.0

    @property
    def ops(self) -> int:
        """Total completed operations (successful or faulted)."""
        return self.reads + self.writes

    @property
    def bytes_moved(self) -> int:
        """Total bytes transferred in either direction."""
        return self.bytes_read + self.bytes_written


class FaultInjector:
    """Bernoulli fault injection for failure-path testing.

    With probability ``probability`` a request fails after consuming
    ``time_fraction`` of its nominal service time (a partially-performed
    access, e.g. a medium error mid-transfer).

    ``per_bytes`` switches to a per-byte failure model: ``probability``
    then applies independently to each ``per_bytes``-sized granule of a
    request, so larger transfers fail more often (media errors scale
    with the data touched, not with the request count).

    The stream must be an :class:`~repro.util.rng.RngStream` from the
    run's seeded hierarchy — ad-hoc randomness would break the
    bit-reproducibility the parallel sweep runner relies on.  The
    probability is mutable after construction (via :meth:`set_probability`)
    so fault plans can open and close fault windows on a live device.
    """

    def __init__(self, rng: RngStream, probability: float,
                 time_fraction: float = 0.5,
                 per_bytes: int = 0) -> None:
        if not isinstance(rng, RngStream):
            raise DeviceError(
                f"FaultInjector needs an RngStream from the seeded "
                f"hierarchy, got {type(rng).__name__}"
            )
        if not 0.0 < time_fraction <= 1.0:
            raise DeviceError(f"time_fraction out of range: {time_fraction}")
        if per_bytes < 0:
            raise DeviceError(f"negative per_bytes: {per_bytes}")
        self.rng = rng
        self.probability = probability
        self.set_probability(probability)  # range check
        self.time_fraction = time_fraction
        self.per_bytes = per_bytes

    def set_probability(self, probability: float) -> None:
        """Change the fault rate (fault-plan windows use this)."""
        if not 0.0 <= probability <= 1.0:
            raise DeviceError(f"probability out of range: {probability}")
        self.probability = probability

    def request_probability(self, nbytes: int = 0) -> float:
        """Effective failure probability for one request."""
        if self.per_bytes <= 0 or nbytes <= 0:
            return self.probability
        granules = -(-nbytes // self.per_bytes)  # ceil
        return 1.0 - (1.0 - self.probability) ** granules

    def should_fail(self, nbytes: int = 0) -> bool:
        """Draw once: does the next request fail?

        The draw is taken even at probability 0 so that opening a fault
        window mid-run does not shift the RNG stream of later requests —
        a faulted run stays bit-comparable to its fault-free twin.
        """
        return self.rng.uniform() < self.request_probability(nbytes)


class BlockDevice:
    """Abstract block device; subclasses implement ``service_time``.

    Parameters
    ----------
    engine:
        The simulation engine.
    name:
        Human-readable identifier (appears in traces and stats).
    capacity_bytes:
        Addressable size; out-of-range requests raise.
    channels:
        Number of concurrently-serviced requests (1 = single actuator).
    scheduler:
        ``"fifo"`` or ``"elevator"`` (offset-ordered service).
    rng:
        Stream for service-time jitter; None disables jitter.
    jitter_sigma:
        Log-normal sigma for multiplicative service-time noise.
    fault_injector:
        Optional :class:`FaultInjector`.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        capacity_bytes: int,
        *,
        channels: int = 1,
        scheduler: str = "fifo",
        rng: RngStream | None = None,
        jitter_sigma: float = 0.0,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise DeviceError(f"capacity must be positive: {capacity_bytes}")
        if scheduler not in ("fifo", "elevator"):
            raise DeviceError(f"unknown scheduler {scheduler!r}")
        self.engine = engine
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.scheduler = scheduler
        if scheduler == "elevator":
            self._resource: Resource = PriorityResource(
                engine, capacity=channels, name=f"{name}.chan")
        else:
            self._resource = Resource(
                engine, capacity=channels, name=f"{name}.chan")
        self.channels = channels
        self.rng = rng
        self.jitter_sigma = jitter_sigma
        self.fault_injector = fault_injector
        #: Multiplicative service-time degradation (>= 1.0).  Fault
        #: plans raise this during a degradation window (worn media,
        #: thermal throttling, a rebuilding array) and restore it after.
        self.degrade = 1.0
        self.stats = DeviceStats()
        self.utilization = UtilizationTracker(engine, name=f"{name}.util")

    # -- subclass interface ---------------------------------------------------

    def service_time(self, request: DeviceRequest) -> float:
        """Nominal service time for ``request`` (no queueing, no jitter)."""
        raise NotImplementedError

    def _note_serviced(self, request: DeviceRequest) -> None:
        """Hook for subclasses to update positional state (head position)."""

    # -- public API -------------------------------------------------------------

    def submit(self, request: DeviceRequest) -> Completion:
        """Queue ``request``; returns a completion firing with DeviceResult."""
        if request.end > self.capacity_bytes:
            raise DeviceError(
                f"{self.name}: request [{request.offset}, {request.end}) "
                f"exceeds capacity {self.capacity_bytes}"
            )
        done = self.engine.completion()
        self.engine.spawn(self._serve(request, done),
                          name=f"{self.name}.serve")
        return done

    def access(self, op: str, offset: int, nbytes: int) -> Completion:
        """Convenience wrapper building the request inline."""
        return self.submit(DeviceRequest(op, offset, nbytes))

    # -- internals ------------------------------------------------------------

    def _acquire_grant(self, request: DeviceRequest):
        if isinstance(self._resource, PriorityResource):
            # Elevator: serve in ascending offset order among waiters.
            return self._resource.acquire(priority=float(request.offset))
        return self._resource.acquire()

    def _serve(self, request: DeviceRequest, done: Completion):
        start = self.engine.now
        grant = self._acquire_grant(request)
        yield grant
        self.utilization.busy()
        try:
            nominal = self.service_time(request)
            if self.degrade != 1.0:
                nominal *= self.degrade
            if self.rng is not None and self.jitter_sigma > 0.0:
                nominal *= self.rng.lognormal_factor(self.jitter_sigma)
            failed = (self.fault_injector is not None
                      and self.fault_injector.should_fail(request.nbytes))
            if failed:
                nominal *= self.fault_injector.time_fraction
            yield self.engine.timeout(nominal)
            self._note_serviced(request)
            self.stats.total_service_time += nominal
            if request.op == READ:
                self.stats.reads += 1
                if not failed:
                    self.stats.bytes_read += request.nbytes
            else:
                self.stats.writes += 1
                if not failed:
                    self.stats.bytes_written += request.nbytes
            if failed:
                self.stats.faults += 1
                done.trigger(DeviceResult(
                    request, start, self.engine.now, success=False,
                    error=f"injected fault on {self.name}"))
            else:
                done.trigger(DeviceResult(request, start, self.engine.now))
        finally:
            self.utilization.idle()
            self._resource.release()

    @property
    def queue_length(self) -> int:
        """Requests waiting for a channel right now."""
        return self._resource.queue_length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"
