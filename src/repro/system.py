"""System assembly: one simulated I/O stack per run.

A :class:`SystemConfig` describes a platform declaratively (local file
system on one device, or a PVFS-like parallel file system on N servers);
:func:`build_system` turns it into a live :class:`System`: engine,
devices, mounts, middleware, and one shared
:class:`~repro.middleware.tracing.TraceRecorder`.

Every run of every experiment builds a *fresh* system (fresh engine at
t=0, cold caches) — the simulation analogue of the paper's "system
caches of all computing nodes and I/O servers were flushed prior to
each run".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.devices import make_device
from repro.devices.base import BlockDevice
from repro.errors import ExperimentError
from repro.fs.cache import PageCache
from repro.fs.localfs import LocalFileSystem
from repro.middleware.mpiio import MPIIO, MPIIOHints
from repro.middleware.posix import PosixIO
from repro.middleware.tracing import TraceRecorder
from repro.net.topology import StarTopology
from repro.pfs.layout import StripeLayout
from repro.pfs.pvfs import ParallelFileSystem, PFSClient
from repro.pfs.server import IOServer
from repro.sim.engine import Engine
from repro.util.rng import RngStream
from repro.util.units import KiB, MiB


@dataclass(frozen=True)
class SystemConfig:
    """Declarative description of a simulated platform.

    ``kind`` selects the storage architecture:

    - ``"local"``: one device with a local file system (paper Sets 1-2);
    - ``"pfs"``: ``n_servers`` I/O servers behind a network (Sets 1, 3, 4).
    """

    kind: str = "local"
    device_spec: str = "sata-hdd-7200"
    device_overrides: dict[str, Any] = field(default_factory=dict)
    # local-fs knobs
    cache_pages: int = 16384
    page_size: int = 4096
    cache_policy: str = "write-through"
    fs_overhead_s: float = 0.000030
    readahead_pages: int = 0
    # pfs knobs
    n_servers: int = 4
    stripe_size: int = 64 * KiB
    server_threads: int = 16
    server_overhead_s: float = 0.000080
    #: Simulate a dedicated metadata server (PVFS2-style MDS) so
    #: in-run create/stat operations cost real round trips.
    with_mds: bool = False
    mds_overhead_s: float = 0.000150
    net_bandwidth: float = 125.0 * MiB
    net_latency_s: float = 0.000050
    #: Aggregate switch capacity (None = non-blocking fabric).
    backplane_bandwidth: float | None = None
    #: Client NIC speed override (None = net_bandwidth).  The paper's
    #: compute nodes are GigE; sweeps that need a contention-light client
    #: (e.g. one node hosting all IOzone throughput processes) set this.
    client_bandwidth: float | None = None
    # shared knobs
    jitter_sigma: float = 0.0
    seed: int | None = 12345
    #: Keep per-access fs-layer trace records (heavier; enables
    #: layered app-vs-fs BPS comparisons).
    keep_fs_records: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("local", "pfs"):
            raise ExperimentError(f"unknown system kind {self.kind!r}")
        if self.kind == "pfs" and self.n_servers < 1:
            raise ExperimentError(f"bad server count {self.n_servers}")

    def with_seed(self, seed: int | None) -> "SystemConfig":
        """Copy with a different seed (repetition control)."""
        from dataclasses import replace
        return replace(self, seed=seed)


class System:
    """A live simulated platform, ready to run one workload."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.engine = Engine()
        self.rng = RngStream.from_seed(config.seed)
        self.recorder = TraceRecorder(
            self.engine, keep_fs_records=config.keep_fs_records)
        self.devices: list[BlockDevice] = []
        self.network: StarTopology | None = None
        self.pfs: ParallelFileSystem | None = None
        self.localfs: LocalFileSystem | None = None
        self._clients: dict[int, PFSClient] = {}
        if config.kind == "local":
            self._build_local()
        else:
            self._build_pfs()

    # -- construction ------------------------------------------------------

    def _build_local(self) -> None:
        config = self.config
        device = make_device(
            self.engine, config.device_spec,
            rng=self.rng.spawn("device"),
            jitter_sigma=config.jitter_sigma,
            **config.device_overrides,
        )
        self.devices.append(device)
        cache = None
        if config.cache_pages > 0:
            cache = PageCache(config.cache_pages, config.page_size,
                              policy=config.cache_policy)
        self.localfs = LocalFileSystem(
            self.engine, device,
            page_cache=cache,
            per_call_overhead_s=config.fs_overhead_s,
            readahead_pages=config.readahead_pages,
        )

    def _build_pfs(self) -> None:
        config = self.config
        self.network = StarTopology(
            self.engine,
            bandwidth=config.net_bandwidth,
            latency_s=config.net_latency_s,
            backplane_bandwidth=config.backplane_bandwidth,
        )
        servers: list[IOServer] = []
        device_rngs = self.rng.spawn_many("server-device", config.n_servers)
        for index in range(config.n_servers):
            name = f"server{index}"
            self.network.add_node(name)
            device = make_device(
                self.engine, config.device_spec,
                name=f"{name}.disk",
                rng=device_rngs[index],
                jitter_sigma=config.jitter_sigma,
                **config.device_overrides,
            )
            self.devices.append(device)
            servers.append(IOServer(
                self.engine, device,
                name=name,
                request_overhead_s=config.server_overhead_s,
                threads=config.server_threads,
            ))
        metadata_node = ""
        if config.with_mds:
            metadata_node = "mds0"
            self.network.add_node(metadata_node)
        self.pfs = ParallelFileSystem(
            self.engine, servers, self.network,
            default_layout=StripeLayout(
                stripe_size=config.stripe_size,
                servers=tuple(range(config.n_servers)),
            ),
            metadata_node=metadata_node,
            mds_overhead_s=config.mds_overhead_s,
        )

    # -- mounts ---------------------------------------------------------------

    def mount_for(self, pid: int):
        """The file-system mount process ``pid`` uses.

        Local systems share the one file system; on a PFS each pid gets
        its own client node (the paper runs one process per compute
        node), created on first use.
        """
        if self.localfs is not None:
            return self.localfs
        assert self.pfs is not None and self.network is not None
        client = self._clients.get(pid)
        if client is None:
            node = f"client{pid}"
            self.network.add_node(
                node, bandwidth=self.config.client_bandwidth)
            client = self.pfs.client(node)
            self._clients[pid] = client
        return client

    def shared_mount(self):
        """A mount not bound to any particular process (file creation)."""
        return self.mount_for(-1) if self.pfs is not None else self.localfs

    # -- middleware factories ----------------------------------------------------

    def posix(self, *, call_overhead_s: float = 0.000015) -> PosixIO:
        """A POSIX I/O library on the local mount (local systems only).

        For per-process mounts on a PFS use :meth:`posix_for`.
        """
        if self.localfs is None:
            raise ExperimentError(
                "System.posix() needs a local system; "
                "use posix_for(pid) on a PFS"
            )
        return PosixIO(self.engine, self.localfs, self.recorder,
                       call_overhead_s=call_overhead_s)

    def posix_for(self, pid: int,
                  *, call_overhead_s: float = 0.000015) -> PosixIO:
        """A POSIX I/O library bound to ``pid``'s mount."""
        return PosixIO(self.engine, self.mount_for(pid), self.recorder,
                       call_overhead_s=call_overhead_s)

    def mpiio(self, nranks: int, *, call_overhead_s: float = 0.000020,
              pid_base: int = 0) -> MPIIO:
        """An MPI-IO context over ``nranks`` ranks.

        ``pid_base`` offsets the ranks' pids in trace records so that
        several communicators (multi-application runs) stay
        distinguishable in the gathered trace.
        """
        return MPIIO(self.engine, nranks, self.recorder,
                     call_overhead_s=call_overhead_s,
                     pid_base=pid_base)

    # -- lifecycle ------------------------------------------------------------------

    def drop_caches(self) -> None:
        """Flush all caches (paper's pre-run reset)."""
        if self.localfs is not None:
            self.localfs.drop_caches()
        if self.pfs is not None:
            self.pfs.drop_caches()

    @property
    def fs_bytes_moved(self) -> int:
        """Bytes moved at the file-system boundary so far."""
        return self.recorder.fs_bytes_moved


def build_system(config: SystemConfig) -> System:
    """Instantiate a live system from a config."""
    return System(config)
