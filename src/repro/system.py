"""System assembly: one simulated I/O stack per run.

A :class:`SystemConfig` describes a platform declaratively (local file
system on one device, or a PVFS-like parallel file system on N servers);
:func:`build_system` turns it into a live :class:`System`: engine,
devices, mounts, middleware, and one shared
:class:`~repro.middleware.tracing.TraceRecorder`.

Every run of every experiment builds a *fresh* system (fresh engine at
t=0, cold caches) — the simulation analogue of the paper's "system
caches of all computing nodes and I/O servers were flushed prior to
each run".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.devices import make_device
from repro.devices.base import BlockDevice, FaultInjector
from repro.errors import ExperimentError
from repro.faults.injector import FaultPlanInjector, arm_fault_plan
from repro.faults.plan import FaultPlan
from repro.faults.state import FaultState
from repro.fs.cache import PageCache
from repro.fs.localfs import LocalFileSystem
from repro.middleware.mpiio import MPIIO, MPIIOHints
from repro.middleware.posix import PosixIO
from repro.middleware.retry import RetryPolicy, RetryStats
from repro.middleware.tracing import TraceRecorder
from repro.net.topology import StarTopology
from repro.pfs.layout import StripeLayout
from repro.pfs.pvfs import ParallelFileSystem, PFSClient
from repro.pfs.server import IOServer
from repro.sim.engine import Engine
from repro.util.rng import RngStream
from repro.util.units import KiB, MiB


@dataclass(frozen=True)
class SystemConfig:
    """Declarative description of a simulated platform.

    ``kind`` selects the storage architecture:

    - ``"local"``: one device with a local file system (paper Sets 1-2);
    - ``"pfs"``: ``n_servers`` I/O servers behind a network (Sets 1, 3, 4).
    """

    kind: str = "local"
    device_spec: str = "sata-hdd-7200"
    device_overrides: dict[str, Any] = field(default_factory=dict)
    # local-fs knobs
    cache_pages: int = 16384
    page_size: int = 4096
    cache_policy: str = "write-through"
    fs_overhead_s: float = 0.000030
    readahead_pages: int = 0
    # pfs knobs
    n_servers: int = 4
    stripe_size: int = 64 * KiB
    server_threads: int = 16
    server_overhead_s: float = 0.000080
    #: Simulate a dedicated metadata server (PVFS2-style MDS) so
    #: in-run create/stat operations cost real round trips.
    with_mds: bool = False
    mds_overhead_s: float = 0.000150
    net_bandwidth: float = 125.0 * MiB
    net_latency_s: float = 0.000050
    #: Aggregate switch capacity (None = non-blocking fabric).
    backplane_bandwidth: float | None = None
    #: Client NIC speed override (None = net_bandwidth).  The paper's
    #: compute nodes are GigE; sweeps that need a contention-light client
    #: (e.g. one node hosting all IOzone throughput processes) set this.
    client_bandwidth: float | None = None
    # shared knobs
    jitter_sigma: float = 0.0
    seed: int | None = 12345
    #: Keep per-access fs-layer trace records (heavier; enables
    #: layered app-vs-fs BPS comparisons).
    keep_fs_records: bool = False
    # robustness knobs (all defaults = the classic fault-free system)
    #: Standing per-draw device fault probability (every device gets a
    #: seeded FaultInjector when > 0).
    fault_probability: float = 0.0
    #: Fraction of nominal service time a faulted access consumes.
    fault_time_fraction: float = 0.5
    #: Granule for per-byte fault scaling (0 = per-request Bernoulli).
    fault_per_bytes: int = 0
    #: Device-boundary re-submissions inside the file system layer.
    device_retries: int = 0
    #: Object copies per stripe on a PFS (1 = classic single-copy).
    replication: int = 1
    #: Middleware retry/backoff/timeout/failover behaviour (None = the
    #: classic erroring middleware).
    retry_policy: RetryPolicy | None = None
    #: Timed fault windows armed against the built system.
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("local", "pfs"):
            raise ExperimentError(f"unknown system kind {self.kind!r}")
        if self.kind == "pfs" and self.n_servers < 1:
            raise ExperimentError(f"bad server count {self.n_servers}")
        if not 0.0 <= self.fault_probability <= 1.0:
            raise ExperimentError(
                f"fault probability out of range: {self.fault_probability}")
        if not 0.0 < self.fault_time_fraction <= 1.0:
            raise ExperimentError(
                f"fault time fraction out of range: "
                f"{self.fault_time_fraction}")
        if self.fault_per_bytes < 0:
            raise ExperimentError(
                f"negative fault_per_bytes {self.fault_per_bytes}")
        if self.device_retries < 0:
            raise ExperimentError(
                f"negative device_retries {self.device_retries}")
        if self.replication < 1:
            raise ExperimentError(f"bad replication {self.replication}")
        if self.kind == "local" and self.replication != 1:
            raise ExperimentError(
                "replication needs a PFS (local systems have one copy)")
        if self.kind == "pfs" and self.replication > self.n_servers:
            raise ExperimentError(
                f"replication {self.replication} exceeds server count "
                f"{self.n_servers}")

    def with_seed(self, seed: int | None) -> "SystemConfig":
        """Copy with a different seed (repetition control)."""
        from dataclasses import replace
        return replace(self, seed=seed)


class System:
    """A live simulated platform, ready to run one workload."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.engine = Engine()
        self.rng = RngStream.from_seed(config.seed)
        self.recorder = TraceRecorder(
            self.engine, keep_fs_records=config.keep_fs_records)
        self.devices: list[BlockDevice] = []
        self.network: StarTopology | None = None
        self.pfs: ParallelFileSystem | None = None
        self.localfs: LocalFileSystem | None = None
        self._clients: dict[int, PFSClient] = {}
        #: Middleware-visible fault effects (straggler windows).
        self.fault_state = FaultState()
        #: System-wide middleware recovery tallies.
        self.retry_stats = RetryStats()
        self._retry_rng: RngStream | None = None
        self.fault_plan_injector: FaultPlanInjector | None = None
        if config.kind == "local":
            self._build_local()
        else:
            self._build_pfs()
        # Fault plumbing spawns its streams *after* the build so the
        # device/workload streams of a faulted config stay bit-identical
        # to its fault-free twin.
        if config.fault_probability > 0.0:
            self._attach_fault_injectors()
        if config.retry_policy is not None:
            self._retry_rng = self.rng.spawn("retry")
        if config.fault_plan is not None:
            self.fault_plan_injector = arm_fault_plan(self,
                                                      config.fault_plan)

    # -- construction ------------------------------------------------------

    def _attach_fault_injectors(self) -> None:
        """Give every leaf device a standing seeded fault injector."""
        config = self.config
        for device in self.devices:
            leaves = getattr(device, "members", None) or [device]
            for leaf in leaves:
                if leaf.fault_injector is None:
                    leaf.fault_injector = FaultInjector(
                        self.rng.spawn(f"device-faults.{leaf.name}"),
                        config.fault_probability,
                        time_fraction=config.fault_time_fraction,
                        per_bytes=config.fault_per_bytes)

    def _build_local(self) -> None:
        config = self.config
        device = make_device(
            self.engine, config.device_spec,
            rng=self.rng.spawn("device"),
            jitter_sigma=config.jitter_sigma,
            **config.device_overrides,
        )
        self.devices.append(device)
        cache = None
        if config.cache_pages > 0:
            cache = PageCache(config.cache_pages, config.page_size,
                              policy=config.cache_policy)
        self.localfs = LocalFileSystem(
            self.engine, device,
            page_cache=cache,
            per_call_overhead_s=config.fs_overhead_s,
            readahead_pages=config.readahead_pages,
            device_retries=config.device_retries,
        )

    def _build_pfs(self) -> None:
        config = self.config
        self.network = StarTopology(
            self.engine,
            bandwidth=config.net_bandwidth,
            latency_s=config.net_latency_s,
            backplane_bandwidth=config.backplane_bandwidth,
        )
        servers: list[IOServer] = []
        device_rngs = self.rng.spawn_many("server-device", config.n_servers)
        for index in range(config.n_servers):
            name = f"server{index}"
            self.network.add_node(name)
            device = make_device(
                self.engine, config.device_spec,
                name=f"{name}.disk",
                rng=device_rngs[index],
                jitter_sigma=config.jitter_sigma,
                **config.device_overrides,
            )
            self.devices.append(device)
            servers.append(IOServer(
                self.engine, device,
                name=name,
                request_overhead_s=config.server_overhead_s,
                threads=config.server_threads,
                device_retries=config.device_retries,
            ))
        metadata_node = ""
        if config.with_mds:
            metadata_node = "mds0"
            self.network.add_node(metadata_node)
        retry = config.retry_policy
        self.pfs = ParallelFileSystem(
            self.engine, servers, self.network,
            default_layout=StripeLayout(
                stripe_size=config.stripe_size,
                servers=tuple(range(config.n_servers)),
            ),
            metadata_node=metadata_node,
            mds_overhead_s=config.mds_overhead_s,
            replication=config.replication,
            failover=(retry.failover if retry is not None else False),
        )

    # -- mounts ---------------------------------------------------------------

    def mount_for(self, pid: int):
        """The file-system mount process ``pid`` uses.

        Local systems share the one file system; on a PFS each pid gets
        its own client node (the paper runs one process per compute
        node), created on first use.
        """
        if self.localfs is not None:
            return self.localfs
        assert self.pfs is not None and self.network is not None
        client = self._clients.get(pid)
        if client is None:
            node = f"client{pid}"
            self.network.add_node(
                node, bandwidth=self.config.client_bandwidth)
            client = self.pfs.client(node)
            self._clients[pid] = client
        return client

    def shared_mount(self):
        """A mount not bound to any particular process (file creation)."""
        return self.mount_for(-1) if self.pfs is not None else self.localfs

    # -- middleware factories ----------------------------------------------------

    def posix(self, *, call_overhead_s: float = 0.000015) -> PosixIO:
        """A POSIX I/O library on the local mount (local systems only).

        For per-process mounts on a PFS use :meth:`posix_for`.
        """
        if self.localfs is None:
            raise ExperimentError(
                "System.posix() needs a local system; "
                "use posix_for(pid) on a PFS"
            )
        return PosixIO(self.engine, self.localfs, self.recorder,
                       call_overhead_s=call_overhead_s,
                       **self._middleware_fault_kwargs())

    def posix_for(self, pid: int,
                  *, call_overhead_s: float = 0.000015) -> PosixIO:
        """A POSIX I/O library bound to ``pid``'s mount."""
        return PosixIO(self.engine, self.mount_for(pid), self.recorder,
                       call_overhead_s=call_overhead_s,
                       **self._middleware_fault_kwargs())

    def mpiio(self, nranks: int, *, call_overhead_s: float = 0.000020,
              pid_base: int = 0) -> MPIIO:
        """An MPI-IO context over ``nranks`` ranks.

        ``pid_base`` offsets the ranks' pids in trace records so that
        several communicators (multi-application runs) stay
        distinguishable in the gathered trace.
        """
        return MPIIO(self.engine, nranks, self.recorder,
                     call_overhead_s=call_overhead_s,
                     pid_base=pid_base,
                     **self._middleware_fault_kwargs())

    def _middleware_fault_kwargs(self) -> dict[str, Any]:
        """Retry/fault plumbing every middleware factory threads through."""
        return dict(
            retry_policy=self.config.retry_policy,
            retry_rng=self._retry_rng,
            fault_state=self.fault_state,
            retry_stats=self.retry_stats,
        )

    # -- lifecycle ------------------------------------------------------------------

    def drop_caches(self) -> None:
        """Flush all caches (paper's pre-run reset)."""
        if self.localfs is not None:
            self.localfs.drop_caches()
        if self.pfs is not None:
            self.pfs.drop_caches()

    @property
    def fs_bytes_moved(self) -> int:
        """Bytes moved at the file-system boundary so far."""
        return self.recorder.fs_bytes_moved


def build_system(config: SystemConfig) -> System:
    """Instantiate a live system from a config."""
    return System(config)
