"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still distinguishing subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """An inconsistency was detected inside the discrete-event engine."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting."""


class DeviceError(ReproError):
    """A block device rejected or failed a request."""


class DeviceFault(DeviceError):
    """An injected device fault fired (failure-injection testing).

    The paper counts *non-successful* accesses in ``B`` as well
    (section III.A), so traces produced under injected faults still
    contribute their blocks to the BPS numerator.
    """


class FileSystemError(ReproError):
    """A file-system level error (unknown file, bad offset, ...)."""


class StripingError(ReproError):
    """An invalid stripe layout or an inconsistent split/reassembly."""


class MiddlewareError(ReproError):
    """An I/O middleware usage error (closed handle, bad hints, ...)."""


class TraceFormatError(ReproError):
    """An on-disk trace (CSV / JSONL / blkparse / fio JSON) is malformed."""


class AnalysisError(ReproError):
    """Metric or correlation analysis was asked something impossible."""


class WorkloadError(ReproError):
    """A workload generator was configured inconsistently."""


class ExperimentError(ReproError):
    """An experiment sweep could not be assembled or executed."""


class FaultPlanError(ReproError):
    """A fault plan is malformed or cannot be armed against a system."""


class LiveStreamError(ReproError):
    """A streaming-metrics contract violation (late record in strict
    mode, non-monotonic watermark, ingest after finalize, ...)."""


class SupervisionError(ExperimentError):
    """A supervised job exhausted its retry budget (crash, timeout, or
    repeated in-job exception) and the sweep cannot complete."""


class GridError(ExperimentError):
    """The distributed-sweep grid was misconfigured or its wire
    protocol was violated (bad worker address, handshake rejected,
    oversized frame, unresolvable grid task, no live workers)."""


class FrameCorruptionError(GridError):
    """A wire frame failed its CRC32 integrity check (or could not be
    unpickled despite an intact checksum).  The payload is never
    interpreted; the receiver quarantines the frame and treats the
    connection as desynchronised."""


class CheckpointError(ExperimentError):
    """A checkpoint journal is unusable: wrong tag for the sweep being
    resumed, or corrupted beyond the tolerated torn tail."""


class ServeError(ReproError):
    """The multi-tenant streaming daemon was misconfigured or asked
    something impossible (bad budget, invalid tenant name, duplicate
    listener, ...)."""


class ChaosError(ReproError):
    """A network-chaos schedule or proxy was misconfigured (unknown
    fault kind, overlapping windows, bad upstream address), or a chaos
    run's invariant check failed."""


class SalvageError(TraceFormatError):
    """Salvage-mode ingestion gave up: the malformed-line ratio exceeded
    the policy's error budget (the file is garbage, not merely dented)."""
