"""An I/O server: local storage behind a request-handling front end.

Each server owns a block device wrapped in an uncached
:class:`~repro.fs.localfs.LocalFileSystem` (PVFS2 servers bypass the
kernel page cache for object data; the paper also flushes all server
caches before each run).  Request handling costs a fixed software
overhead and is bounded by a thread pool, so a server saturates under
enough concurrent clients.
"""

from __future__ import annotations

from repro.devices.base import BlockDevice, READ, WRITE
from repro.errors import FileSystemError
from repro.fs.localfs import FSResult, LocalFileSystem
from repro.sim.engine import Engine
from repro.sim.events import Completion
from repro.sim.resources import Resource


class IOServer:
    """One parallel-file-system data server.

    Parameters
    ----------
    engine, device:
        Simulation engine and this server's local storage.
    name:
        Server identifier; also its node name on the network.
    request_overhead_s:
        Software cost per handled request (network stack + server work).
    threads:
        Concurrent request handlers (requests beyond this queue up).
    device_retries:
        Transparent storage-level retry rounds per request (forwarded to
        the server's :class:`LocalFileSystem`).
    """

    def __init__(
        self,
        engine: Engine,
        device: BlockDevice,
        *,
        name: str = "ioserver",
        request_overhead_s: float = 0.000080,
        threads: int = 16,
        device_retries: int = 0,
    ) -> None:
        if request_overhead_s < 0:
            raise FileSystemError("negative request overhead")
        self.engine = engine
        self.name = name
        self.device = device
        self.request_overhead_s = request_overhead_s
        self.storage = LocalFileSystem(
            engine, device,
            page_cache=None,
            per_call_overhead_s=0.0,  # folded into request_overhead_s
            device_retries=device_retries,
            name=f"{name}.storage",
        )
        self._threads = Resource(engine, capacity=threads,
                                 name=f"{name}.threads")
        self.requests_handled = 0
        #: Requests that finished without success (crash window, storage
        #: fault that survived the retries, ...).
        self.requests_failed = 0
        #: Fault-plan state: a crashed server refuses requests cheaply;
        #: ``slowdown`` (>= 1.0) stretches the per-request software
        #: overhead (an overloaded or rebuilding daemon).
        self.available = True
        self.slowdown = 1.0
        self.crash_count = 0

    # -- fault-plan hooks --------------------------------------------------

    def crash(self) -> None:
        """Take the server down: requests fail fast until :meth:`restore`.

        In-flight storage accesses run to completion (the daemon died,
        the disk finishes what was queued); only request admission stops.
        """
        if self.available:
            self.available = False
            self.crash_count += 1

    def restore(self) -> None:
        """Bring a crashed server back (restart; storage state intact)."""
        self.available = True

    def create_object(self, object_name: str, size: int) -> None:
        """Allocate an object (one file's stripe set on this server)."""
        self.storage.create(object_name, size)

    def has_object(self, object_name: str) -> bool:
        """Does the object exist on this server?"""
        return self.storage.exists(object_name)

    def handle(self, op: str, object_name: str, offset: int,
               nbytes: int) -> Completion:
        """Serve one request; completion fires with the storage FSResult."""
        if op not in (READ, WRITE):
            raise FileSystemError(f"unknown op {op!r}")
        done = self.engine.completion()
        self.engine.spawn(self._handle_proc(op, object_name, offset,
                                            nbytes, done),
                          name=f"{self.name}.handle")
        return done

    def _handle_proc(self, op: str, object_name: str, offset: int,
                     nbytes: int, done: Completion):
        start = self.engine.now
        if not self.available:
            # Fail fast: a connection refused costs one overhead, not a
            # disk access.  The caller sees an unsuccessful FSResult and
            # may fail over to a replica server.
            yield self.engine.timeout(self.request_overhead_s)
            self.requests_failed += 1
            done.trigger(FSResult(
                nbytes, 0, 0, 0, start, self.engine.now, success=False,
                errors=(f"server {self.name} unavailable",)))
            return
        grant = self._threads.acquire()
        yield grant
        try:
            yield self.engine.timeout(self.request_overhead_s
                                      * self.slowdown)
            if op == READ:
                result: FSResult = yield self.storage.read(
                    object_name, offset, nbytes)
            else:
                result = yield self.storage.write(
                    object_name, offset, nbytes)
        finally:
            self._threads.release()
        self.requests_handled += 1
        if not result.success:
            self.requests_failed += 1
        done.trigger(result)

    @property
    def queue_length(self) -> int:
        """Requests waiting for a handler thread."""
        return self._threads.queue_length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IOServer {self.name} device={self.device.name}>"
