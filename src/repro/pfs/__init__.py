"""PVFS-style parallel file system.

Files are striped round-robin across I/O servers (default stripe 64 KiB,
as PVFS2 does); each server stores its part of the file as a contiguous
object on its local storage.  Clients split requests per-server, issue
them concurrently over the network, and complete when all parts return —
the concurrency structure that motivates BPS's overlapped-time rule.
"""

from repro.pfs.layout import StripeLayout, ChunkSpec
from repro.pfs.server import IOServer
from repro.pfs.pvfs import ParallelFileSystem, PFSClient

__all__ = [
    "StripeLayout",
    "ChunkSpec",
    "IOServer",
    "ParallelFileSystem",
    "PFSClient",
]
