"""Stripe layout: file offset → (server, object offset) mapping.

A layout is a stripe size plus an ordered tuple of server indices.
Stripe ``s`` of the file lives on server ``servers[s % n]`` at object
offset ``(s // n) * stripe_size``.  Consecutive stripes of one server are
therefore contiguous in its object, so any contiguous file range maps to
*one* contiguous object range per server — the property
:meth:`StripeLayout.server_requests` relies on (and re-verifies).

The paper's Set 3a pins each file to a single I/O server "by setting the
file stripe layout attributes when it was created"; a one-server layout
does exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StripingError
from repro.util.units import KiB


@dataclass(frozen=True)
class ChunkSpec:
    """One per-server piece of a file request."""

    server: int          # server index (into the PFS server list)
    object_offset: int   # byte offset inside that server's object
    length: int          # bytes
    file_offset: int     # where this piece sits in the file

    def __post_init__(self) -> None:
        if self.object_offset < 0 or self.file_offset < 0:
            raise StripingError("negative offset in chunk")
        if self.length <= 0:
            raise StripingError("non-positive chunk length")


@dataclass(frozen=True)
class StripeLayout:
    """Round-robin striping over an ordered server set."""

    stripe_size: int = 64 * KiB
    servers: tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if self.stripe_size <= 0:
            raise StripingError(f"bad stripe size {self.stripe_size}")
        if not self.servers:
            raise StripingError("layout needs at least one server")
        if len(set(self.servers)) != len(self.servers):
            raise StripingError(f"duplicate servers in layout: {self.servers}")
        if any(s < 0 for s in self.servers):
            raise StripingError(f"negative server index in {self.servers}")

    @property
    def width(self) -> int:
        """Number of servers in the layout."""
        return len(self.servers)

    def object_size(self, file_size: int, server: int) -> int:
        """Bytes of a ``file_size``-byte file stored on ``server``.

        ``server`` is the actual server index (must be in the layout).
        """
        if file_size < 0:
            raise StripingError(f"negative file size {file_size}")
        try:
            position = self.servers.index(server)
        except ValueError:
            raise StripingError(
                f"server {server} not in layout {self.servers}"
            ) from None
        full_stripes, tail = divmod(file_size, self.stripe_size)
        rounds, extra = divmod(full_stripes, self.width)
        size = rounds * self.stripe_size
        if position < extra:
            size += self.stripe_size
        elif position == extra:
            size += tail
        return size

    def split(self, offset: int, nbytes: int) -> list[ChunkSpec]:
        """Per-stripe chunks covering file range ``[offset, offset+nbytes)``.

        Chunks come back in file order; each is contained in one stripe.
        """
        if offset < 0 or nbytes <= 0:
            raise StripingError(f"bad range offset={offset} nbytes={nbytes}")
        chunks: list[ChunkSpec] = []
        position = offset
        end = offset + nbytes
        while position < end:
            stripe = position // self.stripe_size
            within = position - stripe * self.stripe_size
            take = min(end - position, self.stripe_size - within)
            server = self.servers[stripe % self.width]
            object_offset = (stripe // self.width) * self.stripe_size + within
            chunks.append(ChunkSpec(server, object_offset, take, position))
            position += take
        return chunks

    def server_requests(self, offset: int, nbytes: int) -> list[ChunkSpec]:
        """One merged contiguous object range per server for the file range.

        This is what a PVFS client actually sends: a single request per
        server.  Raises :class:`StripingError` if the per-server pieces
        are not contiguous (they always are for a contiguous file range;
        the check guards the invariant).
        """
        merged: dict[int, ChunkSpec] = {}
        for chunk in self.split(offset, nbytes):
            existing = merged.get(chunk.server)
            if existing is None:
                merged[chunk.server] = chunk
            else:
                if chunk.object_offset != existing.object_offset + existing.length:
                    raise StripingError(
                        f"non-contiguous object range on server "
                        f"{chunk.server}: {existing} then {chunk}"
                    )
                merged[chunk.server] = ChunkSpec(
                    existing.server,
                    existing.object_offset,
                    existing.length + chunk.length,
                    existing.file_offset,
                )
        # Stable order: by first appearance in the file.
        return sorted(merged.values(), key=lambda c: c.file_offset)
