"""The parallel file system facade and per-client views.

:class:`ParallelFileSystem` owns the server list, the network, and the
file → layout catalog.  :class:`PFSClient` binds a client network node
and exposes the same ``create/read/write`` surface as
:class:`~repro.fs.localfs.LocalFileSystem`, so the I/O middleware can
mount either interchangeably.

A read's life cycle (per server, all servers concurrent):
request message over the network → server handles it against its local
storage → data flows back over the network.  The request completes when
the *last* server part arrives — so a single client request already
embodies the intra-request concurrency that breaks single-component
metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.base import READ, WRITE
from repro.errors import FileSystemError, StripingError
from repro.fs.localfs import FSResult
from repro.net.topology import StarTopology
from repro.pfs.layout import StripeLayout
from repro.pfs.server import IOServer
from repro.sim.engine import Engine
from repro.sim.events import Completion
from repro.sim.resources import Resource

#: Size of a control message (request or ack) on the wire.
CONTROL_MESSAGE_BYTES = 256


@dataclass
class PFSStats:
    """Aggregate client-visible counters."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: Per-server parts redirected to a replica after the assigned
    #: server failed them (crash window, injected device fault).
    failovers: int = 0


class ParallelFileSystem:
    """A PVFS2-like striped file system.

    Parameters
    ----------
    engine:
        Simulation engine.
    servers:
        The I/O servers; each must already be a node in ``network``
        under its own name.
    network:
        The cluster interconnect.
    default_layout:
        Used by :meth:`create` when no explicit layout is given; ``None``
        means "stripe over all servers with 64 KiB stripes" (PVFS2's
        default, used by the paper's IOR experiment).
    client_overhead_s:
        Client-side software cost per request (libpvfs work).
    metadata_node:
        Network node name of the metadata server (PVFS2 has a dedicated
        MDS).  ``""`` disables the simulated metadata path; the
        asynchronous :meth:`create_async`/:meth:`stat_async` then cost
        only the client overhead.
    mds_overhead_s / mds_threads:
        Metadata-server handling cost and concurrency.
    replication:
        Copies of every object, hosted on the ``replication`` servers
        following the primary (``(primary + k) % n_servers``), PVFS2
        ``repl``-patch style.  1 (the default) keeps the classic
        single-copy layout and an unchanged data path.
    failover:
        When a server fails a part (crash window, injected fault), walk
        the part's replica chain instead of giving up.  Only redirection
        is modelled — replicas are not kept in sync by extra write
        traffic, which is fine for a performance simulator.
    """

    def __init__(
        self,
        engine: Engine,
        servers: list[IOServer],
        network: StarTopology,
        *,
        default_layout: StripeLayout | None = None,
        client_overhead_s: float = 0.000040,
        metadata_node: str = "",
        mds_overhead_s: float = 0.000150,
        mds_threads: int = 16,
        replication: int = 1,
        failover: bool = False,
    ) -> None:
        if not servers:
            raise FileSystemError("a PFS needs at least one server")
        if not 1 <= replication <= len(servers):
            raise FileSystemError(
                f"replication {replication} needs between 1 and "
                f"{len(servers)} copies")
        self.engine = engine
        self.servers = list(servers)
        self.network = network
        for server in self.servers:
            # Fail fast if a server is not reachable on the network.
            network.node(server.name)
        if default_layout is None:
            default_layout = StripeLayout(
                servers=tuple(range(len(servers))))
        self._validate_layout(default_layout)
        self.default_layout = default_layout
        self.client_overhead_s = client_overhead_s
        self.metadata_node = metadata_node
        self.mds_overhead_s = mds_overhead_s
        if metadata_node:
            network.node(metadata_node)  # fail fast
            self._mds_threads: Resource | None = Resource(
                engine, capacity=mds_threads, name="mds.threads")
        else:
            self._mds_threads = None
        self.replication = replication
        self.failover = failover
        self.metadata_ops = 0
        self.stats = PFSStats()
        self._layouts: dict[str, StripeLayout] = {}
        self._sizes: dict[str, int] = {}

    # -- namespace ---------------------------------------------------------

    def _validate_layout(self, layout: StripeLayout) -> None:
        for index in layout.servers:
            if index >= len(self.servers):
                raise StripingError(
                    f"layout references server {index}, but only "
                    f"{len(self.servers)} servers exist"
                )

    def create(self, file_name: str, size: int,
               layout: StripeLayout | None = None) -> StripeLayout:
        """Create a striped file; allocates one object per layout server."""
        if file_name in self._layouts:
            raise FileSystemError(f"file exists: {file_name!r}")
        if size <= 0:
            raise FileSystemError(f"bad file size {size}")
        layout = layout or self.default_layout
        self._validate_layout(layout)
        for index in layout.servers:
            object_size = layout.object_size(size, index)
            if object_size > 0:
                for host in self._replica_chain(index):
                    self.servers[host].create_object(
                        self._object_name(file_name, index), object_size)
        self._layouts[file_name] = layout
        self._sizes[file_name] = size
        return layout

    @staticmethod
    def _object_name(file_name: str, server_index: int) -> str:
        return f"{file_name}@s{server_index}"

    def _replica_chain(self, primary: int) -> list[int]:
        """Server indices hosting copies of ``primary``'s objects."""
        return [(primary + k) % len(self.servers)
                for k in range(self.replication)]

    def exists(self, file_name: str) -> bool:
        """Does the file exist?"""
        return file_name in self._layouts

    def size_of(self, file_name: str) -> int:
        """File size in bytes."""
        try:
            return self._sizes[file_name]
        except KeyError:
            raise FileSystemError(f"no such file: {file_name!r}") from None

    def layout_of(self, file_name: str) -> StripeLayout:
        """The stripe layout the file was created with."""
        try:
            return self._layouts[file_name]
        except KeyError:
            raise FileSystemError(f"no such file: {file_name!r}") from None

    def drop_caches(self) -> int:
        """Flush every server's storage cache (pre-run reset)."""
        dropped = 0
        for server in self.servers:
            dropped += server.storage.drop_caches()
        return dropped

    # -- metadata path ------------------------------------------------------

    def _metadata_round_trip(self, client_node: str):
        """One client↔MDS exchange (generator; yields inside)."""
        yield self.engine.timeout(self.client_overhead_s)
        if self.metadata_node:
            yield self.network.send(client_node, self.metadata_node,
                                    CONTROL_MESSAGE_BYTES)
            grant = self._mds_threads.acquire()
            yield grant
            try:
                yield self.engine.timeout(self.mds_overhead_s)
            finally:
                self._mds_threads.release()
            yield self.network.send(self.metadata_node, client_node,
                                    CONTROL_MESSAGE_BYTES)
        self.metadata_ops += 1

    def create_async(self, client_node: str, file_name: str, size: int,
                     layout: StripeLayout | None = None) -> Completion:
        """Create a file *during* a run, paying the metadata cost.

        The MDS round trip plus one control message per layout server
        (object creation), as PVFS2 does.  The synchronous
        :meth:`create` stays free for pre-run setup.
        """
        done = self.engine.completion()
        self.engine.spawn(
            self._create_proc(client_node, file_name, size, layout, done),
            name=f"pfs.create.{file_name}")
        return done

    def _create_proc(self, client_node: str, file_name: str, size: int,
                     layout: StripeLayout | None, done: Completion):
        start = self.engine.now
        yield from self._metadata_round_trip(client_node)
        created = self.create(file_name, size, layout)
        # One object-create exchange per data server holding a stripe.
        if self.metadata_node:
            pending = []
            for index in created.servers:
                if created.object_size(size, index) > 0:
                    pending.append(self.network.send(
                        self.metadata_node, self.servers[index].name,
                        CONTROL_MESSAGE_BYTES))
            if pending:
                yield self.engine.all_of(pending)
        done.trigger((created, start, self.engine.now))

    def stat_async(self, client_node: str, file_name: str) -> Completion:
        """Look up file metadata during a run (one MDS round trip)."""
        done = self.engine.completion()

        def proc():
            start = self.engine.now
            yield from self._metadata_round_trip(client_node)
            size = self.size_of(file_name)
            done.trigger((size, start, self.engine.now))
        self.engine.spawn(proc(), name=f"pfs.stat.{file_name}")
        return done

    def client(self, node_name: str) -> "PFSClient":
        """A client view bound to one network node."""
        self.network.node(node_name)  # fail fast on unknown nodes
        return PFSClient(self, node_name)

    # -- data path -------------------------------------------------------------

    def _io(self, client_node: str, op: str, file_name: str, offset: int,
            nbytes: int) -> Completion:
        layout = self.layout_of(file_name)
        size = self._sizes[file_name]
        if offset < 0 or nbytes <= 0 or offset + nbytes > size:
            raise FileSystemError(
                f"bad range [{offset}, {offset + nbytes}) for "
                f"{file_name!r} of size {size}"
            )
        done = self.engine.completion()
        self.engine.spawn(
            self._io_proc(client_node, op, file_name, layout, offset,
                          nbytes, done),
            name=f"pfs.{op}.{file_name}",
        )
        return done

    def _io_proc(self, client_node: str, op: str, file_name: str,
                 layout: StripeLayout, offset: int, nbytes: int,
                 done: Completion):
        start = self.engine.now
        yield self.engine.timeout(self.client_overhead_s)
        parts = layout.server_requests(offset, nbytes)
        pending = [
            self.engine.spawn(
                self._server_io(client_node, op, file_name, part),
                name=f"pfs.part.s{part.server}",
            )
            for part in parts
        ]
        results: list[FSResult] = yield self.engine.all_of(pending)
        device_bytes = sum(r.device_bytes for r in results)
        errors: list[str] = []
        for result in results:
            errors.extend(result.errors)
        if op == READ:
            self.stats.reads += 1
            self.stats.bytes_read += nbytes
        else:
            self.stats.writes += 1
            self.stats.bytes_written += nbytes
        done.trigger(FSResult(
            nbytes, device_bytes,
            cache_hit_pages=sum(r.cache_hit_pages for r in results),
            cache_miss_pages=sum(r.cache_miss_pages for r in results),
            start=start, end=self.engine.now,
            success=not errors, errors=tuple(errors),
        ))

    def _server_io(self, client_node: str, op: str, file_name: str, part):
        # The replica chain is walked only with failover on; each hop is
        # a full wire exchange, so redirected parts pay real recovery
        # traffic (visible in link counters and union time).
        chain = (self._replica_chain(part.server) if self.failover
                 else [part.server])
        object_name = self._object_name(file_name, part.server)
        result: FSResult | None = None
        for hop, server_index in enumerate(chain):
            server = self.servers[server_index]
            if op == READ:
                # request message out, data back
                yield self.network.send(client_node, server.name,
                                        CONTROL_MESSAGE_BYTES)
                result = yield server.handle(
                    READ, object_name, part.object_offset, part.length)
                yield self.network.send(server.name, client_node,
                                        part.length)
            else:
                # data out, ack back
                yield self.network.send(client_node, server.name,
                                        part.length)
                result = yield server.handle(
                    WRITE, object_name, part.object_offset, part.length)
                yield self.network.send(server.name, client_node,
                                        CONTROL_MESSAGE_BYTES)
            if result.success or hop + 1 == len(chain):
                break
            self.stats.failovers += 1
        return result


class PFSClient:
    """LocalFileSystem-compatible view of a PFS from one client node."""

    def __init__(self, pfs: ParallelFileSystem, node_name: str) -> None:
        self.pfs = pfs
        self.node_name = node_name
        self.engine = pfs.engine

    def create(self, file_name: str, size: int,
               layout: StripeLayout | None = None) -> StripeLayout:
        """Create a file (layout optional; defaults to the PFS default)."""
        return self.pfs.create(file_name, size, layout)

    def exists(self, file_name: str) -> bool:
        """Does the file exist?"""
        return self.pfs.exists(file_name)

    def size_of(self, file_name: str) -> int:
        """File size in bytes."""
        return self.pfs.size_of(file_name)

    def create_async(self, file_name: str, size: int,
                     layout: StripeLayout | None = None) -> Completion:
        """Create with metadata costs; fires with (layout, start, end)."""
        return self.pfs.create_async(self.node_name, file_name, size,
                                     layout)

    def stat_async(self, file_name: str) -> Completion:
        """Metadata lookup; fires with (size, start, end)."""
        return self.pfs.stat_async(self.node_name, file_name)

    def read(self, file_name: str, offset: int, nbytes: int) -> Completion:
        """Read; completion fires with an FSResult."""
        return self.pfs._io(self.node_name, READ, file_name, offset, nbytes)

    def write(self, file_name: str, offset: int, nbytes: int) -> Completion:
        """Write; completion fires with an FSResult."""
        return self.pfs._io(self.node_name, WRITE, file_name, offset, nbytes)

    def drop_caches(self) -> int:
        """Flush all server caches."""
        return self.pfs.drop_caches()
