"""Point-to-point link and NIC modelling.

A :class:`NetworkLink` is a unidirectional serialisation point: one
message at a time at ``bandwidth`` bytes/second plus a fixed ``latency_s``
propagation delay.  A :class:`NICPair` bundles the TX and RX directions
of one host interface (full duplex — the directions don't contend).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import Completion
from repro.sim.resources import Resource
from repro.util.units import MiB


@dataclass
class TransferStats:
    """Counters for one link direction."""

    messages: int = 0
    bytes_moved: int = 0
    total_busy_time: float = 0.0


class NetworkLink:
    """One direction of a network interface.

    ``transmit(nbytes)`` returns a completion that fires when the last
    byte has left the link (serialisation + propagation).
    """

    def __init__(self, engine: Engine, *, bandwidth: float = 125.0 * MiB,
                 latency_s: float = 0.000050, name: str = "link") -> None:
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be positive: {bandwidth}")
        if latency_s < 0:
            raise SimulationError(f"latency must be >= 0: {latency_s}")
        self.engine = engine
        self.bandwidth = bandwidth
        self.latency_s = latency_s
        self.name = name
        self.stats = TransferStats()
        self._wire = Resource(engine, capacity=1, name=f"{name}.wire")

    def serialization_time(self, nbytes: int) -> float:
        """Time for ``nbytes`` to cross the wire, excluding queueing."""
        if nbytes <= 0:
            raise SimulationError(f"nbytes must be positive: {nbytes}")
        return nbytes / self.bandwidth

    def transmit(self, nbytes: int) -> Completion:
        """Queue a message; completion fires on delivery."""
        done = self.engine.completion()
        self.engine.spawn(self._send(nbytes, done), name=f"{self.name}.tx")
        return done

    def _send(self, nbytes: int, done: Completion):
        grant = self._wire.acquire()
        yield grant
        busy = self.serialization_time(nbytes)
        try:
            yield self.engine.timeout(busy)
        finally:
            self._wire.release()
        self.stats.messages += 1
        self.stats.bytes_moved += nbytes
        self.stats.total_busy_time += busy
        # Propagation happens after the wire is free (pipelining).
        yield self.engine.timeout(self.latency_s)
        done.trigger(nbytes)

    @property
    def queue_length(self) -> int:
        """Messages waiting for the wire."""
        return self._wire.queue_length


class NICPair:
    """Full-duplex host interface: independent TX and RX links."""

    def __init__(self, engine: Engine, *, bandwidth: float = 125.0 * MiB,
                 latency_s: float = 0.000050, name: str = "nic") -> None:
        self.name = name
        self.tx = NetworkLink(engine, bandwidth=bandwidth,
                              latency_s=latency_s, name=f"{name}.tx")
        self.rx = NetworkLink(engine, bandwidth=bandwidth,
                              latency_s=latency_s, name=f"{name}.rx")

    @property
    def bytes_moved(self) -> int:
        """Total bytes through both directions."""
        return self.tx.stats.bytes_moved + self.rx.stats.bytes_moved
