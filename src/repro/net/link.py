"""Point-to-point link and NIC modelling.

A :class:`NetworkLink` is a unidirectional serialisation point: one
message at a time at ``bandwidth`` bytes/second plus a fixed ``latency_s``
propagation delay.  A :class:`NICPair` bundles the TX and RX directions
of one host interface (full duplex — the directions don't contend).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import Completion
from repro.sim.resources import Resource
from repro.util.units import MiB


@dataclass
class TransferStats:
    """Counters for one link direction."""

    messages: int = 0
    bytes_moved: int = 0
    total_busy_time: float = 0.0


class NetworkLink:
    """One direction of a network interface.

    ``transmit(nbytes)`` returns a completion that fires when the last
    byte has left the link (serialisation + propagation).
    """

    def __init__(self, engine: Engine, *, bandwidth: float = 125.0 * MiB,
                 latency_s: float = 0.000050, name: str = "link") -> None:
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be positive: {bandwidth}")
        if latency_s < 0:
            raise SimulationError(f"latency must be >= 0: {latency_s}")
        self.engine = engine
        self.bandwidth = bandwidth
        self.latency_s = latency_s
        self.name = name
        self.stats = TransferStats()
        self._wire = Resource(engine, capacity=1, name=f"{name}.wire")
        #: Fault-plan state.  ``latency_factor`` (>= 1.0) multiplies the
        #: propagation latency (congestion / rerouting spike).  A downed
        #: link stalls messages at the wire until :meth:`bring_up`; the
        #: flap must therefore always be paired with a recovery event or
        #: the run deadlocks — by design, that surfaces a malformed plan.
        self.latency_factor = 1.0
        self._up = True
        self._resume: Completion | None = None
        self.downtime_stalls = 0

    @property
    def up(self) -> bool:
        """Is the link currently passing traffic?"""
        return self._up

    def take_down(self) -> None:
        """Flap start: hold all messages at the wire."""
        if self._up:
            self._up = False
            self._resume = self.engine.completion()

    def bring_up(self) -> None:
        """Flap end: release stalled messages (FIFO, same wire order)."""
        if not self._up:
            self._up = True
            resume, self._resume = self._resume, None
            resume.trigger(None)

    def wait_up(self):
        """(generator) Block until the link passes traffic again.

        Yielded from by anything about to use the wire — both
        :meth:`transmit` and the topology's cut-through transfer path.
        Loops because the link may flap again before the waiter runs.
        """
        while not self._up:
            self.downtime_stalls += 1
            yield self._resume

    @property
    def effective_latency_s(self) -> float:
        """Propagation latency including any fault-plan spike."""
        return self.latency_s * self.latency_factor

    def serialization_time(self, nbytes: int) -> float:
        """Time for ``nbytes`` to cross the wire, excluding queueing."""
        if nbytes <= 0:
            raise SimulationError(f"nbytes must be positive: {nbytes}")
        return nbytes / self.bandwidth

    def transmit(self, nbytes: int) -> Completion:
        """Queue a message; completion fires on delivery."""
        done = self.engine.completion()
        self.engine.spawn(self._send(nbytes, done), name=f"{self.name}.tx")
        return done

    def _send(self, nbytes: int, done: Completion):
        grant = self._wire.acquire()
        yield grant
        # Holding the wire while down: followers queue behind us and
        # drain in order once the link recovers.
        yield from self.wait_up()
        busy = self.serialization_time(nbytes)
        try:
            yield self.engine.timeout(busy)
        finally:
            self._wire.release()
        self.stats.messages += 1
        self.stats.bytes_moved += nbytes
        self.stats.total_busy_time += busy
        # Propagation happens after the wire is free (pipelining).
        yield self.engine.timeout(self.effective_latency_s)
        done.trigger(nbytes)

    @property
    def queue_length(self) -> int:
        """Messages waiting for the wire."""
        return self._wire.queue_length


class NICPair:
    """Full-duplex host interface: independent TX and RX links."""

    def __init__(self, engine: Engine, *, bandwidth: float = 125.0 * MiB,
                 latency_s: float = 0.000050, name: str = "nic") -> None:
        self.name = name
        self.tx = NetworkLink(engine, bandwidth=bandwidth,
                              latency_s=latency_s, name=f"{name}.tx")
        self.rx = NetworkLink(engine, bandwidth=bandwidth,
                              latency_s=latency_s, name=f"{name}.rx")

    @property
    def bytes_moved(self) -> int:
        """Total bytes through both directions."""
        return self.tx.stats.bytes_moved + self.rx.stats.bytes_moved

    # -- fault-plan hooks (both directions at once) ------------------------

    def take_down(self) -> None:
        """Flap the whole interface down (cable pull: TX and RX)."""
        self.tx.take_down()
        self.rx.take_down()

    def bring_up(self) -> None:
        """Restore both directions."""
        self.tx.bring_up()
        self.rx.bring_up()

    def set_latency_factor(self, factor: float) -> None:
        """Apply a propagation-latency spike to both directions."""
        if factor < 1.0:
            raise SimulationError(f"latency factor must be >= 1: {factor}")
        self.tx.latency_factor = factor
        self.rx.latency_factor = factor
