"""Star (switched-Ethernet) topology.

Every node owns a full-duplex NIC connected to a non-blocking switch, as
in the paper's Gigabit Ethernet cluster.  A message from A to B holds
A's TX wire and B's RX wire for the serialisation time (cut-through
switching), then pays one propagation latency.  Because a sender only
ever *holds* its own TX and *waits* on the receiver's RX, no wait cycle
can form.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.net.link import NICPair
from repro.sim.engine import Engine
from repro.sim.events import Completion
from repro.sim.resources import TokenBucket
from repro.util.units import MiB


class NetNode:
    """A host on the network: a name and a NIC."""

    def __init__(self, engine: Engine, name: str, *,
                 bandwidth: float, latency_s: float) -> None:
        self.name = name
        self.nic = NICPair(engine, bandwidth=bandwidth,
                           latency_s=latency_s, name=f"{name}.nic")


class StarTopology:
    """A set of nodes around a switch.

    By default the switch is non-blocking (only the endpoints' NICs
    limit throughput).  ``backplane_bandwidth`` models an
    *oversubscribed* switch: the sum of all flows through the fabric is
    capped at that rate (token-bucket arbitration, FIFO among waiting
    transfers) — the classic cluster phenomenon where per-link speeds
    look fine but the aggregate does not scale.

    >>> net = StarTopology(engine)
    >>> net.add_node("client0"); net.add_node("server0")
    >>> done = net.send("client0", "server0", 65536)
    """

    def __init__(self, engine: Engine, *, bandwidth: float = 125.0 * MiB,
                 latency_s: float = 0.000050,
                 backplane_bandwidth: float | None = None) -> None:
        self.engine = engine
        self.default_bandwidth = bandwidth
        self.default_latency_s = latency_s
        self._nodes: dict[str, NetNode] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self._backplane: TokenBucket | None = None
        if backplane_bandwidth is not None:
            if backplane_bandwidth <= 0:
                raise SimulationError(
                    f"bad backplane bandwidth {backplane_bandwidth}"
                )
            # Burst of ~8 MiB keeps individual messages unthrottled while
            # sustained aggregate load is capped at the backplane rate.
            self._backplane = TokenBucket(
                engine, rate=backplane_bandwidth,
                burst=max(8 * 1024 * 1024, backplane_bandwidth * 0.01),
                name="switch.backplane")

    def add_node(self, name: str, *, bandwidth: float | None = None,
                 latency_s: float | None = None) -> NetNode:
        """Register a host; per-node overrides allowed."""
        if name in self._nodes:
            raise SimulationError(f"duplicate node {name!r}")
        node = NetNode(
            self.engine, name,
            bandwidth=bandwidth or self.default_bandwidth,
            latency_s=(self.default_latency_s
                       if latency_s is None else latency_s),
        )
        self._nodes[name] = node
        return node

    def node(self, name: str) -> NetNode:
        """Look up a host by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None

    @property
    def node_names(self) -> list[str]:
        """All registered host names, in insertion order."""
        return list(self._nodes)

    def send(self, src: str, dst: str, nbytes: int) -> Completion:
        """Move ``nbytes`` from ``src`` to ``dst``; fires on delivery.

        A loopback send (``src == dst``) completes after a negligible
        in-memory copy and never touches the NIC — co-located client and
        server, as when a compute node doubles as an I/O server.
        """
        if nbytes <= 0:
            raise SimulationError(f"nbytes must be positive: {nbytes}")
        source = self.node(src)
        target = self.node(dst)
        done = self.engine.completion()
        self.engine.spawn(self._transfer(source, target, nbytes, done),
                          name=f"net.{src}->{dst}")
        return done

    def _transfer(self, source: NetNode, target: NetNode, nbytes: int,
                  done: Completion):
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if source is target:
            yield self.engine.timeout(0.0)
            done.trigger(nbytes)
            return
        fabric_claim = None
        if self._backplane is not None:
            # Oversubscription: the fabric claim proceeds concurrently
            # with the endpoint wires (a fluid approximation); the
            # transfer completes when both are done, so a roomy
            # backplane costs nothing and a saturated one caps the
            # aggregate.
            fabric_claim = self.engine.spawn(
                self._claim_fabric(nbytes), name="net.fabric")
        tx_wire = source.nic.tx._wire
        rx_wire = target.nic.rx._wire
        tx_time = source.nic.tx.serialization_time(nbytes)
        rx_time = target.nic.rx.serialization_time(nbytes)
        tx_grant = tx_wire.acquire()
        yield tx_grant
        # A downed link stalls the transfer at the wire (fault-plan
        # flap); followers queue behind and drain in order on recovery.
        yield from source.nic.tx.wait_up()
        rx_grant = rx_wire.acquire()
        yield rx_grant
        yield from target.nic.rx.wait_up()
        # Each wire is busy for its *own* serialization time (cut-through:
        # a fast receiver drains a slow sender's stream without being
        # occupied for the sender's full transmit duration).
        self.engine.call_later(rx_time, rx_wire.release)
        try:
            yield self.engine.timeout(tx_time)
        finally:
            tx_wire.release()
        if rx_time > tx_time:
            yield self.engine.timeout(rx_time - tx_time)
        for link, amount, busy in ((source.nic.tx, nbytes, tx_time),
                                   (target.nic.rx, nbytes, rx_time)):
            link.stats.messages += 1
            link.stats.bytes_moved += amount
            link.stats.total_busy_time += busy
        if fabric_claim is not None:
            yield fabric_claim
        yield self.engine.timeout(source.nic.tx.effective_latency_s)
        done.trigger(nbytes)

    def _claim_fabric(self, nbytes: int):
        # Messages larger than the burst claim capacity in instalments.
        assert self._backplane is not None
        remaining = nbytes
        while remaining > 0:
            chunk = min(remaining, int(self._backplane.burst))
            yield self._backplane.take(chunk)
            remaining -= chunk
