"""Network model: point-to-point links and a star (switched) topology.

The paper's testbed interconnect is Gigabit Ethernet; the default link
parameters model it (125 MB/s line rate, ~50 µs one-way latency).
Transfers serialise on the sender's TX and the receiver's RX interface,
so a single I/O server's NIC saturates under enough concurrent clients —
the contention source in the IOR experiment (Set 3b).
"""

from repro.net.link import NetworkLink, NICPair, TransferStats
from repro.net.topology import StarTopology, NetNode

__all__ = [
    "NetworkLink",
    "NICPair",
    "TransferStats",
    "StarTopology",
    "NetNode",
]
