"""Extent-based file → device address mapping.

Files are stored as one or more *extents* (contiguous device ranges).
The allocator hands out extents sequentially with an optional maximum
extent length, so tests can force multi-extent (fragmented) files and
verify the mapping logic across extent boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FileSystemError


@dataclass(frozen=True)
class Extent:
    """A contiguous device byte range ``[device_offset, device_offset+length)``."""

    device_offset: int
    length: int

    def __post_init__(self) -> None:
        if self.device_offset < 0:
            raise FileSystemError(f"negative extent offset {self.device_offset}")
        if self.length <= 0:
            raise FileSystemError(f"non-positive extent length {self.length}")

    @property
    def end(self) -> int:
        """One past the last device byte of the extent."""
        return self.device_offset + self.length


class FileMap:
    """The extent list of one file, with offset translation."""

    def __init__(self, name: str, extents: list[Extent]) -> None:
        if not extents:
            raise FileSystemError(f"file {name!r} needs at least one extent")
        self.name = name
        self.extents = list(extents)
        self.size = sum(e.length for e in extents)

    def translate(self, offset: int, nbytes: int) -> list[Extent]:
        """Device ranges covering logical ``[offset, offset+nbytes)``.

        Returned extents are in logical order; adjacent device ranges are
        *not* merged (the caller coalesces if it wants — the device layer
        sees the same boundaries a real extent tree would produce).
        """
        if offset < 0 or nbytes <= 0:
            raise FileSystemError(
                f"bad range offset={offset} nbytes={nbytes} in {self.name!r}"
            )
        if offset + nbytes > self.size:
            raise FileSystemError(
                f"range [{offset}, {offset + nbytes}) exceeds size "
                f"{self.size} of {self.name!r}"
            )
        result: list[Extent] = []
        logical = 0
        remaining_start = offset
        remaining = nbytes
        for extent in self.extents:
            extent_end = logical + extent.length
            if remaining_start < extent_end and remaining > 0:
                within = remaining_start - logical
                take = min(remaining, extent.length - within)
                result.append(Extent(extent.device_offset + within, take))
                remaining_start += take
                remaining -= take
            logical = extent_end
            if remaining == 0:
                break
        assert remaining == 0, "translate() failed to cover the range"
        return result


class ExtentAllocator:
    """Sequential extent allocator over a device address space.

    ``max_extent`` caps individual extent length (0 = unlimited), which
    is how tests produce fragmented files deterministically.  Freed space
    is only reusable when it is the most recent allocation (stack-like);
    this is enough for simulations, which allocate all files up front.
    """

    def __init__(self, capacity_bytes: int, *, start: int = 0,
                 max_extent: int = 0) -> None:
        if capacity_bytes <= 0:
            raise FileSystemError(f"bad capacity {capacity_bytes}")
        if not 0 <= start < capacity_bytes:
            raise FileSystemError(f"bad start {start}")
        if max_extent < 0:
            raise FileSystemError(f"bad max_extent {max_extent}")
        self.capacity_bytes = capacity_bytes
        self.max_extent = max_extent
        self._cursor = start

    @property
    def used(self) -> int:
        """Bytes allocated so far."""
        return self._cursor

    @property
    def free(self) -> int:
        """Bytes still available."""
        return self.capacity_bytes - self._cursor

    def allocate(self, nbytes: int) -> list[Extent]:
        """Allocate ``nbytes``, split into <= max_extent chunks."""
        if nbytes <= 0:
            raise FileSystemError(f"cannot allocate {nbytes} bytes")
        if nbytes > self.free:
            raise FileSystemError(
                f"device full: need {nbytes}, have {self.free}"
            )
        extents: list[Extent] = []
        remaining = nbytes
        while remaining > 0:
            chunk = remaining
            if self.max_extent:
                chunk = min(chunk, self.max_extent)
            extents.append(Extent(self._cursor, chunk))
            self._cursor += chunk
            remaining -= chunk
        return extents

    def release_last(self, extents: list[Extent]) -> None:
        """Free the most recent allocation (LIFO discipline only)."""
        if not extents:
            return
        end = max(e.end for e in extents)
        if end != self._cursor:
            raise FileSystemError(
                "release_last only supports the most recent allocation"
            )
        self._cursor = min(e.device_offset for e in extents)
