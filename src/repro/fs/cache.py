"""LRU page cache with write-through or write-back policies.

Pages are keyed by ``(file_name, page_index)``.  The cache stores no data
payload — the simulator tracks *which* bytes are resident, not their
contents — but it does track dirtiness so write-back flushing can be
exercised.  The paper flushed all system caches before each run
(section IV.B); :meth:`PageCache.drop_caches` is that knob.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import FileSystemError

PageKey = tuple[str, int]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """hits / lookups (0.0 when never used)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class PageCache:
    """Fixed-capacity LRU page cache.

    ``capacity_pages == 0`` gives an always-miss cache (cache disabled),
    which keeps call sites uniform.
    """

    def __init__(self, capacity_pages: int, page_size: int = 4096,
                 *, policy: str = "write-through") -> None:
        if capacity_pages < 0:
            raise FileSystemError(f"bad capacity {capacity_pages}")
        if page_size <= 0:
            raise FileSystemError(f"bad page size {page_size}")
        if policy not in ("write-through", "write-back"):
            raise FileSystemError(f"unknown policy {policy!r}")
        self.capacity_pages = capacity_pages
        self.page_size = page_size
        self.policy = policy
        self.stats = CacheStats()
        # key -> dirty flag; OrderedDict gives us LRU order for free.
        self._pages: OrderedDict[PageKey, bool] = OrderedDict()

    def __len__(self) -> int:
        return len(self._pages)

    def page_range(self, offset: int, nbytes: int) -> range:
        """Indices of the pages overlapping ``[offset, offset+nbytes)``."""
        if offset < 0 or nbytes <= 0:
            raise FileSystemError(
                f"bad range offset={offset} nbytes={nbytes}"
            )
        first = offset // self.page_size
        last = (offset + nbytes - 1) // self.page_size
        return range(first, last + 1)

    def lookup(self, file_name: str, page: int) -> bool:
        """Is the page resident?  Updates LRU order and hit/miss stats."""
        key = (file_name, page)
        if key in self._pages:
            self._pages.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def contains(self, file_name: str, page: int) -> bool:
        """Residency check without touching stats or LRU order."""
        return (file_name, page) in self._pages

    def insert(self, file_name: str, page: int,
               dirty: bool = False) -> list[PageKey]:
        """Make the page resident; returns dirty pages evicted (write-back).

        With ``capacity_pages == 0`` the insert is a no-op (disabled cache).
        """
        if self.capacity_pages == 0:
            return []
        key = (file_name, page)
        writebacks: list[PageKey] = []
        if key in self._pages:
            self._pages[key] = self._pages[key] or dirty
            self._pages.move_to_end(key)
            return writebacks
        while len(self._pages) >= self.capacity_pages:
            old_key, old_dirty = self._pages.popitem(last=False)
            self.stats.evictions += 1
            if old_dirty:
                self.stats.writebacks += 1
                writebacks.append(old_key)
        self._pages[key] = dirty
        self.stats.insertions += 1
        return writebacks

    def mark_dirty(self, file_name: str, page: int) -> None:
        """Flag a resident page dirty (write-back policy)."""
        key = (file_name, page)
        if key not in self._pages:
            raise FileSystemError(f"page {key} not resident")
        self._pages[key] = True
        self._pages.move_to_end(key)

    def dirty_pages(self) -> list[PageKey]:
        """All currently-dirty resident pages, LRU-first."""
        return [k for k, d in self._pages.items() if d]

    def flush(self) -> list[PageKey]:
        """Clean all dirty pages; returns the keys that needed write-back."""
        dirty = self.dirty_pages()
        for key in dirty:
            self._pages[key] = False
            self.stats.writebacks += 1
        return dirty

    def invalidate_file(self, file_name: str) -> int:
        """Drop all pages of one file; returns the count dropped."""
        keys = [k for k in self._pages if k[0] == file_name]
        for key in keys:
            del self._pages[key]
        return len(keys)

    def drop_caches(self) -> list[PageKey]:
        """Empty the cache (the paper's pre-run flush).

        Returns dirty pages that a real system would have written back
        first; callers decide whether to charge that I/O.
        """
        dirty = self.dirty_pages()
        self._pages.clear()
        return dirty
