"""Local file system: extent allocation, LRU page cache, FS facade.

This is the substrate for the paper's single-node experiments (Sets 1-2,
"local file systems mounted on HDD, SSD").  It maps file offsets to device
extents, caches pages, and counts the bytes that actually cross the
device boundary — the quantity the *bandwidth* metric sees.
"""

from repro.fs.blockmap import Extent, ExtentAllocator, FileMap
from repro.fs.cache import PageCache, CacheStats
from repro.fs.localfs import LocalFileSystem, FSResult, FSStats

__all__ = [
    "Extent",
    "ExtentAllocator",
    "FileMap",
    "PageCache",
    "CacheStats",
    "LocalFileSystem",
    "FSResult",
    "FSStats",
]
