"""Local file system facade: files on one block device through a page cache.

Responsibilities:

- file creation (extent allocation via :class:`~repro.fs.blockmap.ExtentAllocator`);
- the read path: per-call software overhead, cache lookup, miss
  coalescing, optional read-ahead, parallel device submission;
- the write path: write-through (device write before completion) or
  write-back (dirty pages, asynchronous eviction write-back, explicit
  :meth:`flush`);
- byte accounting at the device boundary (:class:`FSStats`), which is the
  number the *bandwidth* metric measures — distinct from the bytes the
  application asked for, which is what BPS counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices.base import BlockDevice, DeviceRequest, DeviceResult, READ, WRITE
from repro.errors import FileSystemError
from repro.fs.blockmap import Extent, ExtentAllocator, FileMap
from repro.fs.cache import PageCache
from repro.sim.engine import Engine
from repro.sim.events import Completion


@dataclass
class FSStats:
    """Byte/op counters at the file-system ↔ device boundary."""

    calls: int = 0
    bytes_requested: int = 0
    device_reads: int = 0
    device_writes: int = 0
    bytes_read_from_device: int = 0
    bytes_written_to_device: int = 0
    #: Device accesses that failed *after* exhausting the retry budget —
    #: exactly one increment per finally-failed access, however many
    #: retry rounds it went through.
    faults: int = 0
    #: Re-submissions of faulted accesses (recovery traffic at the
    #: device boundary; 0 when ``device_retries`` is 0).
    device_retries: int = 0

    @property
    def device_bytes_moved(self) -> int:
        """Total bytes that crossed the device boundary."""
        return self.bytes_read_from_device + self.bytes_written_to_device

    @property
    def read_amplification(self) -> float:
        """device read bytes / requested bytes (1.0 when equal)."""
        if self.bytes_requested == 0:
            return 0.0
        return self.bytes_read_from_device / self.bytes_requested


@dataclass(frozen=True)
class FSResult:
    """Outcome of one file-system call."""

    nbytes: int
    device_bytes: int
    cache_hit_pages: int
    cache_miss_pages: int
    start: float
    end: float
    success: bool = True
    errors: tuple[str, ...] = field(default_factory=tuple)

    @property
    def latency(self) -> float:
        """Wall time of the call."""
        return self.end - self.start


class LocalFileSystem:
    """A single-device file system with an optional page cache.

    Parameters
    ----------
    engine, device:
        Simulation engine and backing block device.
    page_cache:
        A :class:`PageCache`; ``None`` means no caching at all.
    per_call_overhead_s:
        Fixed software cost per FS call (syscall + VFS + FS work).  This
        is the term that makes small-record sweeps slow — the Set 2
        mechanism.
    readahead_pages:
        Extra pages fetched past each miss run (0 disables read-ahead).
    max_extent:
        Forwarded to the allocator; 0 = files are fully contiguous.
    device_retries:
        Transparent retry rounds for faulted device accesses (the
        kernel's SCSI/ATA requeue behaviour).  0 = a device fault
        surfaces immediately.  Retried submissions are accounted as
        extra device traffic; ``stats.faults`` counts each access at
        most once, and only when its last retry also failed.
    """

    def __init__(
        self,
        engine: Engine,
        device: BlockDevice,
        *,
        page_cache: PageCache | None = None,
        per_call_overhead_s: float = 0.000030,
        readahead_pages: int = 0,
        max_extent: int = 0,
        device_retries: int = 0,
        name: str = "localfs",
    ) -> None:
        if per_call_overhead_s < 0:
            raise FileSystemError("negative per-call overhead")
        if readahead_pages < 0:
            raise FileSystemError("negative readahead")
        if device_retries < 0:
            raise FileSystemError(f"negative device retries {device_retries}")
        self.engine = engine
        self.device = device
        self.cache = page_cache
        self.per_call_overhead_s = per_call_overhead_s
        self.readahead_pages = readahead_pages
        self.device_retries = device_retries
        self.name = name
        self.stats = FSStats()
        self._allocator = ExtentAllocator(device.capacity_bytes,
                                          max_extent=max_extent)
        self._files: dict[str, FileMap] = {}

    # -- namespace -----------------------------------------------------------

    def create(self, file_name: str, size: int) -> FileMap:
        """Create a file of ``size`` bytes; contents are implicit."""
        if file_name in self._files:
            raise FileSystemError(f"file exists: {file_name!r}")
        if size <= 0:
            raise FileSystemError(f"bad file size {size}")
        extents = self._allocator.allocate(size)
        fmap = FileMap(file_name, extents)
        self._files[file_name] = fmap
        return fmap

    def exists(self, file_name: str) -> bool:
        """Does the file exist?"""
        return file_name in self._files

    def size_of(self, file_name: str) -> int:
        """File size in bytes."""
        return self._lookup(file_name).size

    def _lookup(self, file_name: str) -> FileMap:
        try:
            return self._files[file_name]
        except KeyError:
            raise FileSystemError(f"no such file: {file_name!r}") from None

    # -- cache management ------------------------------------------------------

    def drop_caches(self) -> int:
        """Empty the page cache (pre-run flush, as in the paper).

        Dirty pages are discarded *without* charging write-back I/O —
        this models the experimental reset between runs, not a crash-safe
        sync.  Returns the number of dirty pages discarded.
        """
        if self.cache is None:
            return 0
        return len(self.cache.drop_caches())

    def flush(self) -> Completion:
        """Write back all dirty pages; completion fires when durable."""
        done = self.engine.completion()
        self.engine.spawn(self._flush_proc(done), name=f"{self.name}.flush")
        return done

    def _flush_proc(self, done: Completion):
        if self.cache is None:
            yield self.engine.timeout(0.0)
            done.trigger(0)
            return
        dirty = self.cache.flush()
        extents = []
        for file_name, page in dirty:
            extents.extend(self._page_extents(file_name, page))
        if extents:
            yield from self._issue(WRITE, extents)
        done.trigger(len(dirty))

    # -- I/O paths ---------------------------------------------------------------

    def read(self, file_name: str, offset: int, nbytes: int) -> Completion:
        """Read ``nbytes`` at ``offset``; completion fires with FSResult."""
        fmap = self._lookup(file_name)
        self._check_range(fmap, offset, nbytes)
        done = self.engine.completion()
        self.engine.spawn(self._read_proc(fmap, offset, nbytes, done),
                          name=f"{self.name}.read")
        return done

    def write(self, file_name: str, offset: int, nbytes: int) -> Completion:
        """Write ``nbytes`` at ``offset``; completion fires with FSResult."""
        fmap = self._lookup(file_name)
        self._check_range(fmap, offset, nbytes)
        done = self.engine.completion()
        self.engine.spawn(self._write_proc(fmap, offset, nbytes, done),
                          name=f"{self.name}.write")
        return done

    @staticmethod
    def _check_range(fmap: FileMap, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes <= 0 or offset + nbytes > fmap.size:
            raise FileSystemError(
                f"bad range [{offset}, {offset + nbytes}) for "
                f"{fmap.name!r} of size {fmap.size}"
            )

    # -- helpers -------------------------------------------------------------------

    def _page_extents(self, file_name: str, page: int) -> list[Extent]:
        """Device extents backing one whole page (clipped to file size)."""
        fmap = self._lookup(file_name)
        page_size = self.cache.page_size if self.cache else 4096
        start = page * page_size
        length = min(page_size, fmap.size - start)
        if length <= 0:
            return []
        return fmap.translate(start, length)

    def _submit_device(self, op: str, extent: Extent) -> Completion:
        return self.device.submit(DeviceRequest(op, extent.device_offset,
                                                extent.length))

    def _issue(self, op: str, extents: list[Extent]):
        """(generator) Submit extents concurrently, retrying faults.

        Faulted extents are re-submitted for up to ``device_retries``
        extra rounds; every submission (including retries) counts as
        device-boundary traffic, but ``stats.faults`` increments exactly
        once per extent that is *still* failing when the budget runs out
        — no double-count when a retried access fails again.

        Returns ``(moved_bytes, errors)`` via StopIteration value, for
        ``yield from`` callers.
        """
        outstanding = list(extents)
        moved = 0
        errors: list[str] = []
        round_index = 0
        while outstanding:
            pending = [self._submit_device(op, extent)
                       for extent in outstanding]
            results: list[DeviceResult] = yield self.engine.all_of(pending)
            failed: list[Extent] = []
            failed_errors: list[str] = []
            for extent, result in zip(outstanding, results):
                if op == READ:
                    self.stats.device_reads += 1
                    self.stats.bytes_read_from_device += extent.length
                else:
                    self.stats.device_writes += 1
                    self.stats.bytes_written_to_device += extent.length
                moved += extent.length
                if not result.success:
                    failed.append(extent)
                    failed_errors.append(result.error)
            if not failed:
                break
            if round_index >= self.device_retries:
                # Budget exhausted: one fault per finally-failed access.
                self.stats.faults += len(failed)
                errors.extend(failed_errors)
                break
            round_index += 1
            self.stats.device_retries += len(failed)
            outstanding = failed
        return moved, errors

    def _read_proc(self, fmap: FileMap, offset: int, nbytes: int,
                   done: Completion):
        start = self.engine.now
        self.stats.calls += 1
        self.stats.bytes_requested += nbytes
        yield self.engine.timeout(self.per_call_overhead_s)

        if self.cache is None or self.cache.capacity_pages == 0:
            # Straight-through: one device request per extent run.
            moved, errors = yield from self._issue(
                READ, fmap.translate(offset, nbytes))
            done.trigger(FSResult(nbytes, moved, 0, 0, start,
                                  self.engine.now,
                                  success=not errors,
                                  errors=tuple(errors)))
            return

        cache = self.cache
        pages = cache.page_range(offset, nbytes)
        missing = [p for p in pages if not cache.lookup(fmap.name, p)]
        hits = len(pages) - len(missing)

        # Coalesce consecutive missing pages into runs, add read-ahead.
        runs = _coalesce_pages(missing)
        max_page = (fmap.size - 1) // cache.page_size
        if self.readahead_pages and runs:
            first, last = runs[-1]
            runs[-1] = (first, min(last + self.readahead_pages, max_page))

        miss_extents: list[Extent] = []
        fetched_pages: list[int] = []
        for first, last in runs:
            run_start = first * cache.page_size
            run_len = min((last - first + 1) * cache.page_size,
                          fmap.size - run_start)
            miss_extents.extend(fmap.translate(run_start, run_len))
            fetched_pages.extend(range(first, last + 1))

        errors: list[str] = []
        moved = 0
        if miss_extents:
            moved, errors = yield from self._issue(READ, miss_extents)

        writeback_extents: list[Extent] = []
        for page in fetched_pages:
            for key in cache.insert(fmap.name, page):
                writeback_extents.extend(self._page_extents(*key))
        if writeback_extents:
            # Eviction write-back happens asynchronously; reads don't wait.
            self.engine.spawn(self._drain(writeback_extents),
                              name=f"{self.name}.writeback")

        done.trigger(FSResult(nbytes, moved, hits, len(missing), start,
                              self.engine.now,
                              success=not errors, errors=tuple(errors)))

    def _write_proc(self, fmap: FileMap, offset: int, nbytes: int,
                    done: Completion):
        start = self.engine.now
        self.stats.calls += 1
        yield self.engine.timeout(self.per_call_overhead_s)

        cache = self.cache
        if cache is None or cache.capacity_pages == 0:
            moved, errors = yield from self._issue(
                WRITE, fmap.translate(offset, nbytes))
            done.trigger(FSResult(nbytes, moved, 0, 0, start,
                                  self.engine.now,
                                  success=not errors, errors=tuple(errors)))
            return

        pages = cache.page_range(offset, nbytes)
        if cache.policy == "write-through":
            moved, errors = yield from self._issue(
                WRITE, fmap.translate(offset, nbytes))
            for page in pages:
                cache.insert(fmap.name, page, dirty=False)
            done.trigger(FSResult(nbytes, moved, 0, 0, start,
                                  self.engine.now,
                                  success=not errors, errors=tuple(errors)))
            return

        # write-back: dirty the pages, write-back only on eviction/flush.
        writeback_extents: list[Extent] = []
        for page in pages:
            for key in cache.insert(fmap.name, page, dirty=True):
                writeback_extents.extend(self._page_extents(*key))
        if writeback_extents:
            self.engine.spawn(self._drain(writeback_extents),
                              name=f"{self.name}.writeback")
        yield self.engine.timeout(0.0)  # cache write is (nearly) free
        done.trigger(FSResult(nbytes, 0, 0, 0, start, self.engine.now))

    def _drain(self, extents: list[Extent]):
        yield from self._issue(WRITE, extents)


def _coalesce_pages(pages: list[int]) -> list[tuple[int, int]]:
    """Group a sorted page list into inclusive (first, last) runs.

    >>> _coalesce_pages([1, 2, 3, 7, 9, 10])
    [(1, 3), (7, 7), (9, 10)]
    """
    runs: list[tuple[int, int]] = []
    for page in pages:
        if runs and page == runs[-1][1] + 1:
            runs[-1] = (runs[-1][0], page)
        else:
            runs.append((page, page))
    return runs
