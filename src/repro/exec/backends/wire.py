"""Grid wire protocol: DuplexWorker's pipe framing, generalised to TCP.

The fork pool's transport is ``multiprocessing.Pipe`` — length-prefixed
pickled messages with EOF as the death signal.  This module is the same
idea over a socket so the *identical* message discipline (one job
outstanding per worker, results echo ``(index, attempt)``, EOF means
the executor is gone) works across hosts:

- every frame is an 8-byte header — a 4-byte big-endian payload length
  followed by the payload's CRC32 — and then the pickled payload.  The
  length is validated against a configurable bound **before** any
  payload byte is read, so a corrupt or hostile length prefix cannot
  balloon the reader; the checksum is validated before the payload is
  unpickled, so a flaky link that flips bits mid-frame produces a
  :class:`~repro.errors.FrameCorruptionError` quarantine, never a
  silently-wrong (or actively dangerous) deserialised object;
- the dispatcher opens the conversation with a ``hello`` carrying the
  protocol version, an optional shared token, and the
  :class:`~repro.exec.backends.task.GridTask` the worker should
  resolve; the worker answers ``welcome`` (or ``reject`` and hangs
  up);
- after the handshake: ``job`` / ``done`` / ``failed`` for work,
  ``ping`` / ``pong`` for liveness (either side may ping; any frame
  proves liveness), ``abort`` / ``aborted`` to reap a hung or
  straggling cell, ``bye`` to part cleanly.

Frames are **pickle**, exactly like the pipe transport, because grid
cells and their results (sweep specs, ``RunMeasurement`` with columnar
traces) round-trip bit-identically through pickle and nothing else in
the stdlib does.  Pickle over a socket executes what it is sent — this
protocol is for a cluster you own, not the open internet: bind workers
to private interfaces and set ``REPRO_GRID_TOKEN`` on both ends (the
token is compared constant-time and checked *before* the task is
resolved; the hello frame that carries it is still a pickle, so the
token narrows the honest-mistake window — wrong cluster, stale
dispatcher — rather than making the port safe to expose).  The CRC is
an integrity check against accidental corruption, not an
authenticator.
"""

from __future__ import annotations

import hmac
import os
import pickle
import socket
import struct
import warnings
import zlib

from repro.errors import FrameCorruptionError, GridError

__all__ = [
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_LIVENESS_TIMEOUT",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "connect",
    "max_frame_bytes",
    "parse_hostport",
    "recv_frame",
    "resolve_liveness",
    "send_frame",
    "tokens_match",
]

#: v2 added the per-frame CRC32; v1 peers are rejected at handshake.
PROTOCOL_VERSION = 2

#: Default hard per-frame bound.  Sweep results carry columnar traces —
#: MBs at corpus scale — but a GB-sized frame means a corrupt length
#: prefix.  Override per call or with ``REPRO_GRID_MAX_FRAME`` (bytes).
MAX_FRAME_BYTES = 1 << 30

_MAX_FRAME_ENV = "REPRO_GRID_MAX_FRAME"

#: Default liveness clocks (seconds), shared by the dispatcher and the
#: worker daemon so both ends of a half-open socket give up on it.
DEFAULT_HEARTBEAT_INTERVAL = 2.0
DEFAULT_LIVENESS_TIMEOUT = 10.0

_HEADER = struct.Struct(">II")  # payload length, payload CRC32


def max_frame_bytes(limit: int | None = None) -> int:
    """The effective frame bound: argument > env var > default.

    A non-positive explicit limit is a caller bug and raises; a
    malformed or non-positive ``REPRO_GRID_MAX_FRAME`` is clamped to
    the default with a warning (a site-wide env var should degrade,
    not abort every sweep).
    """
    if limit is not None:
        if limit <= 0:
            raise GridError(f"frame bound must be > 0, got {limit}")
        return limit
    env = os.environ.get(_MAX_FRAME_ENV, "").strip()
    if env:
        try:
            parsed = int(env)
        except ValueError:
            parsed = -1
        if parsed <= 0:
            warnings.warn(
                f"{_MAX_FRAME_ENV}={env!r} is not a positive byte "
                f"count; using {MAX_FRAME_BYTES}", RuntimeWarning,
                stacklevel=2)
            return MAX_FRAME_BYTES
        return parsed
    return MAX_FRAME_BYTES


#: Lazily cached env/default bound.  ``max_frame_bytes()`` costs an
#: ``os.environ`` lookup (~1µs) — per-frame that would dwarf the CRC
#: itself, so the hot paths resolve it once per process.  Env vars are
#: fixed at launch; tests that need a fresh read reset this to None.
_cached_bound: int | None = None


def _effective_bound(limit: int | None) -> int:
    if limit is not None:
        return max_frame_bytes(limit)
    global _cached_bound
    if _cached_bound is None:
        _cached_bound = max_frame_bytes()
    return _cached_bound


def send_frame(sock: socket.socket, obj, *,
               limit: int | None = None) -> None:
    """Pickle ``obj`` and send it length-prefixed and checksummed."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    bound = _effective_bound(limit)
    if len(data) > bound:
        raise GridError(
            f"frame of {len(data)} bytes exceeds {bound}")
    sock.sendall(_HEADER.pack(len(data), zlib.crc32(data)) + data)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            raise EOFError("peer closed the connection")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, *, limit: int | None = None):
    """Receive one frame; raises EOFError on a clean peer close.

    The length prefix is checked against the frame bound before the
    payload read begins (a corrupted 4-byte length must not trigger a
    gigabyte allocation), and the payload CRC is checked before
    unpickling.  Both failures raise
    :class:`~repro.errors.FrameCorruptionError` — after either, the
    stream offset can no longer be trusted, so callers must drop the
    connection rather than try to read the next frame.

    A partial frame followed by silence stalls until the socket
    timeout fires (``socket.timeout``/``TimeoutError``) — the caller's
    liveness machinery owns that clock.
    """
    length, checksum = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    bound = _effective_bound(limit)
    if length > bound:
        raise FrameCorruptionError(
            f"incoming frame of {length} bytes exceeds "
            f"{bound} (corrupt length prefix?)")
    data = _recv_exact(sock, length)
    if zlib.crc32(data) != checksum:
        raise FrameCorruptionError(
            f"frame checksum mismatch over {length} bytes "
            f"(corrupted in transit)")
    try:
        return pickle.loads(data)
    except Exception as exc:  # noqa: BLE001 — quarantine, not crash
        raise FrameCorruptionError(
            f"frame payload would not unpickle despite an intact "
            f"checksum: {type(exc).__name__}: {exc}") from exc


def tokens_match(expected: str | None, presented) -> bool:
    """Constant-time shared-token check; both-absent passes."""
    if not expected and not presented:
        return True
    if not expected or not isinstance(presented, str):
        return False
    return hmac.compare_digest(expected, presented)


def resolve_liveness(heartbeat: float | None = None,
                     liveness: float | None = None,
                     ) -> tuple[float, float]:
    """Clamp-and-warn resolution of the two liveness clocks.

    Returns ``(heartbeat_interval, liveness_timeout)``.  ``None``
    falls back to the env vars ``REPRO_GRID_HEARTBEAT`` /
    ``REPRO_GRID_LIVENESS`` and then the defaults.  Out-of-range
    values degrade instead of aborting: a non-positive clock is
    clamped to its default with a warning, and a liveness timeout not
    strictly greater than the heartbeat interval is clamped to twice
    the heartbeat (one ping must have a full interval to come back
    before the silence verdict lands).
    """

    def from_env(name: str) -> float | None:
        raw = os.environ.get(name, "").strip()
        if not raw:
            return None
        try:
            return float(raw)
        except ValueError:
            warnings.warn(
                f"{name}={raw!r} is not a number; ignoring",
                RuntimeWarning, stacklevel=3)
            return None

    if heartbeat is None:
        heartbeat = from_env("REPRO_GRID_HEARTBEAT")
    if liveness is None:
        liveness = from_env("REPRO_GRID_LIVENESS")
    if heartbeat is None:
        heartbeat = DEFAULT_HEARTBEAT_INTERVAL
    elif heartbeat <= 0:
        warnings.warn(
            f"heartbeat interval {heartbeat:g}s is not positive; "
            f"clamping to {DEFAULT_HEARTBEAT_INTERVAL:g}s",
            RuntimeWarning, stacklevel=2)
        heartbeat = DEFAULT_HEARTBEAT_INTERVAL
    if liveness is None:
        liveness = max(DEFAULT_LIVENESS_TIMEOUT, 2.0 * heartbeat)
    elif liveness <= 0:
        warnings.warn(
            f"liveness timeout {liveness:g}s is not positive; "
            f"clamping to {DEFAULT_LIVENESS_TIMEOUT:g}s",
            RuntimeWarning, stacklevel=2)
        liveness = max(DEFAULT_LIVENESS_TIMEOUT, 2.0 * heartbeat)
    if liveness <= heartbeat:
        clamped = 2.0 * heartbeat
        warnings.warn(
            f"liveness timeout {liveness:g}s must exceed the "
            f"heartbeat interval {heartbeat:g}s; clamping to "
            f"{clamped:g}s", RuntimeWarning, stacklevel=2)
        liveness = clamped
    return heartbeat, liveness


def parse_hostport(text: str) -> tuple[str, int]:
    """``host:port`` → ``(host, port)``; bare ``:port`` means localhost."""
    host, sep, port_text = text.strip().rpartition(":")
    if not sep:
        raise GridError(
            f"worker address {text!r} is not host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise GridError(
            f"worker address {text!r} has a non-numeric port") from None
    if not 0 <= port <= 65535:
        raise GridError(f"worker address {text!r} port out of range")
    return (host or "127.0.0.1", port)


def connect(address: tuple[str, int], *,
            timeout: float) -> socket.socket:
    """A connected TCP socket with TCP_NODELAY (frames are small)."""
    sock = socket.create_connection(address, timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock
