"""Grid wire protocol: DuplexWorker's pipe framing, generalised to TCP.

The fork pool's transport is ``multiprocessing.Pipe`` — length-prefixed
pickled messages with EOF as the death signal.  This module is the same
idea over a socket so the *identical* message discipline (one job
outstanding per worker, results echo ``(index, attempt)``, EOF means
the executor is gone) works across hosts:

- every frame is a 4-byte big-endian length followed by a pickled
  payload, bounded by :data:`MAX_FRAME_BYTES` so a corrupt or hostile
  length prefix cannot balloon the reader;
- the dispatcher opens the conversation with a ``hello`` carrying the
  protocol version, an optional shared token, and the
  :class:`~repro.exec.backends.task.GridTask` the worker should
  resolve; the worker answers ``welcome`` (or ``reject`` and hangs
  up);
- after the handshake: ``job`` / ``done`` / ``failed`` for work,
  ``ping`` / ``pong`` for liveness, ``abort`` / ``aborted`` to reap a
  hung or straggling cell, ``bye`` to part cleanly.

Frames are **pickle**, exactly like the pipe transport, because grid
cells and their results (sweep specs, ``RunMeasurement`` with columnar
traces) round-trip bit-identically through pickle and nothing else in
the stdlib does.  Pickle over a socket executes what it is sent — this
protocol is for a cluster you own, not the open internet: bind workers
to private interfaces and set ``REPRO_GRID_TOKEN`` on both ends (the
token is compared constant-time and checked *before* the task is
resolved; the hello frame that carries it is still a pickle, so the
token narrows the honest-mistake window — wrong cluster, stale
dispatcher — rather than making the port safe to expose).
"""

from __future__ import annotations

import hmac
import pickle
import socket
import struct

from repro.errors import GridError

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "connect",
    "parse_hostport",
    "recv_frame",
    "send_frame",
    "tokens_match",
]

PROTOCOL_VERSION = 1

#: Hard per-frame bound.  Sweep results carry columnar traces — MBs at
#: corpus scale — but a GB-sized frame means a corrupt length prefix.
MAX_FRAME_BYTES = 1 << 30

_LEN = struct.Struct(">I")


def send_frame(sock: socket.socket, obj) -> None:
    """Pickle ``obj`` and send it length-prefixed."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > MAX_FRAME_BYTES:
        raise GridError(
            f"frame of {len(data)} bytes exceeds {MAX_FRAME_BYTES}")
    sock.sendall(_LEN.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            raise EOFError("peer closed the connection")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket):
    """Receive one frame; raises EOFError on a clean peer close.

    A partial frame followed by silence stalls until the socket
    timeout fires (``socket.timeout``/``TimeoutError``) — the caller's
    liveness machinery owns that clock.
    """
    length = _LEN.unpack(_recv_exact(sock, _LEN.size))[0]
    if length > MAX_FRAME_BYTES:
        raise GridError(
            f"incoming frame of {length} bytes exceeds "
            f"{MAX_FRAME_BYTES} (corrupt length prefix?)")
    return pickle.loads(_recv_exact(sock, length))


def tokens_match(expected: str | None, presented) -> bool:
    """Constant-time shared-token check; both-absent passes."""
    if not expected and not presented:
        return True
    if not expected or not isinstance(presented, str):
        return False
    return hmac.compare_digest(expected, presented)


def parse_hostport(text: str) -> tuple[str, int]:
    """``host:port`` → ``(host, port)``; bare ``:port`` means localhost."""
    host, sep, port_text = text.strip().rpartition(":")
    if not sep:
        raise GridError(
            f"worker address {text!r} is not host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise GridError(
            f"worker address {text!r} has a non-numeric port") from None
    if not 0 <= port <= 65535:
        raise GridError(f"worker address {text!r} port out of range")
    return (host or "127.0.0.1", port)


def connect(address: tuple[str, int], *,
            timeout: float) -> socket.socket:
    """A connected TCP socket with TCP_NODELAY (frames are small)."""
    sock = socket.create_connection(address, timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock
