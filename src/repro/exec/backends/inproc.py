"""In-process backend: serial execution for smoke grids and 1-core CI.

The cheapest possible executor — no forks, no sockets, no pickling.
Jobs run one at a time in the driver's own process, in submission
order, so the output is the serial reference that every other backend
is measured against.  What it still honors from the shared contract:

- an exception inside ``fn(job)`` becomes an ``"error"`` outcome and
  consumes retry budget exactly like a remote failure (so retry-path
  tests run without fork support);
- ``SupervisorPolicy.job_timeout`` is enforced by running the job in a
  daemon thread and abandoning it past the deadline — a ``"timeout"``
  outcome, same as a reaped fork worker.  An abandoned thread cannot
  be killed, so a hot-spinning job keeps burning its core until the
  process exits; that is the documented price of in-process timeouts
  (use the fork backend when jobs may wedge the CPU).  Without a
  ``job_timeout`` the thread is skipped entirely and the job runs
  inline.

The chaos hook (``REPRO_TEST_KILL_JOB``) applies here too, except that
``exit`` mode would take the whole driver down — it is remapped to an
in-process ``raise`` so chaos specs stay runnable on any backend.
"""

from __future__ import annotations

import threading

from repro.exec.backends.base import ExecBackend, JobOutcome

__all__ = ["AsyncBackend"]


class AsyncBackend(ExecBackend):
    """Serial in-process executor behind the backend interface."""

    name = "async"

    def __init__(self) -> None:
        self._fn = None
        self._policy = None
        self._queued: tuple[int, int, object] | None = None

    def start(self, fn, policy, report, n_jobs: int) -> None:
        self._fn = fn
        self._policy = policy

    def healthy(self) -> bool:
        return True

    def slots(self) -> int:
        # One at a time: submission order *is* execution order.
        return 0 if self._queued is not None else 1

    def submit(self, index: int, attempt: int, job) -> bool:
        self._queued = (index, attempt, job)
        return True

    def collect(self) -> list[JobOutcome]:
        if self._queued is None:
            return []
        index, attempt, job = self._queued
        self._queued = None
        if self._policy.job_timeout is None:
            try:
                self._maybe_sabotage(index, attempt)
                payload = self._fn(job)
            except Exception as exc:
                return [JobOutcome("error", index, attempt,
                                   f"{type(exc).__name__}: {exc}")]
            return [JobOutcome("done", index, attempt, payload)]
        return [self._run_with_deadline(index, attempt, job)]

    @staticmethod
    def _maybe_sabotage(index: int, attempt: int) -> None:
        """Chaos hook, with ``exit`` remapped to a survivable raise."""
        from repro.exec.supervisor import _chaos_spec, _maybe_sabotage
        if _chaos_spec().get(index) == "exit" and attempt == 0:
            raise RuntimeError(
                f"chaos: injected in-process crash for job {index} "
                f"('exit' would kill the driver itself)")
        _maybe_sabotage(index, attempt)

    def _run_with_deadline(self, index: int, attempt: int,
                           job) -> JobOutcome:
        box: dict = {}

        def target() -> None:
            try:
                self._maybe_sabotage(index, attempt)
                box["payload"] = self._fn(job)
            except BaseException as exc:  # noqa: BLE001
                box["error"] = f"{type(exc).__name__}: {exc}"

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        thread.join(self._policy.job_timeout)
        if thread.is_alive():
            return JobOutcome(
                "timeout", index, attempt,
                f"timed out after {self._policy.job_timeout:.3g}s "
                f"(thread abandoned)")
        if "error" in box:
            return JobOutcome("error", index, attempt, box["error"])
        return JobOutcome("done", index, attempt, box["payload"])

    def finish(self) -> None:
        self._queued = None

    def cancel(self) -> None:
        self._queued = None
