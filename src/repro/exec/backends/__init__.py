"""Pluggable sweep backends: where a job grid actually executes.

Three implementations of one interface
(:class:`~repro.exec.backends.base.ExecBackend`):

- ``"fork"`` — the supervised fork pool (crash isolation, per-job
  timeouts, respawn budget) for multi-core single-host sweeps;
- ``"async"`` — in-process serial execution for smoke grids and
  single-core CI (no forks, still honors retry and timeout);
- ``"socket"`` — the multi-host dispatcher shipping grid cells to
  ``bps grid-worker`` daemons over TCP (liveness heartbeats, re-queue
  on worker death, straggler re-dispatch).

All three run under the shared driver
(:func:`~repro.exec.backends.base.run_jobs`), so retry budgets,
checkpoint journaling, and deterministic grid-cell seeds behave
identically — a sweep's results are bit-identical on every backend,
for any worker count, across kill/resume chaos.

:func:`resolve_backend` is the policy knob: explicit argument >
``REPRO_SWEEP_BACKEND`` env var > ``"fork"``.  A bad explicit argument
is a caller bug and raises; a bad env var is clamped to the default
with a warning, mirroring ``resolve_workers`` (a site-wide env var
should degrade, not abort every sweep).
"""

from __future__ import annotations

import os
import warnings

from repro.errors import ExperimentError
from repro.exec.backends.base import ExecBackend, JobOutcome, run_jobs
from repro.exec.backends.fork import ForkBackend
from repro.exec.backends.inproc import AsyncBackend
from repro.exec.backends.sockets import SocketBackend, parse_worker_addrs
from repro.exec.backends.task import GridTask, import_ref

__all__ = [
    "AsyncBackend",
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "ExecBackend",
    "ForkBackend",
    "GridTask",
    "JobOutcome",
    "SocketBackend",
    "import_ref",
    "parse_worker_addrs",
    "resolve_backend",
    "run_jobs",
]

#: Registry of selectable backends.
BACKEND_NAMES = ("fork", "async", "socket")
DEFAULT_BACKEND = "fork"

_BACKEND_ENV = "REPRO_SWEEP_BACKEND"


def resolve_backend(backend: str | None = None) -> str:
    """Backend name: explicit argument > REPRO_SWEEP_BACKEND > fork."""
    if backend is not None:
        if backend not in BACKEND_NAMES:
            raise ExperimentError(
                f"unknown sweep backend {backend!r} "
                f"(choose from {', '.join(BACKEND_NAMES)})")
        return backend
    env = os.environ.get(_BACKEND_ENV, "").strip()
    if env:
        if env not in BACKEND_NAMES:
            warnings.warn(
                f"{_BACKEND_ENV}={env!r} is not a valid sweep backend "
                f"(choose from {', '.join(BACKEND_NAMES)}); using "
                f"{DEFAULT_BACKEND!r}", RuntimeWarning, stacklevel=2)
            return DEFAULT_BACKEND
        return env
    return DEFAULT_BACKEND
