"""Executor-backend interface and the shared supervision driver.

Every sweep backend — the forked pool, the in-process serial/async
runner, the multi-host socket dispatcher — answers the same three
questions: *where can I put a job right now* (:meth:`ExecBackend.slots`
/ :meth:`ExecBackend.submit`), *what finished or failed*
(:meth:`ExecBackend.collect`), and *can you still take work at all*
(:meth:`ExecBackend.healthy`).  Everything above that line — retry
budgets, submission-order result assembly, checkpoint hooks, the
serial fallback when a backend dies under us — lives **once**, in
:func:`run_jobs`, so the guarantees cannot drift between backends:

- results are returned in submission order, with the caller's own
  per-job seeds untouched, so any backend (any worker count, any crash
  schedule) produces output bit-identical to a serial run;
- a lost or failed attempt consumes one unit of the job's bounded
  retry budget (``SupervisorPolicy.max_retries``) and is re-queued;
  exhaustion raises :class:`~repro.errors.SupervisionError`;
- ``on_result`` fires in the driver process in *completion* order —
  the checkpoint journal's hook — and exactly once per job, even when
  a straggler was speculatively re-dispatched and two copies finished;
- a backend that reports unhealthy (pool empty, every remote worker
  dead) stops receiving work and the driver finishes the remaining
  jobs serially in its own process.

Backends own only transport-level accounting (crash/timeout/respawn
counters on the shared :class:`~repro.exec.supervisor.SupervisionReport`
are incremented by the driver from the outcomes backends emit; worker
respawns are the backend's own).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import SupervisionError

__all__ = [
    "ExecBackend",
    "JobOutcome",
    "run_jobs",
]

#: Outcome kinds a backend may emit.
OUTCOME_KINDS = ("done", "error", "crash", "timeout")


@dataclass(frozen=True)
class JobOutcome:
    """One settled attempt: a result, or the reason it was lost.

    ``kind`` is ``"done"`` (``payload`` is the result), ``"error"``
    (the job raised; ``payload`` is the stringified exception),
    ``"crash"`` (the executor died under the job), or ``"timeout"``
    (the attempt outlived ``SupervisorPolicy.job_timeout``).
    """

    kind: str
    index: int
    attempt: int
    payload: object = None

    def __post_init__(self) -> None:
        if self.kind not in OUTCOME_KINDS:
            raise SupervisionError(f"unknown outcome kind {self.kind!r}")


class ExecBackend(ABC):
    """Transport half of a sweep executor: placement and collection.

    Lifecycle: :meth:`start` acquires resources (forks the pool,
    connects the worker sockets), then the driver alternates
    :meth:`submit` and :meth:`collect` until every job settles, and
    finally calls :meth:`finish` (graceful) or :meth:`cancel` (error
    path / abandoned work).  Implementations must tolerate ``cancel``
    at any point after ``start``.

    The contract that keeps sweeps bit-identical: backends never
    reorder, dedupe, or synthesize *results* — they execute
    ``fn(job)`` exactly as handed over and report what happened.
    Speculative duplicates (straggler re-dispatch) are allowed; the
    driver keeps the first completion and ignores the rest.
    """

    #: Registry name ("fork", "async", "socket").
    name = "?"

    @abstractmethod
    def start(self, fn: Callable, policy, report, n_jobs: int) -> None:
        """Acquire executors for up to ``n_jobs`` jobs running ``fn``."""

    @abstractmethod
    def slots(self) -> int:
        """How many jobs can be submitted right now without queueing."""

    @abstractmethod
    def submit(self, index: int, attempt: int, job) -> bool:
        """Hand one job to an idle executor.

        Returns False when the chosen executor turned out dead at send
        time — the job was *not* placed and must be re-offered (this
        does not consume retry budget; the backend does its own
        respawn accounting).
        """

    @abstractmethod
    def collect(self) -> list[JobOutcome]:
        """Block up to ~``policy.poll_interval``; return settled attempts.

        Also the backend's housekeeping tick: deadline reaping,
        heartbeats, liveness checks, and straggler re-dispatch all
        happen here.
        """

    @abstractmethod
    def healthy(self) -> bool:
        """Whether the backend can still execute anything at all.

        Returning False guarantees no submitted job remains in flight
        (every loss has already been reported via :meth:`collect`);
        the driver reacts by finishing the rest serially.
        """

    @abstractmethod
    def finish(self) -> None:
        """Graceful release after the last job settled."""

    @abstractmethod
    def cancel(self) -> None:
        """Abandon outstanding work and release everything."""


def run_jobs(
    backend: ExecBackend,
    jobs: Sequence,
    fn: Callable,
    *,
    policy,
    report,
    on_result: Callable[[int, object], None] | None = None,
) -> list:
    """Drive every job through ``backend``; return results in order.

    ``fn`` doubles as the serial-fallback executor, so it must be
    callable in the driver process even for remote backends (for a
    sweep that is the local cell runner — the spec is always known
    where the sweep was launched).
    """
    results: list = [None] * len(jobs)
    done = [False] * len(jobs)
    attempts = [0] * len(jobs)
    pending: deque[int] = deque(range(len(jobs)))
    remaining = len(jobs)

    def run_serially(indexes) -> None:
        nonlocal remaining
        for index in indexes:
            try:
                results[index] = fn(jobs[index])
            except Exception as exc:
                raise SupervisionError(
                    f"job {index} failed in serial execution: "
                    f"{type(exc).__name__}: {exc}") from exc
            done[index] = True
            remaining -= 1
            if on_result is not None:
                on_result(index, results[index])

    def count_failure(index: int, reason: str) -> None:
        """One failed attempt: re-queue or give up."""
        attempts[index] += 1
        report.retried_jobs[index] = \
            report.retried_jobs.get(index, 0) + 1
        if attempts[index] > policy.max_retries:
            raise SupervisionError(
                f"job {index} failed after {attempts[index]} attempt(s): "
                f"{reason}")
        pending.append(index)

    finished = False
    try:
        backend.start(fn, policy, report, len(jobs))
        while remaining:
            if not backend.healthy():
                # Executors are gone: finish the rest slowly but safely.
                report.serial_fallback = True
                run_serially([i for i in range(len(jobs))
                              if not done[i]])
                break
            while pending and backend.slots() > 0:
                index = pending.popleft()
                if not backend.submit(index, attempts[index],
                                      jobs[index]):
                    # Dead executor discovered at send time; the job
                    # was never placed — re-offer it, no retry burned.
                    pending.appendleft(index)
                    break
            for outcome in backend.collect():
                if done[outcome.index]:
                    continue  # late copy of a speculative re-dispatch
                if outcome.kind == "done":
                    results[outcome.index] = outcome.payload
                    done[outcome.index] = True
                    remaining -= 1
                    report.pooled += 1
                    if on_result is not None:
                        on_result(outcome.index, outcome.payload)
                    continue
                if outcome.kind == "crash":
                    report.crashes += 1
                elif outcome.kind == "timeout":
                    report.timeouts += 1
                else:
                    report.job_errors += 1
                count_failure(outcome.index, str(outcome.payload))
        finished = True
    finally:
        if finished:
            backend.finish()
        else:
            backend.cancel()
    return results
