"""Forked worker-pool backend — the supervised pool's transport half.

This is the machinery that used to live inline in
:func:`repro.exec.supervisor.run_supervised`: one forked process per
worker, one duplex pipe each (:class:`~repro.exec.duplex.DuplexWorker`),
jobs handed out one at a time so the parent always knows what a dead
worker was running.  EOF on a pipe is the crash signal; a worker past
its per-job deadline is terminated; both cost one unit of the pool-wide
respawn budget (``SupervisorPolicy.max_worker_respawns``), after which
the pool stops replacing workers, drains, and reports unhealthy — the
driver's cue to degrade to serial execution.

The retry/ordering/checkpoint semantics live in the shared driver
(:func:`repro.exec.backends.base.run_jobs`); this module only moves
jobs and reports what the transport saw.
"""

from __future__ import annotations

import time
from multiprocessing import get_context
from multiprocessing.connection import wait as _wait_connections
from typing import Callable

from repro.exec.backends.base import ExecBackend, JobOutcome
from repro.exec.duplex import DuplexWorker

__all__ = ["ForkBackend"]


def _worker_main(conn, fn: Callable) -> None:
    """Worker loop: receive (index, attempt, job), send back the result.

    Runs in a forked child; ``fn`` and everything it closes over are
    inherited, never pickled.  Exceptions are stringified before the
    send so an unpicklable exception cannot take the pipe down.
    """
    # Imported late so the chaos hook is read in the child's env.
    from repro.exec.supervisor import _maybe_sabotage
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            conn.close()
            return
        index, attempt, job = message
        try:
            _maybe_sabotage(index, attempt)
            payload = fn(job)
        except BaseException as exc:  # noqa: BLE001 — isolate *everything*
            conn.send(("error", index, attempt,
                       f"{type(exc).__name__}: {exc}"))
        else:
            conn.send(("done", index, attempt, payload))


class _Worker(DuplexWorker):
    """A pool worker: the shared duplex transport plus job bookkeeping."""

    __slots__ = ("job", "attempt", "deadline")

    def __init__(self, fn: Callable, ctx) -> None:
        super().__init__(_worker_main, (fn,), ctx=ctx)
        self.job: int | None = None
        self.attempt: int = 0
        self.deadline: float | None = None


class ForkBackend(ExecBackend):
    """Supervised fork pool behind the executor-backend interface."""

    name = "fork"

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self._pool: list[_Worker] = []
        self._fn: Callable | None = None
        self._policy = None
        self._report = None
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self, fn, policy, report, n_jobs: int) -> None:
        self._fn = fn
        self._policy = policy
        self._report = report
        self._ctx = get_context("fork")
        self._started = True
        for _ in range(min(self.workers, n_jobs)):
            self._pool.append(_Worker(fn, self._ctx))

    def finish(self) -> None:
        self._shutdown()

    def cancel(self) -> None:
        self._shutdown()

    def _shutdown(self) -> None:
        for worker in self._pool:
            if worker.job is None:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for worker in list(self._pool):
            self._retire(worker)

    def _retire(self, worker: _Worker) -> None:
        self._pool.remove(worker)
        worker.retire(terminate=True)

    def _respawn_budget_ok(self) -> bool:
        self._report.worker_respawns += 1
        return (self._report.worker_respawns
                <= self._policy.max_worker_respawns)

    # -- placement ---------------------------------------------------------

    def healthy(self) -> bool:
        return bool(self._pool)

    def slots(self) -> int:
        return sum(1 for w in self._pool if w.job is None)

    def submit(self, index: int, attempt: int, job) -> bool:
        worker = next(w for w in self._pool if w.job is None)
        try:
            worker.conn.send((index, attempt, job))
        except (BrokenPipeError, OSError):
            # The idle worker died between jobs: the job was never
            # placed, so only the pool pays (crash + respawn budget).
            self._retire(worker)
            self._report.crashes += 1
            if self._respawn_budget_ok():
                self._pool.append(_Worker(self._fn, self._ctx))
            return False
        worker.job = index
        worker.attempt = attempt
        if self._policy.job_timeout is not None:
            worker.deadline = time.monotonic() + self._policy.job_timeout
        return True

    # -- collection --------------------------------------------------------

    def collect(self) -> list[JobOutcome]:
        busy = [w for w in self._pool if w.job is not None]
        if not busy:
            return []
        timeout = self._policy.poll_interval
        now = time.monotonic()
        for worker in busy:
            if worker.deadline is not None:
                timeout = min(timeout, max(worker.deadline - now, 0.0))
        outcomes: list[JobOutcome] = []
        ready = _wait_connections([w.conn for w in busy],
                                  timeout=timeout)
        by_conn = {w.conn: w for w in busy}
        for conn in ready:
            worker = by_conn[conn]
            try:
                kind, index, attempt, payload = conn.recv()
            except (EOFError, OSError):
                # Worker died mid-job; its pipe reads EOF.
                index, attempt = worker.job, worker.attempt
                exitcode = worker.process.exitcode
                self._retire(worker)
                if self._respawn_budget_ok():
                    self._pool.append(_Worker(self._fn, self._ctx))
                outcomes.append(JobOutcome(
                    "crash", index, attempt,
                    f"worker crashed (exitcode {exitcode})"))
                continue
            worker.job = None
            worker.deadline = None
            outcomes.append(JobOutcome(kind, index, attempt, payload))
        # Reap workers stuck past their deadline.
        now = time.monotonic()
        for worker in list(self._pool):
            if worker.job is None or worker.deadline is None or \
                    now < worker.deadline:
                continue
            index, attempt = worker.job, worker.attempt
            self._retire(worker)
            if self._respawn_budget_ok():
                self._pool.append(_Worker(self._fn, self._ctx))
            outcomes.append(JobOutcome(
                "timeout", index, attempt,
                f"timed out after {self._policy.job_timeout:.3g}s"))
        return outcomes
