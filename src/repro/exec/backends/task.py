"""Grid tasks: how a remote worker learns *what* to execute.

The fork pool inherits its job function through ``fork()`` — closures
and all.  A worker daemon on another host inherits nothing, so the
socket backend ships a :class:`GridTask` instead: the import path of a
**factory** plus pickled arguments.  The worker imports the factory,
calls it once per dispatcher session, and uses the returned callable
as its job function for every cell that follows.

For sweeps the factory is
:func:`repro.experiments.runner._cells_from_builder`, whose arguments
name an importable spec *builder* (``"repro.experiments.set1:build_sweep"``)
and its inputs (device name, :class:`~repro.experiments.runner.ExperimentScale`).
Because the builder re-runs on the worker from the same inputs, the
worker holds the exact spec the dispatcher holds, and the grid cells —
``(point_index, seed)`` pairs — mean the same thing on every host.
That is what keeps distributed sweeps bit-identical to serial: the
task pins *code identity*, the cell pins *randomness*.

Arbitrary closures therefore cannot ride the socket backend — the
factory must be importable on the worker (same repo checkout).  The
error message says so instead of failing deep inside pickle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import import_module
from typing import Callable

from repro.errors import GridError

__all__ = ["GridTask", "import_ref"]


def import_ref(ref: str) -> Callable:
    """Resolve ``"package.module:attr"`` to the named callable."""
    module_name, sep, attr = ref.partition(":")
    if not sep or not module_name or not attr:
        raise GridError(
            f"import ref {ref!r} is not 'package.module:attr'")
    try:
        module = import_module(module_name)
    except ImportError as exc:
        raise GridError(f"cannot import {module_name!r}: {exc}") from exc
    target = module
    for part in attr.split("."):
        target = getattr(target, part, None)
        if target is None:
            raise GridError(f"{module_name!r} has no attribute {attr!r}")
    if not callable(target):
        raise GridError(f"{ref!r} resolved to a non-callable")
    return target


@dataclass(frozen=True)
class GridTask:
    """An importable factory + arguments resolving to a job function.

    ``resolve()`` runs on the worker: it imports ``factory`` and calls
    it with ``args``/``kwargs``; the return value is the callable that
    executes each grid cell.  Everything in ``args``/``kwargs`` must
    pickle (they cross the wire inside the hello frame).
    """

    factory: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)

    def resolve(self) -> Callable:
        fn = import_ref(self.factory)(*self.args, **self.kwargs)
        if not callable(fn):
            raise GridError(
                f"grid task factory {self.factory!r} returned a "
                f"non-callable job function")
        return fn

    def __str__(self) -> str:
        return f"{self.factory}(*{len(self.args)} args)"
