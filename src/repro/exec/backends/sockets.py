"""Multi-host socket dispatcher: grid cells over TCP worker daemons.

The dispatcher side of the ``bps grid-worker`` protocol
(:mod:`repro.exec.backends.wire`).  One :class:`SocketBackend` connects
to a fleet of worker daemons, hands each one cell at a time (exactly
the fork pool's discipline, so the shared driver's retry/ordering
contract applies unchanged), and supervises the fleet:

- **liveness** — a worker that has said nothing for
  ``heartbeat_interval`` seconds is pinged; one that stays silent for
  ``liveness_timeout`` after the ping is declared dead, its socket
  closed, its in-flight cell re-queued (one retry unit, like a fork
  crash), and its address handed to the reconnect circuit;
- **worker death** — EOF or a send error is the same signal as a pipe
  EOF in the fork pool and takes the same path;
- **frame corruption** — a frame that fails its CRC32 (or arrives with
  an impossible length prefix) is quarantined, counted in
  ``report.quarantined_frames``, and the link is dropped: after a bad
  frame the stream offset cannot be trusted, so the connection is the
  quarantine unit, not the frame;
- **duplicate delivery** — every completed cell index is remembered,
  so a duplicated ``done`` frame (chaos, a speculative copy finishing
  late, a worker resending across a reconnect) is dropped and counted
  in ``report.duplicate_results`` instead of reaching the driver
  twice.  A stale ``failed`` for an already-completed cell is equally
  inert;
- **reconnects** — each address has a circuit: the first retry after a
  death is immediate (a blip should not shrink the fleet), further
  failures back off exponentially (0.5 s doubling, capped), and after
  ``circuit_break_after`` consecutive failures the circuit breaks
  permanently (``report.broken_circuits``) so a dead host stops
  consuming poll cycles.  Successful reconnects are counted in
  ``report.reconnects``;
- **hung cells** — ``SupervisorPolicy.job_timeout`` sends ``abort``
  (the worker kills its job child and survives) and re-queues;
- **stragglers** — with ``straggler_factor > 0``, a cell running
  longer than ``factor × median completed-cell time`` is speculatively
  re-dispatched to an idle worker when no fresh work is pending; the
  first copy to finish wins and the loser is aborted.  Duplicates
  never consume retry budget, and a dying worker whose cell still runs
  elsewhere is not a job failure.

Results are bit-identical to serial for any fleet size and any
death/retry/duplication schedule because cells carry their seeds, the
index dedup admits each cell's result exactly once, and the driver
reassembles by index — the transport can only lose time, not change
numbers.
"""

from __future__ import annotations

import select
import time
import warnings
from statistics import median
from typing import Sequence

from repro.errors import FrameCorruptionError, GridError
from repro.exec.backends.base import ExecBackend, JobOutcome
from repro.exec.backends.task import GridTask
from repro.exec.backends.wire import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_LIVENESS_TIMEOUT,
    PROTOCOL_VERSION,
    connect,
    parse_hostport,
    recv_frame,
    send_frame,
)

__all__ = ["SocketBackend", "parse_worker_addrs"]

DEFAULT_CONNECT_TIMEOUT = 10.0
#: Straggler re-dispatch floor — below this a "straggler" is noise.
DEFAULT_STRAGGLER_MIN_SECONDS = 1.0
#: Completed-cell samples needed before the median is trusted.
_STRAGGLER_MIN_SAMPLES = 3
#: Reconnect backoff: first retry immediate, then base·2^k, capped.
RECONNECT_BACKOFF_BASE = 0.5
RECONNECT_BACKOFF_CAP = 30.0
#: Consecutive reconnect failures before an address's circuit breaks.
DEFAULT_CIRCUIT_BREAK_AFTER = 6


def parse_worker_addrs(spec: str | Sequence) -> list[tuple[str, int]]:
    """``"host:port,host:port"`` (or an iterable of them) → addresses."""
    if isinstance(spec, str):
        parts = [p for p in spec.split(",") if p.strip()]
    else:
        parts = [p for p in spec if str(p).strip()]
    if not parts:
        raise GridError("no grid worker addresses given")
    return [parse_hostport(str(p)) for p in parts]


class _Link:
    """One connected grid worker."""

    __slots__ = ("sock", "addr", "label", "job", "attempt", "payload",
                 "assigned_at", "deadline", "last_seen", "ping_sent")

    def __init__(self, sock, addr: tuple[str, int]) -> None:
        self.sock = sock
        self.addr = addr
        self.label = f"{addr[0]}:{addr[1]}"
        self.job: int | None = None
        self.attempt = 0
        self.payload = None
        self.assigned_at = 0.0
        self.deadline: float | None = None
        self.last_seen = time.monotonic()
        self.ping_sent: float | None = None

    def clear(self) -> None:
        self.job = None
        self.payload = None
        self.deadline = None


class _Circuit:
    """Reconnect state for one worker address.

    CLOSED (a link is up) → OPEN-pending (backing off between retry
    attempts) → either CLOSED again on a successful reconnect (the
    failure streak resets) or BROKEN after ``break_after`` consecutive
    failures — permanent for the sweep, so a host that is gone stays
    gone instead of eating a 30 s probe every poll.
    """

    __slots__ = ("addr", "failures", "next_attempt", "pending", "broken")

    def __init__(self, addr: tuple[str, int]) -> None:
        self.addr = addr
        self.failures = 0
        self.next_attempt = 0.0
        self.pending = False
        self.broken = False

    def trip(self, now: float) -> None:
        """The address's link died: arm an immediate first retry."""
        self.pending = True
        self.next_attempt = now if self.failures == 0 else (
            now + min(RECONNECT_BACKOFF_CAP,
                      RECONNECT_BACKOFF_BASE * 2.0 ** (self.failures - 1)))

    def record_failure(self, now: float, break_after: int) -> bool:
        """One more failed attempt; returns True if the circuit broke."""
        self.failures += 1
        if self.failures >= break_after:
            self.pending = False
            self.broken = True
            return True
        self.next_attempt = now + min(
            RECONNECT_BACKOFF_CAP,
            RECONNECT_BACKOFF_BASE * 2.0 ** (self.failures - 1))
        return False

    def close(self) -> None:
        """Reconnected: the streak resets."""
        self.failures = 0
        self.pending = False


class SocketBackend(ExecBackend):
    """Dispatcher over ``bps grid-worker`` daemons."""

    name = "socket"

    def __init__(self, workers: str | Sequence, task: GridTask, *,
                 token: str | None = None,
                 connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 liveness_timeout: float = DEFAULT_LIVENESS_TIMEOUT,
                 straggler_factor: float = 0.0,
                 straggler_min_seconds: float =
                 DEFAULT_STRAGGLER_MIN_SECONDS,
                 circuit_break_after: int =
                 DEFAULT_CIRCUIT_BREAK_AFTER) -> None:
        if heartbeat_interval <= 0 or liveness_timeout <= 0:
            raise GridError("liveness clocks must be > 0")
        if straggler_factor < 0:
            raise GridError(
                f"straggler_factor must be >= 0, got {straggler_factor}")
        if circuit_break_after < 1:
            raise GridError(
                f"circuit_break_after must be >= 1, "
                f"got {circuit_break_after}")
        self.addresses = parse_worker_addrs(workers)
        self.task = task
        self.token = token
        self.connect_timeout = connect_timeout
        self.heartbeat_interval = heartbeat_interval
        self.liveness_timeout = liveness_timeout
        self.straggler_factor = straggler_factor
        self.straggler_min_seconds = straggler_min_seconds
        self.circuit_break_after = circuit_break_after
        self._links: list[_Link] = []
        self._circuits: dict[tuple[str, int], _Circuit] = {}
        self._done_indexes: set[int] = set()
        self._durations: list[float] = []
        self._policy = None
        self._report = None

    # -- lifecycle ---------------------------------------------------------

    def start(self, fn, policy, report, n_jobs: int) -> None:
        self._policy = policy
        self._report = report
        failures: list[str] = []
        for addr in self.addresses:
            self._circuits[addr] = _Circuit(addr)
            try:
                self._links.append(self._open_link(addr))
            except (OSError, EOFError, GridError) as exc:
                failures.append(f"{addr[0]}:{addr[1]}: {exc}")
                self._circuits[addr].trip(time.monotonic())
        if not self._links:
            raise GridError(
                "no grid workers reachable: " + "; ".join(failures))
        if failures:
            warnings.warn(
                f"{len(failures)} grid worker(s) unreachable at start "
                f"({'; '.join(failures)}); continuing with "
                f"{len(self._links)}", RuntimeWarning, stacklevel=2)

    def _open_link(self, addr: tuple[str, int]) -> _Link:
        sock = connect(addr, timeout=self.connect_timeout)
        try:
            send_frame(sock, ("hello", {
                "version": PROTOCOL_VERSION,
                "token": self.token,
                "task": self.task,
            }))
            reply = recv_frame(sock)
            if not (isinstance(reply, tuple) and reply):
                raise GridError(f"malformed handshake reply {reply!r}")
            if reply[0] == "reject":
                raise GridError(f"worker rejected hello: {reply[1]}")
            if reply[0] != "welcome":
                raise GridError(f"unexpected handshake reply {reply!r}")
        except BaseException:
            sock.close()
            raise
        # After the handshake the liveness machinery owns the clock; a
        # worker that stalls mid-frame is reaped by the read timeout.
        sock.settimeout(self.liveness_timeout)
        return _Link(sock, addr)

    def finish(self) -> None:
        self._close_all(abort=False)

    def cancel(self) -> None:
        self._close_all(abort=True)

    def _close_all(self, *, abort: bool) -> None:
        for link in self._links:
            try:
                if abort and link.job is not None:
                    send_frame(link.sock, ("abort", link.job))
                send_frame(link.sock, ("bye",))
            except OSError:
                pass
            link.sock.close()
        self._links.clear()
        for circuit in self._circuits.values():
            circuit.pending = False

    # -- placement ---------------------------------------------------------

    def healthy(self) -> bool:
        if self._links:
            return True
        # No live links — but a pending (not yet broken) circuit within
        # the respawn budget may still bring a worker back; falling to
        # serial now would abandon a recoverable fleet.
        if self._report is None or self._policy is None:
            return False
        if self._report.worker_respawns > self._policy.max_worker_respawns:
            return False
        return any(c.pending and not c.broken
                   for c in self._circuits.values())

    def slots(self) -> int:
        return sum(1 for link in self._links if link.job is None)

    def submit(self, index: int, attempt: int, job) -> bool:
        link = next(l for l in self._links if l.job is None)
        return self._place(link, index, attempt, job)

    def _place(self, link: _Link, index: int, attempt: int,
               job) -> bool:
        try:
            send_frame(link.sock, ("job", index, attempt, job))
        except OSError as exc:
            # The job was never placed — only the fleet pays.
            self._bury(link, f"send failed: {exc}", requeue_held=False)
            return False
        now = time.monotonic()
        link.job = index
        link.attempt = attempt
        link.payload = job
        link.assigned_at = now
        link.last_seen = now
        if self._policy.job_timeout is not None:
            link.deadline = now + self._policy.job_timeout
        return True

    def _holders(self, index: int) -> list[_Link]:
        return [l for l in self._links if l.job == index]

    def _bury(self, link: _Link, reason: str, *,
              requeue_held: bool) -> JobOutcome | None:
        """Retire a dead link; arm its circuit; maybe emit the loss."""
        self._links.remove(link)
        link.sock.close()
        self._report.worker_respawns += 1
        circuit = self._circuits.setdefault(link.addr, _Circuit(link.addr))
        if not circuit.broken and self._report.worker_respawns <= \
                self._policy.max_worker_respawns:
            circuit.trip(time.monotonic())
        if link.job is None or not requeue_held:
            return None
        if link.job in self._done_indexes:
            # The cell already completed elsewhere; nothing was lost.
            return None
        if self._holders(link.job):
            # A speculative copy still runs elsewhere; not a job loss.
            return None
        return JobOutcome(
            "crash", link.job, link.attempt,
            f"grid worker {link.label} died ({reason})")

    def _attempt_reconnects(self) -> None:
        now = time.monotonic()
        for circuit in self._circuits.values():
            if not circuit.pending or circuit.broken or \
                    now < circuit.next_attempt:
                continue
            try:
                link = self._open_link(circuit.addr)
            except (OSError, EOFError, GridError):
                if circuit.record_failure(time.monotonic(),
                                          self.circuit_break_after):
                    self._report.broken_circuits += 1
                    warnings.warn(
                        f"grid worker {circuit.addr[0]}:"
                        f"{circuit.addr[1]} circuit broken after "
                        f"{circuit.failures} consecutive reconnect "
                        f"failures", RuntimeWarning, stacklevel=3)
                continue
            circuit.close()
            self._links.append(link)
            self._report.reconnects += 1

    # -- collection --------------------------------------------------------

    def collect(self) -> list[JobOutcome]:
        outcomes: list[JobOutcome] = []
        now = time.monotonic()
        timeout = self._policy.poll_interval
        for link in self._links:
            if link.deadline is not None:
                timeout = min(timeout, max(link.deadline - now, 0.0))
            if link.ping_sent is not None:
                due = link.ping_sent + self.liveness_timeout - now
            else:
                due = link.last_seen + self.heartbeat_interval - now
            timeout = min(timeout, max(due, 0.0))
        for circuit in self._circuits.values():
            if circuit.pending and not circuit.broken:
                timeout = min(timeout,
                              max(circuit.next_attempt - now, 0.0))
        try:
            # With zero live links this degenerates to a plain sleep
            # until the next circuit retry is due.
            ready, _, _ = select.select(
                [l.sock for l in self._links], [], [], timeout)
        except OSError:
            ready = []
        ready_fds = {s.fileno() for s in ready}
        for link in list(self._links):
            if link in self._links and link.sock.fileno() in ready_fds:
                outcome = self._drain(link)
                if outcome is not None:
                    outcomes.append(outcome)
        outcomes.extend(self._reap_deadlines())
        outcomes.extend(self._check_liveness())
        self._attempt_reconnects()
        self._redispatch_stragglers()
        return outcomes

    def _drain(self, link: _Link) -> JobOutcome | None:
        try:
            frame = recv_frame(link.sock)
        except FrameCorruptionError as exc:
            # The frame is poison and the stream offset after it is
            # unknowable: quarantine by dropping the whole connection.
            # The held cell re-queues; the circuit will reconnect.
            self._report.quarantined_frames += 1
            return self._bury(link, f"corrupt frame quarantined: {exc}",
                              requeue_held=True)
        except (EOFError, OSError, GridError, ValueError) as exc:
            return self._bury(link, f"read failed: {exc}",
                              requeue_held=True)
        link.last_seen = time.monotonic()
        link.ping_sent = None  # any frame proves the worker is alive
        kind = frame[0] if isinstance(frame, tuple) and frame else None
        if kind == "done":
            _, index, attempt, payload = frame
            if link.job == index:
                self._durations.append(
                    time.monotonic() - link.assigned_at)
                link.clear()
            self._abort_other_copies(index, link)
            if index in self._done_indexes:
                # Chaos duplication, a late speculative copy, or a
                # resend across reconnect: the cell already counted.
                self._report.duplicate_results += 1
                return None
            self._done_indexes.add(index)
            return JobOutcome("done", index, attempt, payload)
        if kind == "failed":
            _, index, attempt, failure_kind, reason = frame
            if link.job == index:
                link.clear()
            if index in self._done_indexes:
                # A stale failure for a cell that already succeeded
                # must not burn retry budget.
                self._report.duplicate_results += 1
                return None
            if self._holders(index):
                return None  # a speculative copy still runs
            return JobOutcome(failure_kind, index, attempt,
                              f"on {link.label}: {reason}")
        if kind == "ping":
            # Worker-initiated liveness probe (it suspects a half-open
            # dispatcher link): answer so it keeps the session.
            try:
                send_frame(link.sock, ("pong",))
            except OSError as exc:
                return self._bury(link, f"send failed: {exc}",
                                  requeue_held=True)
            return None
        if kind == "pong":
            link.ping_sent = None
            return None
        if kind == "aborted":
            if link.job == frame[1]:
                link.clear()
            return None
        return self._bury(link,
                          f"sent unknown frame {kind!r}",
                          requeue_held=True)

    def _abort_other_copies(self, index: int, winner: _Link) -> None:
        for link in list(self._links):
            if link is winner or link.job != index:
                continue
            try:
                send_frame(link.sock, ("abort", index))
            except OSError as exc:
                self._bury(link, f"send failed: {exc}",
                           requeue_held=False)
                continue
            link.clear()

    def _reap_deadlines(self) -> list[JobOutcome]:
        if self._policy.job_timeout is None:
            return []
        now = time.monotonic()
        outcomes = []
        for link in list(self._links):
            if link.job is None or link.deadline is None or \
                    now < link.deadline:
                continue
            index, attempt = link.job, link.attempt
            try:
                send_frame(link.sock, ("abort", index))
                link.clear()
            except OSError as exc:
                self._bury(link, f"send failed: {exc}",
                           requeue_held=False)
            if not self._holders(index):
                outcomes.append(JobOutcome(
                    "timeout", index, attempt,
                    f"timed out after "
                    f"{self._policy.job_timeout:.3g}s on {link.label}"))
        return outcomes

    def _check_liveness(self) -> list[JobOutcome]:
        now = time.monotonic()
        outcomes = []
        for link in list(self._links):
            silent = now - link.last_seen
            if link.ping_sent is not None and \
                    now - link.ping_sent >= self.liveness_timeout:
                outcome = self._bury(
                    link,
                    f"no heartbeat for {silent:.1f}s",
                    requeue_held=True)
                if outcome is not None:
                    outcomes.append(outcome)
            elif link.ping_sent is None and \
                    silent >= self.heartbeat_interval:
                try:
                    send_frame(link.sock, ("ping",))
                    link.ping_sent = now
                except OSError as exc:
                    outcome = self._bury(link, f"send failed: {exc}",
                                         requeue_held=True)
                    if outcome is not None:
                        outcomes.append(outcome)
        return outcomes

    def _redispatch_stragglers(self) -> None:
        if not self.straggler_factor or \
                len(self._durations) < _STRAGGLER_MIN_SAMPLES:
            return
        idle = [l for l in self._links if l.job is None]
        if not idle:
            return
        threshold = max(self.straggler_min_seconds,
                        self.straggler_factor * median(self._durations))
        now = time.monotonic()
        busy = sorted((l for l in self._links if l.job is not None),
                      key=lambda l: l.assigned_at)
        for link in busy:
            if not idle:
                return
            if now - link.assigned_at < threshold:
                return  # sorted oldest-first: the rest are younger
            if len(self._holders(link.job)) > 1:
                continue  # already speculated
            copy = idle.pop()
            self._place(copy, link.job, link.attempt, link.payload)
