"""Supervised fork-worker pool: crash isolation, timeouts, bounded retry.

``ProcessPoolExecutor`` treats one dead worker as fatal: the whole pool
raises ``BrokenProcessPool`` and every in-flight result is lost.  For a
sweep whose jobs are independent, deterministic simulations that is the
wrong failure mode — the lost job should simply run again.  This module
implements the supervision loop directly on ``multiprocessing``
primitives so the supervisor can see *which* worker died, re-queue
exactly the job it was running, and keep the rest of the pool working:

- each worker is a forked process with a dedicated duplex pipe; jobs are
  handed out one at a time, so the supervisor always knows the worker's
  current job;
- a worker that exits (segfault, ``os._exit``, OOM-kill) surfaces as
  EOF on its pipe: its job is re-queued and a replacement is forked;
- a job that runs past ``SupervisorPolicy.job_timeout`` gets its worker
  terminated and is re-queued the same way;
- a job that raises sends the error back over the pipe (the worker
  survives and takes the next job);
- every re-queue consumes one unit of the job's bounded retry budget —
  a job that keeps failing raises :class:`~repro.errors.SupervisionError`
  instead of looping forever;
- worker deaths consume a pool-wide respawn budget; once it is spent the
  supervisor stops forking and finishes the remaining jobs **serially in
  its own process** (a machine where forks keep dying should degrade to
  the slow-but-safe path, not thrash).

Results are returned in submission order, so callers that rely on
deterministic job→result mapping (the sweep grid's per-repetition
seeds) see output bit-identical to a serial run regardless of retries.

Chaos hook: when ``REPRO_TEST_KILL_JOB`` is set (e.g. ``"2:exit"``,
``"0:hang,3:raise"``), the *first* attempt of the named job indexes is
sabotaged inside the worker — ``exit`` calls ``os._exit``, ``hang``
sleeps until the timeout reaps it, ``raise`` throws.  Retries run
clean.  CI's chaos-smoke job drives the full recovery path with it.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as _wait_connections
from typing import Callable, Sequence

from repro.errors import SupervisionError
from repro.exec.duplex import DuplexWorker, fork_available

__all__ = [
    "CHAOS_EXIT_CODE",
    "SupervisionReport",
    "SupervisorPolicy",
    "fork_available",  # re-exported; the mechanism lives in exec.duplex
    "run_supervised",
]

#: Exit code used by the chaos hook's ``exit`` mode (recognisable in
#: supervisor error messages and CI logs).
CHAOS_EXIT_CODE = 17

_CHAOS_ENV = "REPRO_TEST_KILL_JOB"


@dataclass(frozen=True)
class SupervisorPolicy:
    """Retry/timeout/fallback budget for one supervised run.

    ``max_retries`` bounds *re-runs per job* (a job may execute at most
    ``1 + max_retries`` times); ``max_worker_respawns`` bounds forks
    spent replacing dead or timed-out workers across the whole run
    before the serial fallback engages.  ``job_timeout`` is wall-clock
    seconds per attempt; ``None`` disables the watchdog.
    """

    job_timeout: float | None = None
    max_retries: int = 2
    max_worker_respawns: int = 8
    #: Supervisor poll period when no deadline is nearer (seconds).
    poll_interval: float = 0.2

    def __post_init__(self) -> None:
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise SupervisionError(
                f"job_timeout must be > 0 or None, got {self.job_timeout}")
        if self.max_retries < 0:
            raise SupervisionError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.max_worker_respawns < 0:
            raise SupervisionError(
                f"max_worker_respawns must be >= 0, "
                f"got {self.max_worker_respawns}")
        if self.poll_interval <= 0:
            raise SupervisionError(
                f"poll_interval must be > 0, got {self.poll_interval}")


@dataclass
class SupervisionReport:
    """What the supervisor had to do to finish the run."""

    jobs: int = 0
    #: Jobs that ran in a pool worker (the rest ran serially).
    pooled: int = 0
    crashes: int = 0
    timeouts: int = 0
    job_errors: int = 0
    worker_respawns: int = 0
    serial_fallback: bool = False
    #: job index -> number of extra attempts it needed.
    retried_jobs: dict[int, int] = field(default_factory=dict)

    @property
    def total_retries(self) -> int:
        return sum(self.retried_jobs.values())

    def summary(self) -> str:
        """One-line human rendering (the CLI prints it when nonzero)."""
        parts = [f"{self.jobs} job(s)"]
        if self.crashes:
            parts.append(f"{self.crashes} worker crash(es)")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeout(s)")
        if self.job_errors:
            parts.append(f"{self.job_errors} job error(s)")
        if self.total_retries:
            parts.append(f"{self.total_retries} retry(ies)")
        if self.worker_respawns:
            parts.append(f"{self.worker_respawns} respawn(s)")
        if self.serial_fallback:
            parts.append("serial fallback engaged")
        return ", ".join(parts)


def _chaos_spec() -> dict[int, str]:
    """Parse ``REPRO_TEST_KILL_JOB`` into {job index: mode}."""
    raw = os.environ.get(_CHAOS_ENV, "").strip()
    spec: dict[int, str] = {}
    if not raw:
        return spec
    for part in raw.split(","):
        index, _, mode = part.strip().partition(":")
        try:
            spec[int(index)] = mode or "exit"
        except ValueError:
            continue  # malformed chaos spec entries are ignored
    return spec


def _maybe_sabotage(index: int, attempt: int) -> None:
    """Chaos hook, active only on a job's first attempt."""
    if attempt > 0:
        return
    mode = _chaos_spec().get(index)
    if mode is None:
        return
    if mode == "exit":
        os._exit(CHAOS_EXIT_CODE)
    elif mode == "hang":
        time.sleep(3600.0)
    elif mode == "raise":
        raise RuntimeError(f"chaos: injected failure for job {index}")


def _worker_main(conn, fn: Callable) -> None:
    """Worker loop: receive (index, attempt, job), send back the result.

    Runs in a forked child; ``fn`` and everything it closes over are
    inherited, never pickled.  Exceptions are stringified before the
    send so an unpicklable exception cannot take the pipe down.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            conn.close()
            return
        index, attempt, job = message
        try:
            _maybe_sabotage(index, attempt)
            payload = fn(job)
        except BaseException as exc:  # noqa: BLE001 — isolate *everything*
            conn.send(("error", index,
                       f"{type(exc).__name__}: {exc}"))
        else:
            conn.send(("done", index, payload))


class _Worker(DuplexWorker):
    """A pool worker: the shared duplex transport plus job bookkeeping."""

    __slots__ = ("job", "deadline")

    def __init__(self, fn: Callable, ctx) -> None:
        super().__init__(_worker_main, (fn,), ctx=ctx)
        self.job: int | None = None
        self.deadline: float | None = None


def run_supervised(
    jobs: Sequence,
    fn: Callable,
    *,
    workers: int,
    policy: SupervisorPolicy | None = None,
    on_result: Callable[[int, object], None] | None = None,
) -> tuple[list, SupervisionReport]:
    """Run ``fn(job)`` for every job under supervision.

    Returns ``(results, report)`` with ``results[i] == fn(jobs[i])`` in
    submission order.  ``on_result(index, payload)`` fires in the
    supervisor process as each job completes (in *completion* order) —
    the checkpoint journal's hook.  Raises
    :class:`~repro.errors.SupervisionError` when a job exhausts its
    retry budget.

    With ``workers <= 1``, a single job, or no ``fork`` support the
    jobs run serially in-process (no watchdog — there is no worker to
    reap), which is also the behaviour after the respawn budget is
    spent mid-run.
    """
    policy = policy or SupervisorPolicy()
    report = SupervisionReport(jobs=len(jobs))
    results: list = [None] * len(jobs)
    done = [False] * len(jobs)
    attempts = [0] * len(jobs)

    def run_serially(indexes) -> None:
        for index in indexes:
            try:
                results[index] = fn(jobs[index])
            except Exception as exc:
                raise SupervisionError(
                    f"job {index} failed in serial execution: "
                    f"{type(exc).__name__}: {exc}") from exc
            done[index] = True
            if on_result is not None:
                on_result(index, results[index])

    if workers <= 1 or len(jobs) <= 1 or not fork_available():
        run_serially(range(len(jobs)))
        return results, report

    ctx = get_context("fork")
    pending: deque[int] = deque(range(len(jobs)))
    pool: list[_Worker] = []
    remaining = len(jobs)

    def spawn_worker() -> _Worker:
        return _Worker(fn, ctx)

    def retire(worker: _Worker, *, terminate: bool) -> None:
        pool.remove(worker)
        worker.retire(terminate=terminate)

    def shutdown() -> None:
        for worker in list(pool):
            retire(worker, terminate=True)

    def count_failure(index: int, reason: str) -> None:
        """One failed attempt: re-queue or give up."""
        attempts[index] += 1
        report.retried_jobs[index] = \
            report.retried_jobs.get(index, 0) + 1
        if attempts[index] > policy.max_retries:
            shutdown()
            raise SupervisionError(
                f"job {index} failed after {attempts[index]} attempt(s): "
                f"{reason}")
        pending.append(index)

    def respawn_budget_ok() -> bool:
        report.worker_respawns += 1
        return report.worker_respawns <= policy.max_worker_respawns

    try:
        for _ in range(min(workers, len(jobs))):
            pool.append(spawn_worker())
        while remaining:
            if not pool:
                # Respawn budget spent: finish everything left serially.
                report.serial_fallback = True
                run_serially([i for i in range(len(jobs)) if not done[i]])
                return results, report
            # Hand out work to idle workers.
            for worker in list(pool):
                if worker.job is None and pending:
                    index = pending.popleft()
                    try:
                        worker.conn.send(
                            (index, attempts[index], jobs[index]))
                    except (BrokenPipeError, OSError):
                        # The idle worker died between jobs.
                        pending.appendleft(index)
                        retire(worker, terminate=True)
                        report.crashes += 1
                        if respawn_budget_ok():
                            pool.append(spawn_worker())
                        continue
                    worker.job = index
                    if policy.job_timeout is not None:
                        worker.deadline = (time.monotonic()
                                           + policy.job_timeout)
            busy = [w for w in pool if w.job is not None]
            if not busy:
                continue
            timeout = policy.poll_interval
            now = time.monotonic()
            for worker in busy:
                if worker.deadline is not None:
                    timeout = min(timeout, max(worker.deadline - now, 0.0))
            ready = _wait_connections([w.conn for w in busy],
                                      timeout=timeout)
            by_conn = {w.conn: w for w in busy}
            for conn in ready:
                worker = by_conn[conn]
                try:
                    kind, index, payload = conn.recv()
                except (EOFError, OSError):
                    # Worker died mid-job; its pipe reads EOF.
                    index = worker.job
                    exitcode = worker.process.exitcode
                    retire(worker, terminate=True)
                    report.crashes += 1
                    if respawn_budget_ok():
                        pool.append(spawn_worker())
                    count_failure(
                        index,
                        f"worker crashed (exitcode {exitcode})")
                    continue
                worker.job = None
                worker.deadline = None
                if kind == "done":
                    if not done[index]:
                        results[index] = payload
                        done[index] = True
                        remaining -= 1
                        report.pooled += 1
                        if on_result is not None:
                            on_result(index, payload)
                else:
                    report.job_errors += 1
                    count_failure(index, str(payload))
            # Reap workers stuck past their deadline.
            now = time.monotonic()
            for worker in list(pool):
                if worker.job is None or worker.deadline is None or \
                        now < worker.deadline:
                    continue
                index = worker.job
                retire(worker, terminate=True)
                report.timeouts += 1
                if respawn_budget_ok():
                    pool.append(spawn_worker())
                count_failure(
                    index,
                    f"timed out after {policy.job_timeout:.3g}s")
    finally:
        for worker in pool:
            if worker.job is None:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        shutdown()
    return results, report
