"""Supervised execution: policy, report, and the classic fork-pool entry.

``ProcessPoolExecutor`` treats one dead worker as fatal: the whole pool
raises ``BrokenProcessPool`` and every in-flight result is lost.  For a
sweep whose jobs are independent, deterministic simulations that is the
wrong failure mode — the lost job should simply run again.  The
supervision machinery that fixes this now lives in two layers under
:mod:`repro.exec.backends`:

- the **driver** (:func:`repro.exec.backends.base.run_jobs`) owns retry
  budgets, submission-order results, checkpoint hooks, and the serial
  fallback — once, for every backend;
- the **fork transport** (:class:`repro.exec.backends.fork.ForkBackend`)
  owns pipes, worker deadlines, EOF-as-crash, and the respawn budget.

:func:`run_supervised` is the stable entry point gluing the two
together for local fork pools, with the original semantics: results in
submission order bit-identical to a serial run, crashed/hung/raising
jobs re-queued under a bounded retry budget, and serial in-process
completion once the respawn budget is spent.  This module also keeps
the policy/report types and the chaos hook shared by every backend.

Chaos hook: when ``REPRO_TEST_KILL_JOB`` is set (e.g. ``"2:exit"``,
``"0:hang,3:raise"``), the *first* attempt of the named job indexes is
sabotaged inside the worker — ``exit`` calls ``os._exit``, ``hang``
sleeps until the timeout reaps it, ``raise`` throws.  Retries run
clean.  CI's chaos-smoke job drives the full recovery path with it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import SupervisionError
from repro.exec.duplex import fork_available

__all__ = [
    "CHAOS_EXIT_CODE",
    "SupervisionReport",
    "SupervisorPolicy",
    "fork_available",  # re-exported; the mechanism lives in exec.duplex
    "run_supervised",
]

#: Exit code used by the chaos hook's ``exit`` mode (recognisable in
#: supervisor error messages and CI logs).
CHAOS_EXIT_CODE = 17

_CHAOS_ENV = "REPRO_TEST_KILL_JOB"


@dataclass(frozen=True)
class SupervisorPolicy:
    """Retry/timeout/fallback budget for one supervised run.

    ``max_retries`` bounds *re-runs per job* (a job may execute at most
    ``1 + max_retries`` times); ``max_worker_respawns`` bounds forks
    spent replacing dead or timed-out workers across the whole run
    before the serial fallback engages (for the socket backend it
    bounds reconnect attempts the same way).  ``job_timeout`` is
    wall-clock seconds per attempt; ``None`` disables the watchdog.
    """

    job_timeout: float | None = None
    max_retries: int = 2
    max_worker_respawns: int = 8
    #: Supervisor poll period when no deadline is nearer (seconds).
    poll_interval: float = 0.2

    def __post_init__(self) -> None:
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise SupervisionError(
                f"job_timeout must be > 0 or None, got {self.job_timeout}")
        if self.max_retries < 0:
            raise SupervisionError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.max_worker_respawns < 0:
            raise SupervisionError(
                f"max_worker_respawns must be >= 0, "
                f"got {self.max_worker_respawns}")
        if self.poll_interval <= 0:
            raise SupervisionError(
                f"poll_interval must be > 0, got {self.poll_interval}")


@dataclass
class SupervisionReport:
    """What the supervisor had to do to finish the run."""

    jobs: int = 0
    #: Jobs that ran in a backend executor (the rest ran serially).
    pooled: int = 0
    crashes: int = 0
    timeouts: int = 0
    job_errors: int = 0
    worker_respawns: int = 0
    #: Duplicate ``done``/``failed`` deliveries dropped by the socket
    #: backend's per-cell dedup (chaos duplication, late speculative
    #: copies, resends across a reconnect).
    duplicate_results: int = 0
    #: Wire frames that failed their CRC32 (or carried an impossible
    #: length prefix) and were quarantined with their connection.
    quarantined_frames: int = 0
    #: Successful worker reconnects through the circuit breaker.
    reconnects: int = 0
    #: Worker addresses given up on after consecutive reconnect
    #: failures (circuit broken for the rest of the run).
    broken_circuits: int = 0
    serial_fallback: bool = False
    #: Which backend executed the run ("fork", "async", "socket", or
    #: "serial" when no backend was engaged at all).
    backend: str = "serial"
    #: job index -> number of extra attempts it needed.
    retried_jobs: dict[int, int] = field(default_factory=dict)

    @property
    def total_retries(self) -> int:
        return sum(self.retried_jobs.values())

    def summary(self) -> str:
        """One-line human rendering (the CLI prints it when nonzero)."""
        parts = [f"{self.jobs} job(s)"]
        if self.backend != "serial":
            parts.append(f"{self.backend} backend")
        if self.crashes:
            parts.append(f"{self.crashes} worker crash(es)")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeout(s)")
        if self.job_errors:
            parts.append(f"{self.job_errors} job error(s)")
        if self.total_retries:
            parts.append(f"{self.total_retries} retry(ies)")
        if self.worker_respawns:
            parts.append(f"{self.worker_respawns} respawn(s)")
        if self.duplicate_results:
            parts.append(
                f"{self.duplicate_results} duplicate result(s) dropped")
        if self.quarantined_frames:
            parts.append(
                f"{self.quarantined_frames} corrupt frame(s) quarantined")
        if self.reconnects:
            parts.append(f"{self.reconnects} reconnect(s)")
        if self.broken_circuits:
            parts.append(f"{self.broken_circuits} circuit(s) broken")
        if self.serial_fallback:
            parts.append("serial fallback engaged")
        return ", ".join(parts)


def _chaos_spec() -> dict[int, str]:
    """Parse ``REPRO_TEST_KILL_JOB`` into {job index: mode}."""
    raw = os.environ.get(_CHAOS_ENV, "").strip()
    spec: dict[int, str] = {}
    if not raw:
        return spec
    for part in raw.split(","):
        index, _, mode = part.strip().partition(":")
        try:
            spec[int(index)] = mode or "exit"
        except ValueError:
            continue  # malformed chaos spec entries are ignored
    return spec


def _maybe_sabotage(index: int, attempt: int) -> None:
    """Chaos hook, active only on a job's first attempt."""
    if attempt > 0:
        return
    mode = _chaos_spec().get(index)
    if mode is None:
        return
    if mode == "exit":
        os._exit(CHAOS_EXIT_CODE)
    elif mode == "hang":
        time.sleep(3600.0)
    elif mode == "raise":
        raise RuntimeError(f"chaos: injected failure for job {index}")


def run_supervised(
    jobs: Sequence,
    fn: Callable,
    *,
    workers: int,
    policy: SupervisorPolicy | None = None,
    on_result: Callable[[int, object], None] | None = None,
) -> tuple[list, SupervisionReport]:
    """Run ``fn(job)`` for every job under fork-pool supervision.

    Returns ``(results, report)`` with ``results[i] == fn(jobs[i])`` in
    submission order.  ``on_result(index, payload)`` fires in the
    supervisor process as each job completes (in *completion* order) —
    the checkpoint journal's hook.  Raises
    :class:`~repro.errors.SupervisionError` when a job exhausts its
    retry budget.

    With ``workers <= 1``, a single job, or no ``fork`` support the
    jobs run serially in-process (no watchdog — there is no worker to
    reap), which is also the behaviour after the respawn budget is
    spent mid-run.
    """
    from repro.exec.backends.base import run_jobs
    from repro.exec.backends.fork import ForkBackend

    policy = policy or SupervisorPolicy()
    report = SupervisionReport(jobs=len(jobs))

    if workers <= 1 or len(jobs) <= 1 or not fork_available():
        results: list = [None] * len(jobs)
        for index in range(len(jobs)):
            try:
                results[index] = fn(jobs[index])
            except Exception as exc:
                raise SupervisionError(
                    f"job {index} failed in serial execution: "
                    f"{type(exc).__name__}: {exc}") from exc
            if on_result is not None:
                on_result(index, results[index])
        return results, report

    report.backend = "fork"
    results = run_jobs(ForkBackend(workers), jobs, fn,
                       policy=policy, report=report,
                       on_result=on_result)
    return results, report
