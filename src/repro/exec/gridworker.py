"""``bps grid-worker``: one host's share of a distributed sweep.

The worker daemon is the remote half of the socket backend
(:mod:`repro.exec.backends.sockets`).  It listens on TCP, serves one
dispatcher connection at a time, and keeps the fork pool's crash
isolation on its own host: every grid cell runs in a **forked job
child** (the same :class:`~repro.exec.duplex.DuplexWorker` transport
the local pools use), so

- a cell that segfaults or ``os._exit``\\ s kills only the child; the
  daemon reports ``failed/crash`` to the dispatcher and forks a fresh
  child for the next cell;
- an ``abort`` frame (dispatcher-side timeout or straggler
  re-dispatch) terminates the child mid-cell and acknowledges;
- ``ping`` is answered immediately even while a cell is running,
  because the daemon's loop waits on the socket and the child pipe
  together — that is what makes dispatcher-side liveness meaningful.

The job function comes from the handshake's
:class:`~repro.exec.backends.task.GridTask` (an importable factory —
for sweeps, the spec builder re-run from the same inputs), so the
daemon needs nothing but the same repo checkout.  The child is forked
*after* the task resolves and inherits the resolved function; on
platforms without ``fork`` cells run inline in the daemon (no abort,
heartbeats only between cells).

Chaos hooks, both driven by CI: ``REPRO_TEST_KILL_JOB`` sabotages
named cell indexes inside the job child exactly as in the local fork
pool, and ``--exit-after-jobs N`` makes the whole daemon exit after
completing N cells — a deterministic "worker dies mid-sweep" for
re-queue/identity tests.
"""

from __future__ import annotations

import os
import socket
import sys
import time
from multiprocessing.connection import wait as _wait
from typing import Callable, IO

from repro.errors import GridError
from repro.exec.backends.task import GridTask
from repro.exec.backends.wire import (
    PROTOCOL_VERSION,
    parse_hostport,
    recv_frame,
    resolve_liveness,
    send_frame,
    tokens_match,
)
from repro.exec.duplex import DuplexWorker, fork_available

__all__ = ["serve_grid_worker"]

#: Exit code when --exit-after-jobs fires (recognisable in CI logs).
PLANNED_EXIT_CODE = 0


def _child_main(conn, fn: Callable) -> None:
    """Job-child loop: run cells until told to stop.

    The dispatcher's ``(index, attempt)`` is echoed back so late
    results of aborted attempts stay attributable.
    """
    from repro.exec.supervisor import _maybe_sabotage
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            conn.close()
            return
        index, attempt, job = message
        try:
            _maybe_sabotage(index, attempt)
            payload = fn(job)
        except BaseException as exc:  # noqa: BLE001 — isolate everything
            conn.send(("failed", index, attempt, "error",
                       f"{type(exc).__name__}: {exc}"))
        else:
            conn.send(("done", index, attempt, payload))


class _Session:
    """One dispatcher connection: handshake, then the job loop."""

    def __init__(self, sock: socket.socket, *, token: str | None,
                 exit_after_jobs: int, log: Callable[[str], None],
                 heartbeat: float | None = None,
                 liveness: float | None = None) -> None:
        self.sock = sock
        self.token = token
        self.exit_after_jobs = exit_after_jobs
        self.log = log
        self.heartbeat, self.liveness = resolve_liveness(
            heartbeat, liveness)
        self.child: DuplexWorker | None = None
        self.fn: Callable | None = None
        self.running: int | None = None  # index of the in-flight cell
        self.attempt = 0
        self.jobs_done = 0
        self.last_heard = time.monotonic()
        self.ping_sent: float | None = None

    # -- handshake ---------------------------------------------------------

    def handshake(self) -> bool:
        try:
            frame = recv_frame(self.sock)
        except (EOFError, OSError, GridError):
            return False
        if not (isinstance(frame, tuple) and len(frame) == 2
                and frame[0] == "hello" and isinstance(frame[1], dict)):
            self._reject("expected a hello frame")
            return False
        hello = frame[1]
        if hello.get("version") != PROTOCOL_VERSION:
            self._reject(f"protocol version {hello.get('version')!r} "
                         f"!= {PROTOCOL_VERSION}")
            return False
        if not tokens_match(self.token, hello.get("token")):
            self._reject("bad token")
            return False
        task = hello.get("task")
        if not isinstance(task, GridTask):
            self._reject("hello carries no GridTask")
            return False
        try:
            self.fn = task.resolve()
        except Exception as exc:
            self._reject(f"cannot resolve task {task}: "
                         f"{type(exc).__name__}: {exc}")
            return False
        send_frame(self.sock, ("welcome", {
            "pid": os.getpid(),
            "host": socket.gethostname(),
        }))
        self.log(f"dispatcher connected, task {task}")
        return True

    def _reject(self, reason: str) -> None:
        self.log(f"rejected dispatcher: {reason}")
        try:
            send_frame(self.sock, ("reject", reason))
        except OSError:
            pass

    # -- job loop ----------------------------------------------------------

    def run(self) -> bool:
        """Serve frames until the dispatcher leaves or goes half-open.

        Returns False when the daemon should exit (--exit-after-jobs).
        A dispatcher silent past ``heartbeat`` seconds is pinged; one
        still silent ``liveness`` seconds after the ping is presumed
        half-open (the TCP connection looks up but the peer is gone)
        and the session is dropped — the daemon survives and returns
        to the accept loop for the dispatcher's reconnect.
        """
        self.last_heard = time.monotonic()
        self.ping_sent = None
        try:
            while True:
                now = time.monotonic()
                if self.ping_sent is not None:
                    due = self.ping_sent + self.liveness - now
                else:
                    due = self.last_heard + self.heartbeat - now
                waitables = [self.sock]
                if self.child is not None and self.running is not None:
                    waitables.append(self.child.conn)
                ready = _wait(waitables, timeout=max(due, 0.0))
                if self.child is not None and self.child.conn in ready:
                    if not self._forward_child_result():
                        return False
                if self.sock in ready:
                    if not self._handle_frame():
                        return True
                elif not ready and not self._check_liveness():
                    return True
        finally:
            self._kill_child()

    def _check_liveness(self) -> bool:
        """Returns False when the session should be dropped."""
        now = time.monotonic()
        if self.ping_sent is not None:
            if now - self.ping_sent >= self.liveness:
                self.log(
                    f"dispatcher silent for "
                    f"{now - self.last_heard:.1f}s; dropping "
                    f"half-open session")
                return False
        elif now - self.last_heard >= self.heartbeat:
            try:
                send_frame(self.sock, ("ping",))
            except OSError:
                self.log("dispatcher unreachable; dropping session")
                return False
            self.ping_sent = now
        return True

    def _ensure_child(self) -> None:
        if self.child is None and fork_available():
            self.child = DuplexWorker(_child_main, (self.fn,))

    def _kill_child(self) -> None:
        if self.child is not None:
            self.child.retire(terminate=True)
            self.child = None

    def _forward_child_result(self) -> bool:
        try:
            result = self.child.recv()
        except (EOFError, OSError):
            # The cell took the child down: report, fork a fresh one.
            exitcode = self.child.exitcode
            self._kill_child()
            if self.running is not None:
                send_frame(self.sock, (
                    "failed", self.running, self.attempt, "crash",
                    f"job child crashed (exitcode {exitcode})"))
                self.running = None
            return True
        self.running = None
        send_frame(self.sock, result)
        if result[0] == "done":
            self.jobs_done += 1
            if self.exit_after_jobs and \
                    self.jobs_done >= self.exit_after_jobs:
                self.log(f"exiting after {self.jobs_done} job(s) "
                         f"(--exit-after-jobs)")
                return False
        return True

    def _handle_frame(self) -> bool:
        try:
            frame = recv_frame(self.sock)
        except (EOFError, OSError, GridError):
            self.log("dispatcher disconnected")
            return False
        self.last_heard = time.monotonic()
        self.ping_sent = None  # any frame proves the dispatcher lives
        kind = frame[0] if isinstance(frame, tuple) and frame else None
        if kind == "job":
            _, index, attempt, job = frame
            self.running, self.attempt = index, attempt
            self._ensure_child()
            if self.child is not None:
                self.child.send((index, attempt, job))
            else:
                self._run_inline(index, attempt, job)
            return True
        if kind == "ping":
            send_frame(self.sock, ("pong",))
            return True
        if kind == "pong":
            return True  # reply to our half-open probe
        if kind == "abort":
            index = frame[1]
            if self.running == index:
                # Kill the cell, not the daemon; next job forks fresh.
                self._kill_child()
                self.running = None
            send_frame(self.sock, ("aborted", index))
            return True
        if kind == "bye":
            self.log("dispatcher said bye")
            return False
        self.log(f"unknown frame {kind!r}; dropping dispatcher")
        return False

    def _run_inline(self, index: int, attempt: int, job) -> None:
        """No-fork fallback: the cell runs in the daemon itself."""
        from repro.exec.supervisor import _maybe_sabotage
        try:
            _maybe_sabotage(index, attempt)
            payload = self.fn(job)
        except Exception as exc:
            send_frame(self.sock, ("failed", index, attempt, "error",
                                   f"{type(exc).__name__}: {exc}"))
        else:
            send_frame(self.sock, ("done", index, attempt, payload))
            self.jobs_done += 1
        self.running = None


def serve_grid_worker(listen: str = "127.0.0.1:0", *,
                      token: str | None = None,
                      once: bool = False,
                      exit_after_jobs: int = 0,
                      heartbeat: float | None = None,
                      liveness: float | None = None,
                      out: IO[str] | None = None) -> int:
    """Run the worker daemon; blocks until told to exit.

    Prints ``grid-worker listening on HOST:PORT`` as its first line
    (port 0 binds an ephemeral port), so launchers can parse the
    address.  ``once`` exits after the first dispatcher session;
    ``exit_after_jobs`` exits mid-session after that many completed
    cells (chaos/rolling-restart testing).  ``heartbeat``/``liveness``
    are the worker-side half-open-session clocks, resolved with
    clamp-and-warn by :func:`~repro.exec.backends.wire.resolve_liveness`.
    """
    out = out if out is not None else sys.stdout
    host, port = parse_hostport(listen)
    # Resolve (and clamp-warn) once for the daemon, not per session.
    heartbeat, liveness = resolve_liveness(heartbeat, liveness)

    def log(message: str) -> None:
        print(f"grid-worker: {message}", file=out, flush=True)

    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        server.bind((host, port))
        server.listen(8)
        bound_host, bound_port = server.getsockname()[:2]
        print(f"grid-worker listening on {bound_host}:{bound_port}",
              file=out, flush=True)
        while True:
            sock, peer = server.accept()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            session = _Session(sock, token=token,
                               exit_after_jobs=exit_after_jobs, log=log,
                               heartbeat=heartbeat, liveness=liveness)
            try:
                if session.handshake():
                    if not session.run():
                        return PLANNED_EXIT_CODE
            except (BrokenPipeError, ConnectionResetError, OSError) as exc:
                log(f"session ended abruptly: {exc}")
            finally:
                sock.close()
            if once:
                return 0
    except KeyboardInterrupt:
        log("interrupted; exiting")
        return 0
    finally:
        server.close()
