"""Resilient execution layer: backends, supervision, checkpoints.

The measurement pipeline has to survive its own failures, not just the
simulated ones (DESIGN.md §10, §14).  This package provides the
pieces:

- :mod:`repro.exec.backends` — pluggable executor backends behind one
  submit/collect/cancel interface: the supervised fork pool, an
  in-process serial backend for smoke grids, and a multi-host socket
  dispatcher feeding ``bps grid-worker`` daemons;
- :mod:`repro.exec.supervisor` — the supervision policy/report types
  and :func:`~repro.exec.supervisor.run_supervised`, the classic
  fork-pool entry point (per-job timeouts, bounded retry, automatic
  serial fallback);
- :mod:`repro.exec.checkpoint` — a crash-safe JSONL journal of
  completed jobs, so interrupted sweeps resume instead of restarting
  (and never lose an acknowledged cell, SIGINT included);
- :mod:`repro.exec.gridworker` — the worker daemon behind
  ``bps grid-worker``.

:func:`repro.experiments.runner.run_sweep` wires everything into the
sweep grid; the primitives are workload-agnostic and usable on their
own.
"""

from __future__ import annotations

from repro.exec.backends import (
    AsyncBackend,
    ExecBackend,
    ForkBackend,
    GridTask,
    JobOutcome,
    SocketBackend,
    resolve_backend,
    run_jobs,
)
from repro.exec.checkpoint import CheckpointJournal
from repro.exec.gridworker import serve_grid_worker
from repro.exec.supervisor import (
    SupervisionReport,
    SupervisorPolicy,
    run_supervised,
)

__all__ = [
    "AsyncBackend",
    "CheckpointJournal",
    "ExecBackend",
    "ForkBackend",
    "GridTask",
    "JobOutcome",
    "SocketBackend",
    "SupervisionReport",
    "SupervisorPolicy",
    "resolve_backend",
    "run_jobs",
    "run_supervised",
    "serve_grid_worker",
]
