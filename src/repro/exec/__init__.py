"""Resilient execution layer: supervised pools and checkpoint journals.

The measurement pipeline has to survive its own failures, not just the
simulated ones (DESIGN.md §10).  This package provides the two halves:

- :mod:`repro.exec.supervisor` — a supervised fork-worker pool with
  per-job timeouts, bounded retry of crashed/failed jobs, and automatic
  serial fallback when workers keep dying;
- :mod:`repro.exec.checkpoint` — a crash-safe JSONL journal of
  completed jobs, so interrupted sweeps resume instead of restarting.

:func:`repro.experiments.runner.run_sweep` wires both into the sweep
grid; the primitives are workload-agnostic and usable on their own.
"""

from __future__ import annotations

from repro.exec.checkpoint import CheckpointJournal
from repro.exec.supervisor import (
    SupervisionReport,
    SupervisorPolicy,
    run_supervised,
)

__all__ = [
    "CheckpointJournal",
    "SupervisionReport",
    "SupervisorPolicy",
    "run_supervised",
]
