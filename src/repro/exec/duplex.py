"""Forked duplex-pipe workers — the transport both process pools share.

The supervised sweep pool (:mod:`repro.exec.supervisor`) and the sharded
streaming engine (:mod:`repro.live.shard`) hold their children the same
way: one forked process per worker, one dedicated duplex pipe, jobs and
results exchanged as pickled messages, EOF on the pipe as the crash
signal.  :class:`DuplexWorker` is that shared mechanism — fork, pipe
bookkeeping, and the terminate/join/kill retirement ladder — so each
pool only implements its own protocol on top.

Fork semantics matter here: the worker target and everything it closes
over are *inherited*, never pickled, so callers can hand closures over
live configuration (the supervisor's job function, a shard's stream
factory) straight to the child.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import get_context
from typing import Callable


def fork_available() -> bool:
    """Whether fork-based worker pools can run at all on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


class DuplexWorker:
    """One forked child process with a dedicated duplex pipe.

    The child runs ``target(child_conn, *args)``; the parent keeps the
    other pipe end as :attr:`conn`.  A child that exits for any reason
    (crash, ``os._exit``, OOM-kill) surfaces as EOF/``OSError`` on
    :meth:`recv` or ``BrokenPipeError`` on :meth:`send` — the caller's
    signal to retire and respawn.
    """

    __slots__ = ("process", "conn")

    def __init__(self, target: Callable, args: tuple = (), *,
                 ctx=None) -> None:
        ctx = ctx or get_context("fork")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(target=target,
                                   args=(child_conn, *args),
                                   daemon=True)
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    def send(self, message) -> None:
        self.conn.send(message)

    def recv(self):
        return self.conn.recv()

    def poll(self, timeout: float | None = None) -> bool:
        return self.conn.poll(timeout)

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def exitcode(self) -> int | None:
        return self.process.exitcode

    def retire(self, *, terminate: bool,
               join_timeout: float = 5.0) -> None:
        """Stop tracking the child: terminate/join/kill, close the pipe."""
        if terminate and self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=join_timeout)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join(timeout=join_timeout)
        self.conn.close()
