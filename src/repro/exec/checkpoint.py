"""Crash-safe JSONL checkpoint journal for long-running job grids.

A sweep that dies 80% through should not start over.  The journal is a
plain JSON-lines file with one entry per completed job:

- a ``header`` line carries a caller-supplied *tag* (the sweep's
  identity: knob, point count, repetitions, base seed) so a journal
  cannot silently resume a *different* sweep;
- each ``entry`` line is appended and flushed before the job is
  considered recorded — a *process* crash (the realistic sweep
  failure) can cost at most the in-flight job;
- ``fsync`` is group-committed: at most one per ``fsync_interval``
  seconds, plus always at finalize/close.  A kernel panic or power
  loss can therefore lose the last interval's entries — which is safe,
  because lost entries simply re-run on resume — while the journal
  stays off the sweep's critical path (per-entry fsync costs ~10 ms on
  cloud disks, several times a small job's own runtime).  Pass
  ``fsync_interval=0`` to force the classic fsync-per-entry discipline;
- SIGINT force-syncs the group commit: while a journal is open on the
  main thread it hooks SIGINT, fsyncs any pending entries *before* the
  ``KeyboardInterrupt`` propagates, and defers a signal that lands
  mid-append until that append's write+flush completed — so a sweep
  interrupted with Ctrl-C (even double-tapped during teardown, even
  powered off right after) never loses a cell it already acknowledged.
  The previous handler is chained afterwards and restored on close;
- a ``final`` line marks a run that completed; resuming a finalized
  journal is a pure replay (no jobs re-run);
- on load, a torn trailing line (the signature of a crash mid-append)
  is tolerated and dropped; corruption anywhere *else* raises
  :class:`~repro.errors.CheckpointError` — a mangled middle means
  something other than our own crash wrote the file.

Payloads are arbitrary JSON-able dicts.  For sweeps, the helpers
:func:`measurement_to_payload` / :func:`measurement_from_payload`
round-trip a :class:`~repro.core.analysis.RunMeasurement` exactly
(floats survive bit-for-bit through JSON's shortest-repr round trip),
so a resumed sweep's final analysis is identical to an uninterrupted
run's.  Traces are stored columnar (one list per field, via
:meth:`~repro.core.records.TraceCollection.to_columns`) — an order of
magnitude cheaper to serialise than per-record dicts.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from pathlib import Path
from typing import IO

from repro.core.analysis import RunMeasurement
from repro.core.records import TraceCollection
from repro.errors import AnalysisError, CheckpointError

_VERSION = 1

#: Default group-commit window for fsync (seconds).
DEFAULT_FSYNC_INTERVAL = 1.0


def _json_safe(value):
    """Coerce numpy scalars (sweep extras) into plain JSON types."""
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (AttributeError, ValueError):  # pragma: no cover
            pass
    raise TypeError(
        f"checkpoint payload not JSON-serialisable: {value!r}")


class CheckpointJournal:
    """Append-only journal of completed (key, payload) pairs."""

    def __init__(self, path: str | Path, *, tag: str = "",
                 resume: bool = True,
                 fsync_interval: float = DEFAULT_FSYNC_INTERVAL) -> None:
        if fsync_interval < 0:
            raise CheckpointError(
                f"fsync_interval must be >= 0, got {fsync_interval}")
        self.path = Path(path)
        self.tag = tag
        self.fsync_interval = fsync_interval
        self.finalized = False
        self._entries: dict[str, dict] = {}
        self._handle: IO[str] | None = None
        self._last_fsync = 0.0
        self._pending_sync = False
        self._in_append = False
        self._sync_requested = False
        self._prev_sigint = None
        self._sigint_hooked = False
        if resume and self.path.exists():
            self._load()
        else:
            self._start_fresh()
        self._hook_sigint()

    # -- load / create -----------------------------------------------------

    def _start_fresh(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w")
        self._append({"kind": "header", "version": _VERSION,
                      "tag": self.tag})

    def _load(self) -> None:
        with open(self.path) as handle:
            lines = handle.read().splitlines()
        parsed: list[dict] = []
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                parsed.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if number == len(lines):
                    break  # torn tail from a crash mid-append: drop it
                raise CheckpointError(
                    f"{self.path}:{number}: corrupt journal line: {exc}"
                ) from exc
        if not parsed or parsed[0].get("kind") != "header":
            raise CheckpointError(
                f"{self.path}: not a checkpoint journal (missing header)")
        header = parsed[0]
        if header.get("version") != _VERSION:
            raise CheckpointError(
                f"{self.path}: journal version "
                f"{header.get('version')!r} != {_VERSION}")
        if self.tag and header.get("tag") != self.tag:
            raise CheckpointError(
                f"{self.path}: journal was written for a different run "
                f"(tag {header.get('tag')!r}, expected {self.tag!r})")
        for record in parsed[1:]:
            kind = record.get("kind")
            if kind == "entry":
                self._entries[record["key"]] = record["payload"]
            elif kind == "final":
                self.finalized = True
        self._handle = open(self.path, "a")

    # -- SIGINT: force the group commit before interrupting ----------------

    def _hook_sigint(self) -> None:
        """Arm the Ctrl-C fsync hook (main thread only; best effort)."""
        if threading.current_thread() is not threading.main_thread():
            return
        try:
            self._prev_sigint = signal.getsignal(signal.SIGINT)
            signal.signal(signal.SIGINT, self._on_sigint)
            self._sigint_hooked = True
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            self._prev_sigint = None

    def _unhook_sigint(self) -> None:
        if not self._sigint_hooked:
            return
        self._sigint_hooked = False
        try:
            # Restore only if nobody re-hooked over us in the meantime.
            if signal.getsignal(signal.SIGINT) == self._on_sigint:
                signal.signal(signal.SIGINT,
                              self._prev_sigint or signal.default_int_handler)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            pass

    def _on_sigint(self, signum, frame) -> None:
        """Sync acknowledged entries, then let the interrupt proceed.

        A signal that lands *inside* an append cannot safely touch the
        file object (Python buffered IO is not reentrant); it sets a
        flag and the append's own ``finally`` performs the fsync while
        the ``KeyboardInterrupt`` unwinds through it.
        """
        if self._handle is not None:
            if self._in_append:
                self._sync_requested = True
            elif self._pending_sync:
                self._sync_now()
        prev = self._prev_sigint
        if callable(prev):
            prev(signum, frame)
        else:  # pragma: no cover - SIG_IGN/SIG_DFL previous handler
            raise KeyboardInterrupt

    def _sync_now(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._last_fsync = time.monotonic()
        self._pending_sync = False

    # -- write -------------------------------------------------------------

    def _append(self, record: dict, *, sync: bool = False) -> None:
        assert self._handle is not None
        self._in_append = True
        try:
            self._handle.write(
                json.dumps(record, default=_json_safe) + "\n")
            self._handle.flush()
            now = time.monotonic()
            if sync or self.fsync_interval == 0 or \
                    now - self._last_fsync >= self.fsync_interval:
                os.fsync(self._handle.fileno())
                self._last_fsync = now
                self._pending_sync = False
            else:
                self._pending_sync = True
        finally:
            self._in_append = False
            if self._sync_requested:
                # A SIGINT landed mid-append: honor it now that the
                # file object is consistent again.
                self._sync_requested = False
                if self._pending_sync:
                    self._sync_now()

    def record(self, key: str, payload: dict) -> None:
        """Append one completed job (flushed; fsync group-committed)."""
        if self.finalized:
            raise CheckpointError(
                f"{self.path}: record() on a finalized journal")
        self._entries[key] = payload
        self._append({"kind": "entry", "key": key, "payload": payload})

    def finalize(self) -> None:
        """Mark the run complete (idempotent, always fsync'd)."""
        if not self.finalized:
            self._append({"kind": "final",
                          "entries": len(self._entries)}, sync=True)
            self.finalized = True
        self.close()

    def close(self) -> None:
        self._unhook_sigint()
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    # -- read --------------------------------------------------------------

    def completed(self) -> dict[str, dict]:
        """Key → payload for every durably recorded job."""
        return dict(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


# -- RunMeasurement <-> JSON payload --------------------------------------

def measurement_to_payload(measurement: RunMeasurement) -> dict:
    """A JSON-able dict that round-trips the measurement exactly."""
    return {
        "label": measurement.label,
        "exec_time": measurement.exec_time,
        "fs_bytes": measurement.fs_bytes,
        "extras": dict(measurement.extras),
        "columns": measurement.trace.to_columns(),
    }


def measurement_from_payload(payload: dict) -> RunMeasurement:
    """Inverse of :func:`measurement_to_payload`."""
    try:
        trace = TraceCollection.from_arrays(**payload["columns"])
        return RunMeasurement(
            trace=trace,
            exec_time=payload["exec_time"],
            fs_bytes=payload["fs_bytes"],
            label=payload.get("label", ""),
            extras=dict(payload.get("extras", {})),
        )
    except (KeyError, TypeError, ValueError, AnalysisError) as exc:
        raise CheckpointError(
            f"malformed checkpoint payload: {exc}") from exc
