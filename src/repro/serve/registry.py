"""Tenant registry: creation, lookup, idle eviction, aggregation.

The registry is the daemon's single source of truth about who is
streaming.  It creates tenants on demand (bounded by ``max_tenants`` —
one more robustness envelope: a client fabricating fresh tenant names
cannot grow the heap without limit), evicts idle tenants with a final
snapshot flush, and renders the two aggregated read paths:

- the Prometheus exposition (one ``{tenant="..."}`` label per stream),
  produced by the *same* :func:`~repro.live.sinks.format_prometheus`
  the file sink uses, so file and HTTP scrapes are identical by
  construction;
- the JSON query API payloads (``/tenants``, ``/tenants/<name>``).

Terminal tenants (drained / quarantined / evicted) are kept for
inspection up to ``max_terminal`` and then dropped oldest-first, so a
daemon that has served a million short streams holds a bounded roster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.errors import ServeError
from repro.live.anomaly import BpsAnomalyDetector
from repro.live.sinks import (
    JsonlSink,
    atomic_write_text,
    format_prometheus,
)
from repro.serve.budget import TenantBudget
from repro.serve.protocol import MAX_HTTP_BODY_BYTES, validate_tenant_name
from repro.serve.tenant import ACTIVE, Tenant


@dataclass(frozen=True)
class ServeConfig:
    """Everything the daemon needs to build one tenant after another."""

    window: float = 1.0
    block_size: int = 512
    budget: TenantBudget = field(default_factory=TenantBudget)
    error_mode: str = "salvage"
    max_error_ratio: float = 0.25
    #: Per-record (0) or columnar batches of this many rows.
    chunk_size: int = 0
    #: Shard workers per tenant (< 2 = inline single stream).
    workers: int = 0
    #: Tenants idle longer than this are evicted (None = never).
    idle_timeout: float | None = 300.0
    #: Fleet bound on concurrently-known tenants.
    max_tenants: int = 1024
    #: Terminal tenants kept for inspection before being dropped.
    max_terminal: int = 1024
    #: Directory for per-tenant JSONL event sinks (None = no files).
    out_dir: str | None = None
    #: Aggregated Prometheus exposition file (None = HTTP scrape only).
    prom_out: str | None = None
    sink_errors: str = "disable"
    #: Anomaly detection per tenant (drop_factor <= 0 disables).
    drop_factor: float = 3.0
    baseline_history: int = 8
    #: Root-cause attribution: attach ranked suspects to every flagged
    #: window (needs the detector; incompatible with sharded tenants).
    attribute: bool = False
    #: Slow-consumer bound: seconds a client may stall an ack write.
    write_timeout: float = 10.0
    #: Cap on one HTTP ingest body (a corrupted or hostile
    #: Content-Length must not balloon the daemon).
    max_body_bytes: int = MAX_HTTP_BODY_BYTES

    def __post_init__(self) -> None:
        if not (self.window > 0):
            raise ServeError(f"window must be > 0, got {self.window}")
        if self.max_body_bytes < 1:
            raise ServeError(
                f"max_body_bytes must be >= 1, "
                f"got {self.max_body_bytes}")
        if self.max_tenants < 1:
            raise ServeError(
                f"max_tenants must be >= 1, got {self.max_tenants}")
        if self.idle_timeout is not None and not (self.idle_timeout > 0):
            raise ServeError(
                f"idle_timeout must be > 0, got {self.idle_timeout}")
        if self.attribute and self.workers >= 2:
            raise ServeError(
                "attribution needs each tenant's full record stream "
                "in one process; it is not supported with sharded "
                "tenants (workers >= 2)")
        if self.attribute and self.drop_factor <= 1.0:
            raise ServeError(
                "attribution needs the anomaly detector; it is "
                f"disabled at drop_factor={self.drop_factor}")


class TenantRegistry:
    """Create/lookup/evict tenants; render the aggregated views."""

    def __init__(self, config: ServeConfig, *,
                 clock: Callable[[], float] | None = None) -> None:
        if clock is None:
            import time
            clock = time.monotonic
        self.config = config
        self.clock = clock
        self.tenants: dict[str, Tenant] = {}
        #: Tenant names in terminal states, oldest first (drop order).
        self._terminal_order: list[str] = []
        self.tenants_created = 0
        self.tenants_evicted_idle = 0
        self.tenants_dropped = 0
        self.rejected_creates = 0
        if config.out_dir is not None:
            Path(config.out_dir).mkdir(parents=True, exist_ok=True)

    # -- creation / lookup -------------------------------------------------

    def get(self, name: str) -> Tenant | None:
        return self.tenants.get(name)

    def get_or_create(self, name: str) -> Tenant:
        """The named tenant, created on first sight.

        Raises :class:`~repro.errors.ServeError` for an invalid name or
        when the fleet bound is hit — the connection handler turns that
        into a protocol error for this client only.
        """
        tenant = self.tenants.get(name)
        if tenant is not None:
            return tenant
        validate_tenant_name(name)
        active = sum(1 for t in self.tenants.values()
                     if t.state == ACTIVE)
        if active >= self.config.max_tenants:
            self.rejected_creates += 1
            raise ServeError(
                f"tenant limit reached ({self.config.max_tenants} "
                f"active); refusing new tenant {name!r}")
        tenant = self._build(name)
        self.tenants[name] = tenant
        self.tenants_created += 1
        return tenant

    def _build(self, name: str) -> Tenant:
        config = self.config
        sinks = []
        if config.out_dir is not None:
            sinks.append(JsonlSink(
                Path(config.out_dir) / f"{name}.jsonl"))
        detector = None
        if config.drop_factor > 1.0:
            detector = BpsAnomalyDetector(
                drop_factor=config.drop_factor,
                history=config.baseline_history)
        return Tenant(
            name,
            window=config.window,
            block_size=config.block_size,
            budget=config.budget,
            error_mode=config.error_mode,
            max_error_ratio=config.max_error_ratio,
            detector=detector,
            attribute=config.attribute,
            sinks=sinks,
            sink_errors=config.sink_errors,
            chunk_size=config.chunk_size,
            workers=config.workers,
            clock=self.clock,
        )

    # -- lifecycle sweeps --------------------------------------------------

    def note_terminal(self, tenant: Tenant) -> None:
        """Record a terminal transition; drop the oldest past the cap."""
        if tenant.name in self._terminal_order:
            return
        self._terminal_order.append(tenant.name)
        while len(self._terminal_order) > self.config.max_terminal:
            oldest = self._terminal_order.pop(0)
            if self.tenants.pop(oldest, None) is not None:
                self.tenants_dropped += 1

    def evict_idle(self) -> list[Tenant]:
        """Finalize every tenant idle past the timeout; return them."""
        timeout = self.config.idle_timeout
        if timeout is None:
            return []
        evicted = []
        for tenant in list(self.tenants.values()):
            if tenant.state == ACTIVE and tenant.idle_seconds > timeout:
                tenant.end(f"idle for {tenant.idle_seconds:.1f}s "
                           f"(timeout {timeout:g}s)")
                self.note_terminal(tenant)
                self.tenants_evicted_idle += 1
                evicted.append(tenant)
        return evicted

    def drain_all(self, reason: str = "drain") -> list[Tenant]:
        """Finalize every active tenant (graceful-shutdown path)."""
        drained = []
        for tenant in list(self.tenants.values()):
            if tenant.state == ACTIVE:
                tenant.end(reason)
                drained.append(tenant)
            self.note_terminal(tenant)
        return drained

    # -- aggregated views --------------------------------------------------

    def prometheus_text(self, *, refresh: bool = True) -> str:
        """The fleet's scrape exposition, one tenant label per stream."""
        states = []
        for name in sorted(self.tenants):
            tenant = self.tenants[name]
            if refresh:
                tenant.refresh_snapshot()
            states.append(tenant.prom_state())
        return format_prometheus(states)

    def write_prom_file(self) -> None:
        """Rewrite the aggregated exposition file (fsync + rename)."""
        if self.config.prom_out is None:
            return
        atomic_write_text(Path(self.config.prom_out),
                          self.prometheus_text())

    def statuses(self) -> dict:
        """The ``/tenants`` JSON payload."""
        return {
            "tenants": [self.tenants[name].status()
                        for name in sorted(self.tenants)],
            "counters": {
                "tenants_created": self.tenants_created,
                "tenants_active": sum(
                    1 for t in self.tenants.values()
                    if t.state == ACTIVE),
                "tenants_evicted_idle": self.tenants_evicted_idle,
                "tenants_dropped": self.tenants_dropped,
                "rejected_creates": self.rejected_creates,
            },
        }
