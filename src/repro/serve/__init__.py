"""repro.serve — BPS as a service: the multi-tenant streaming daemon.

``bps serve`` turns the single-trace live engine (:mod:`repro.live`)
into an always-on, shared-infrastructure service: many concurrent
JSONL trace streams over TCP, unix socket, and HTTP, one independent
watermarked :class:`~repro.live.stream.MetricStream` +
:class:`~repro.live.anomaly.BpsAnomalyDetector` per tenant, one
aggregated Prometheus scrape plus a JSON query API.  Robustness is the
product: per-tenant budgets with a documented load-shedding ladder
(:mod:`repro.serve.budget`), crash/garbage isolation through the
existing :class:`~repro.trace_io.policy.ErrorPolicy` /
:class:`~repro.live.sinks.FailSafeSink` machinery
(:mod:`repro.serve.tenant`), idle eviction and bounded rosters
(:mod:`repro.serve.registry`), bounded write queues with slow-consumer
disconnects, and graceful SIGTERM drain (:mod:`repro.serve.server`).
"""

from repro.serve.budget import (
    SHED_LADDER,
    Admission,
    IngestMeter,
    TenantBudget,
    clamp_positive,
    resolve_serve_ingest,
)
from repro.serve.protocol import (
    control_line,
    decode_stream_line,
    record_line,
    validate_tenant_name,
)
from repro.serve.registry import ServeConfig, TenantRegistry
from repro.serve.server import BpsServer, run_server
from repro.serve.tenant import (
    ACTIVE,
    DRAINED,
    EVICTED,
    QUARANTINED,
    Outcome,
    Tenant,
)

__all__ = [
    "SHED_LADDER",
    "Admission",
    "IngestMeter",
    "TenantBudget",
    "clamp_positive",
    "resolve_serve_ingest",
    "control_line",
    "decode_stream_line",
    "record_line",
    "validate_tenant_name",
    "ServeConfig",
    "TenantRegistry",
    "BpsServer",
    "run_server",
    "ACTIVE",
    "DRAINED",
    "EVICTED",
    "QUARANTINED",
    "Outcome",
    "Tenant",
]
