"""Per-tenant ingest budgets and the load-shedding ladder.

One misbehaving tenant must never degrade the others.  The budget layer
is where that promise is enforced *before* a record reaches the metric
stream, as a documented ladder of degradation rungs — each rung trades
a little more of the offender's fidelity for the fleet's health, and
each rung's cost is accounted exactly (DESIGN.md §13):

========  ================  =========================================
rung      name              guarantee
========  ================  =========================================
0         ``exact``         within budget: totals and lateness exact
1         ``throttle``      token-bucket arrears pause the *reader*
                            (TCP backpressure); totals exact, the
                            client is slowed, delays are summed in
                            :attr:`IngestMeter.throttled_seconds`
2         ``force``         the reorder heap hits ``max_pending`` and
                            forces the watermark forward
                            (:class:`~repro.live.union.StreamingUnion`);
                            totals exact, *lateness* degraded — closed
                            windows may need corrections at finalize,
                            trips counted in ``forced_watermarks``
3         ``shed``          arrears beyond ``shed_factor`` bucket
                            depths: records are dropped before ingest
                            and counted (``records_shed`` /
                            ``bytes_shed``) — admitted totals stay
                            exact, shed mass is accounted, never
                            silently lost
4         ``evict``         more than ``evict_after_sheds`` shed
                            records: the tenant is finalized, flushed,
                            and refused — the daemon stays healthy
========  ================  =========================================

The meter is pure bookkeeping over an injectable clock, so every rung
transition is unit-testable without sockets or sleeps.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Callable

from repro.errors import ServeError

#: Ladder rungs in escalation order (rung index == position).
SHED_LADDER = ("exact", "throttle", "force", "shed", "evict")


@dataclass(frozen=True)
class TenantBudget:
    """Ingest limits for one tenant (None = unlimited on that axis)."""

    max_bytes_per_sec: float | None = None
    max_records_per_sec: float | None = None
    #: Reorder-heap bound handed to the tenant's MetricStream (rung 2).
    max_pending: int = 4096
    #: Token-bucket depth, in seconds of sustained budget.
    burst_seconds: float = 1.0
    #: Arrears beyond this many bucket depths shed instead of throttle.
    shed_factor: float = 4.0
    #: Shed records beyond this count evict the tenant (None = never).
    evict_after_sheds: int | None = None

    def __post_init__(self) -> None:
        for name in ("max_bytes_per_sec", "max_records_per_sec"):
            value = getattr(self, name)
            if value is not None and not (value > 0):
                raise ServeError(f"{name} must be > 0, got {value}")
        if self.max_pending < 1:
            raise ServeError(
                f"max_pending must be >= 1, got {self.max_pending}")
        if not (self.burst_seconds > 0):
            raise ServeError(
                f"burst_seconds must be > 0, got {self.burst_seconds}")
        if not (self.shed_factor >= 1):
            raise ServeError(
                f"shed_factor must be >= 1, got {self.shed_factor}")
        if self.evict_after_sheds is not None \
                and self.evict_after_sheds < 1:
            raise ServeError(
                f"evict_after_sheds must be >= 1, "
                f"got {self.evict_after_sheds}")

    @property
    def unlimited(self) -> bool:
        return (self.max_bytes_per_sec is None
                and self.max_records_per_sec is None)


@dataclass(frozen=True)
class Admission:
    """One :meth:`IngestMeter.admit` verdict."""

    #: ``admit`` | ``shed`` | ``evict``.
    action: str
    #: Seconds the reader should pause before the next read (rung 1).
    delay: float = 0.0
    #: The ladder rung that produced this verdict (index into
    #: :data:`SHED_LADDER`; rung 2 is reported by the stream itself).
    rung: int = 0

    @property
    def admitted(self) -> bool:
        return self.action == "admit"


class _TokenBucket:
    """Classic token bucket allowed to run into bounded arrears."""

    __slots__ = ("rate", "capacity", "level", "last")

    def __init__(self, rate: float, burst_seconds: float,
                 now: float) -> None:
        self.rate = rate
        self.capacity = rate * burst_seconds
        self.level = self.capacity
        self.last = now

    def refill(self, now: float) -> None:
        if now > self.last:
            self.level = min(self.capacity,
                             self.level + (now - self.last) * self.rate)
            self.last = now

    def arrears_depths(self, cost: float) -> float:
        """Bucket depths of arrears if ``cost`` were consumed now."""
        if cost <= self.level:
            return 0.0
        return (cost - self.level) / self.capacity

    def consume(self, cost: float) -> float:
        """Take ``cost`` tokens (may go negative); owed delay seconds."""
        self.level -= cost
        if self.level >= 0:
            return 0.0
        return -self.level / self.rate


class IngestMeter:
    """Budget accounting for one tenant; every verdict is exact.

    ``admit(nbytes)`` is called once per decoded record *before* the
    record reaches the metric stream.  The meter never sleeps and never
    raises mid-stream — it returns an :class:`Admission` and the caller
    (the connection handler) applies the delay or drops the record, so
    the accounting stays identical whether the transport is TCP, a unix
    socket, or an HTTP body.
    """

    def __init__(self, budget: TenantBudget, *,
                 clock: Callable[[], float]) -> None:
        self.budget = budget
        self.clock = clock
        now = clock()
        self._bytes = (_TokenBucket(budget.max_bytes_per_sec,
                                    budget.burst_seconds, now)
                       if budget.max_bytes_per_sec else None)
        self._records = (_TokenBucket(budget.max_records_per_sec,
                                      budget.burst_seconds, now)
                         if budget.max_records_per_sec else None)
        self.records_admitted = 0
        self.bytes_admitted = 0
        self.records_shed = 0
        self.bytes_shed = 0
        self.throttle_delays = 0
        self.throttled_seconds = 0.0
        self.evicted = False

    @property
    def rung(self) -> int:
        """The highest ladder rung this meter has reached so far."""
        if self.evicted:
            return 4
        if self.records_shed:
            return 3
        if self.throttle_delays:
            return 1
        return 0

    def admit(self, nbytes: int) -> Admission:
        """Judge one record of ``nbytes`` payload against the budget."""
        if self.evicted:
            return Admission(action="evict", rung=4)
        budget = self.budget
        if budget.unlimited:
            self.records_admitted += 1
            self.bytes_admitted += nbytes
            return Admission(action="admit")
        now = self.clock()
        arrears = 0.0
        for bucket, cost in ((self._bytes, float(nbytes)),
                             (self._records, 1.0)):
            if bucket is None:
                continue
            bucket.refill(now)
            arrears = max(arrears, bucket.arrears_depths(cost))
        if arrears > budget.shed_factor:
            # Rung 3: the flood outran throttling — drop with exact
            # accounting instead of queueing unbounded arrears.
            self.records_shed += 1
            self.bytes_shed += nbytes
            if budget.evict_after_sheds is not None and \
                    self.records_shed > budget.evict_after_sheds:
                self.evicted = True
                return Admission(action="evict", rung=4)
            return Admission(action="shed", rung=3)
        delay = 0.0
        for bucket, cost in ((self._bytes, float(nbytes)),
                             (self._records, 1.0)):
            if bucket is None:
                continue
            delay = max(delay, bucket.consume(cost))
        self.records_admitted += 1
        self.bytes_admitted += nbytes
        if delay > 0.0:
            self.throttle_delays += 1
            self.throttled_seconds += delay
            return Admission(action="admit", delay=delay, rung=1)
        return Admission(action="admit")

    def counters(self) -> dict:
        """The meter's exact accounting (JSON API / status payloads)."""
        return {
            "records_admitted": self.records_admitted,
            "bytes_admitted": self.bytes_admitted,
            "records_shed": self.records_shed,
            "bytes_shed": self.bytes_shed,
            "throttle_delays": self.throttle_delays,
            "throttled_seconds": self.throttled_seconds,
            "rung": self.rung,
            "rung_name": SHED_LADDER[self.rung],
        }


def clamp_positive(name: str, value, default: int, *,
                   minimum: int = 1) -> int:
    """Warn-and-clamp validation for serve tuning knobs.

    The serve path mirrors :func:`repro.experiments.runner.resolve_workers`
    for sweeps: a bad flag or environment value on a long-running daemon
    should degrade to a sane default with a warning, never crash the
    service.  Accepts anything int()-able; garbage falls back to
    ``default``, out-of-range clamps to ``minimum``.
    """
    try:
        parsed = int(value)
    except (TypeError, ValueError):
        warnings.warn(
            f"{name} must be an integer, got {value!r}; "
            f"using {default}", RuntimeWarning, stacklevel=2)
        return default
    if parsed < minimum:
        warnings.warn(
            f"{name} must be >= {minimum}, got {parsed}; "
            f"clamping to {minimum}", RuntimeWarning, stacklevel=2)
        return minimum
    return parsed


def resolve_serve_ingest(chunk_size, workers) -> tuple[int, int]:
    """Clamped (chunk_size, workers) for the serve ingest path.

    ``0`` is the documented "off" value for both knobs (per-record
    ingest, in-process stream), so the minimum is 0, not 1.  Flag
    values take precedence; ``REPRO_SERVE_CHUNK_SIZE`` /
    ``REPRO_SERVE_WORKERS`` fill in when a flag is None.  Every bad
    value warns and clamps — a fleet-wide env var typo must not take
    the daemon down.
    """
    if chunk_size is None:
        chunk_size = os.environ.get("REPRO_SERVE_CHUNK_SIZE", "0").strip() \
            or "0"
    if workers is None:
        workers = os.environ.get("REPRO_SERVE_WORKERS", "0").strip() or "0"
    chunk_size = clamp_positive("serve chunk size", chunk_size, 0,
                                minimum=0)
    workers = clamp_positive("serve workers", workers, 0, minimum=0)
    cores = os.cpu_count() or 1
    if workers > cores:
        warnings.warn(
            f"serve workers {workers} exceeds {cores} cpu core(s); "
            f"clamping to {cores}", RuntimeWarning, stacklevel=2)
        workers = cores
    if workers == 1:
        workers = 0
    if workers >= 2 and chunk_size == 0:
        # Sharding rides on chunked ingest, exactly like `bps watch`.
        chunk_size = 4096
    if chunk_size > 1 << 20:
        warnings.warn(
            f"serve chunk size {chunk_size} is unreasonable; "
            f"clamping to {1 << 20}", RuntimeWarning, stacklevel=2)
        chunk_size = 1 << 20
    return chunk_size, workers
