"""One tenant of the ``bps serve`` daemon: stream, budget, lifecycle.

A tenant is the unit of fault isolation.  It owns an independent
watermarked :class:`~repro.live.stream.MetricStream`, a
:class:`~repro.live.anomaly.BpsAnomalyDetector`, an
:class:`~repro.serve.budget.IngestMeter`, and its *own*
:class:`~repro.trace_io.policy.ErrorPolicy`-driven salvage session —
nothing is shared with other tenants, so nothing one tenant does
(flood, garbage, crash, stall) can reach another tenant's numbers.

Lifecycle::

    ACTIVE --(salvage budget exhausted / internal crash)--> QUARANTINED
    ACTIVE --(shed budget exhausted)---------------------->  EVICTED
    ACTIVE --(end control / idle timeout / drain)--------->  DRAINED

Every terminal transition finalizes the stream (when it holds records)
and flushes the tenant's sinks with a last ``final`` event, so a
tenant's exact totals survive its own demise.  All verdicts are
returned as plain :class:`Outcome` values — the tenant never sleeps,
never touches a socket, and never raises across the feed boundary,
which is what keeps a misbehaving connection from poisoning the event
loop.
"""

from __future__ import annotations

import math
import os
from collections import deque
from typing import Callable

from repro.errors import SalvageError, TraceFormatError
from repro.live.anomaly import BpsAnomalyDetector
from repro.live.chunk import RecordChunk
from repro.live.shard import ShardedMetricStream
from repro.live.stream import LiveResult, MetricStream
from repro.serve.budget import Admission, IngestMeter, TenantBudget
from repro.serve.protocol import decode_wire_line
from repro.trace_io.policy import ErrorPolicy, SalvageSession

ACTIVE = "active"
QUARANTINED = "quarantined"
EVICTED = "evicted"
DRAINED = "drained"


class Outcome:
    """One feed verdict handed back to the connection handler."""

    __slots__ = ("kind", "admission", "control", "reason")

    def __init__(self, kind: str, *, admission: Admission | None = None,
                 control: dict | None = None, reason: str = "") -> None:
        #: ``ok`` | ``duplicate`` | ``shed`` | ``evicted`` |
        #: ``bad-line`` | ``quarantined`` | ``control`` | ``closed``.
        self.kind = kind
        self.admission = admission
        self.control = control
        self.reason = reason

    @property
    def delay(self) -> float:
        return self.admission.delay if self.admission else 0.0


class _SeqTracker:
    """Exactly-once admission for client-numbered records.

    Tracks the dense prefix as a single integer (``next_seq``: the
    first sequence number not yet admitted) plus a sparse set of
    numbers admitted ahead of it, so memory stays bounded by the
    reorder window, not the stream length.  ``admit`` returns False
    for anything seen before — duplicated frames, resent prefixes
    after a reconnect — and advances the prefix over any contiguous
    ahead-entries it unlocks.
    """

    __slots__ = ("next_seq", "_ahead")

    def __init__(self) -> None:
        self.next_seq = 0
        self._ahead: set[int] = set()

    def admit(self, seq: int) -> bool:
        if seq < self.next_seq or seq in self._ahead:
            return False
        if seq != self.next_seq:
            self._ahead.add(seq)
            return True
        self.next_seq += 1
        while self.next_seq in self._ahead:
            self._ahead.remove(self.next_seq)
            self.next_seq += 1
        return True


#: Anomaly events kept per tenant for the ``/anomalies`` query (a
#: bounded ring — a pathological stream must not grow the heap).
MAX_KEPT_ANOMALIES = 256


class _PromCapture:
    """In-memory sink capturing the scrape-endpoint state per tenant."""

    def __init__(self) -> None:
        self.latest: dict = {}
        self.latest_window: dict = {}
        self.anomaly_count = 0
        self.last_severity: float | None = None
        self.anomalies: deque = deque(maxlen=MAX_KEPT_ANOMALIES)

    def emit(self, event: dict) -> None:
        kind = event.get("type")
        if kind == "anomaly":
            self.anomaly_count += 1
            if event.get("stalled"):
                self.last_severity = math.inf
            elif event.get("severity") is not None:
                self.last_severity = float(event["severity"])
            self.anomalies.append(dict(event))
        elif kind == "window":
            self.latest_window = event
        elif kind in ("snapshot", "final"):
            self.latest = event


class Tenant:
    """One isolated stream with budgets, salvage, and a lifecycle."""

    def __init__(
        self,
        name: str,
        *,
        window: float,
        block_size: int = 512,
        origin: float | None = None,
        budget: TenantBudget | None = None,
        error_mode: str = "salvage",
        max_error_ratio: float = 0.25,
        detector: BpsAnomalyDetector | None = None,
        attribute: bool = False,
        sinks=(),
        sink_errors: str | None = "disable",
        chunk_size: int = 0,
        workers: int = 0,
        clock: Callable[[], float] = None,
    ) -> None:
        if clock is None:
            import time
            clock = time.monotonic
        self.name = name
        self.clock = clock
        self.state = ACTIVE
        self.state_reason = ""
        self.created_at = clock()
        self.last_activity = self.created_at
        self.budget = budget or TenantBudget()
        self.meter = IngestMeter(self.budget, clock=clock)
        self.prom = _PromCapture()
        #: Proof-of-continuity for session resume: a reconnecting
        #: client must echo this to reattach (guards against a stray
        #: client accidentally writing into someone else's stream).
        self.resume_token = os.urandom(8).hex()
        self.resumed_sessions = 0
        #: Records actually folded into the stream (duplicates and
        #: shed records excluded) — what acks report as ``records``.
        self.records_admitted = 0
        #: Seq-numbered lines dropped because their number was already
        #: admitted (chaos duplication, reconnect replays).
        self.duplicate_records = 0
        self._seq = _SeqTracker()
        self._session = SalvageSession(
            ErrorPolicy(error_mode, max_error_ratio=max_error_ratio),
            f"tenant:{name}")
        self._line_number = 0
        if workers >= 2 and chunk_size <= 0:
            # The sharded engine is chunk-only; never silently drop to
            # the (nonexistent) per-record path.
            chunk_size = 4096
        self.chunk_size = chunk_size
        self.workers = workers
        self._chunk_buffer: list = []
        self._max_duration = 0.0
        self._last_end = float("-inf")
        attributor = None
        if attribute and detector is not None and workers < 2:
            from repro.diagnose.attribute import Attributor

            attributor = Attributor.for_detector(
                detector, window=window, origin=origin)
        if workers >= 2:
            self.stream = ShardedMetricStream(
                window=window, shards=workers, block_size=block_size,
                origin=origin, max_pending=self.budget.max_pending,
                late_policy="merge", sinks=[self.prom, *sinks],
                sink_errors=sink_errors, detector=detector)
        else:
            self.stream = MetricStream(
                window=window, block_size=block_size, origin=origin,
                max_pending=self.budget.max_pending, late_policy="merge",
                sinks=[self.prom, *sinks], sink_errors=sink_errors,
                detector=detector, attributor=attributor)
        self.result: LiveResult | None = None
        self.crash_error: str = ""

    # -- feed --------------------------------------------------------------

    def touch(self) -> None:
        self.last_activity = self.clock()

    @property
    def idle_seconds(self) -> float:
        return self.clock() - self.last_activity

    def feed_line(self, line: str) -> Outcome | None:
        """Fold one wire line in; returns the verdict (None = blank).

        Never raises: decode failures go through the tenant's salvage
        budget, unexpected internal failures quarantine the tenant —
        in both cases the verdict says so and the caller closes or
        keeps the connection, but the daemon and every other tenant
        keep running.
        """
        if self.state != ACTIVE:
            return Outcome("closed", reason=self.state_reason
                           or self.state)
        self.touch()
        self._line_number += 1
        try:
            decoded = decode_wire_line(line)
        except TraceFormatError as exc:
            return self._bad_line(str(exc), line)
        if decoded is None:
            return None
        kind, payload, seq = decoded
        if kind == "control":
            return Outcome("control", control=payload)
        return self.feed_record(payload, seq=seq)

    @property
    def next_seq(self) -> int:
        """First sequence number not yet admitted (resume point)."""
        return self._seq.next_seq

    def feed_record(self, record, *, seq: int | None = None) -> Outcome:
        """Budget-check and ingest one already-decoded record.

        ``seq`` engages exactly-once admission: a sequence number seen
        before is dropped (kind ``"duplicate"``) *before* it touches
        the budget meter or the stream, so replays cost nothing and
        count nothing.
        """
        if self.state != ACTIVE:
            return Outcome("closed", reason=self.state_reason
                           or self.state)
        if seq is not None and not self._seq.admit(seq):
            self.duplicate_records += 1
            return Outcome("duplicate")
        admission = self.meter.admit(record.nbytes)
        if admission.action == "shed":
            return Outcome("shed", admission=admission)
        if admission.action == "evict":
            self._terminate(EVICTED,
                            f"shed budget exhausted "
                            f"({self.meter.records_shed} records shed)")
            return Outcome("evicted", admission=admission,
                           reason=self.state_reason)
        try:
            self._ingest(record)
        except Exception as exc:  # noqa: BLE001 — crash isolation
            return self._crashed(exc)
        self._session.kept()
        self.records_admitted += 1
        return Outcome("ok", admission=admission)

    def _ingest(self, record) -> None:
        if record.duration > self._max_duration:
            self._max_duration = record.duration
        if record.end > self._last_end:
            self._last_end = record.end
        if self.chunk_size > 0:
            self._chunk_buffer.append(record)
            if len(self._chunk_buffer) >= self.chunk_size:
                self.flush_chunks()
            return
        self.stream.ingest(record)
        self.stream.advance_watermark(
            self._last_end - self._max_duration)

    def flush_chunks(self) -> None:
        """Push any buffered records through the vectorised path."""
        if not self._chunk_buffer:
            return
        chunk = RecordChunk.from_records(self._chunk_buffer)
        self._chunk_buffer = []
        self.stream.push_chunk(chunk)
        self.stream.advance_watermark(
            self._last_end - self._max_duration)

    def _bad_line(self, reason: str, text: str) -> Outcome:
        try:
            self._session.bad(self._line_number, reason, text)
        except SalvageError as exc:
            self._terminate(QUARANTINED, str(exc))
            return Outcome("quarantined", reason=str(exc))
        except TraceFormatError as exc:
            # Strict mode: the first malformed line quarantines.
            self._terminate(QUARANTINED, str(exc))
            return Outcome("quarantined", reason=str(exc))
        return Outcome("bad-line", reason=reason)

    def _crashed(self, exc: Exception) -> Outcome:
        self.crash_error = f"{type(exc).__name__}: {exc}"
        self._terminate(QUARANTINED,
                        f"internal failure: {self.crash_error}")
        return Outcome("quarantined", reason=self.state_reason)

    # -- lifecycle ---------------------------------------------------------

    def end(self, reason: str = "end of stream") -> LiveResult | None:
        """Client-requested or drain-time finalize (state DRAINED)."""
        self._terminate(DRAINED, reason)
        return self.result

    def _terminate(self, state: str, reason: str) -> None:
        """Settle the stream, flush sinks, park in a terminal state."""
        if self.state != ACTIVE:
            return
        self.state = state
        self.state_reason = reason
        try:
            self.flush_chunks()
            if self.stream.ops > 0:
                self.result = self.stream.finalize(
                    label=f"serve:{self.name}")
            else:
                # Nothing ingested: still close the sinks so files
                # exist and FailSafe counters settle.
                for sink in self.stream.sinks:
                    close = getattr(sink, "close", None)
                    if close is not None:
                        close()
        except Exception as exc:  # noqa: BLE001 — never cross the wall
            self.crash_error = self.crash_error or \
                f"{type(exc).__name__}: {exc}"
            self.result = None
            close = getattr(self.stream, "close", None)
            if close is not None:  # kill any shard workers left behind
                try:
                    close()
                except Exception:
                    pass

    # -- queries -----------------------------------------------------------

    @property
    def quarantine_report(self):
        return self._session.report

    def refresh_snapshot(self) -> None:
        """Fold buffered chunks in and refresh the scrape-state gauges."""
        if self.state == ACTIVE and self.stream.ops == 0 \
                and not self._chunk_buffer:
            return
        if self.state == ACTIVE:
            try:
                self.flush_chunks()
                self.prom.emit(self.stream.snapshot().as_event())
            except Exception as exc:  # noqa: BLE001
                self._crashed(exc)

    def prom_state(self) -> tuple:
        """This tenant's :func:`~repro.live.sinks.format_prometheus` row."""
        return ({"tenant": self.name}, self.prom.latest,
                self.prom.latest_window, self.prom.anomaly_count,
                self.prom.last_severity)

    def anomaly_events(self) -> dict:
        """The ``/tenants/<name>/anomalies`` JSON payload."""
        return {
            "tenant": self.name,
            "anomaly_count": self.prom.anomaly_count,
            "kept": len(self.prom.anomalies),
            "anomalies": list(self.prom.anomalies),
        }

    def status(self) -> dict:
        """The JSON-API view of this tenant (exact counters only)."""
        report = self._session.report
        payload = {
            "tenant": self.name,
            "state": self.state,
            "state_reason": self.state_reason,
            "records": self.stream.ops + len(self._chunk_buffer),
            "records_admitted": self.records_admitted,
            "duplicate_records": self.duplicate_records,
            "resumed_sessions": self.resumed_sessions,
            "next_seq": self.next_seq,
            "bytes": self.stream.nbytes,
            "late_records": self.stream.late_records,
            "forced_watermarks": self.stream.forced_watermarks,
            "max_pending": self.stream.max_pending,
            "pending_records": self.stream.pending_records,
            "quarantined_lines": report.skipped,
            "error_ratio": report.error_ratio,
            "idle_seconds": self.idle_seconds,
            "budget": self.meter.counters(),
        }
        if self.crash_error:
            payload["crash_error"] = self.crash_error
        if self.result is not None:
            m = self.result.metrics
            payload["final"] = {
                "bps": m.bps, "iops": m.iops,
                "bandwidth": m.bandwidth, "arpt": m.arpt,
                "union_io_time": m.union_io_time,
                "exec_time": m.exec_time,
                "ops": m.app_ops, "blocks": m.app_blocks,
                "bytes": m.app_bytes,
                "windows": len(self.result.windows),
                "anomalies": len(self.result.anomalies),
            }
        return payload
