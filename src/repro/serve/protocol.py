"""Wire protocol of the ``bps serve`` daemon.

Socket streams (TCP and unix) speak **JSONL**: each line is either an
I/O record — decoded by the *same* :func:`~repro.trace_io.decode_jsonl_line`
path the file readers use, so a line means exactly the same thing on
disk and on the wire — or a **control** object distinguished by a
``type`` key:

- ``{"type": "hello", "tenant": "jobA"}`` — optional first line
  binding the connection to a named tenant (reconnects resume the same
  stream); without it the connection gets a fresh ``conn-<n>`` tenant;
- ``{"type": "end"}`` — finalize the tenant now; the server answers
  with one ``{"type": "result", ...}`` line carrying the settled
  cumulative metrics.

Server-to-client lines are JSON objects too (``ack`` / ``result`` /
``error``), so both directions stay line-structured and tail-able.

HTTP ingest reuses the same line decode over the request body.  The
HTTP layer itself is a deliberately minimal hand-rolled parser (no
external dependencies in this toolkit): request line + headers +
``Content-Length`` body, one request per connection.  That is enough
for ``curl`` and any Prometheus scraper.
"""

from __future__ import annotations

import asyncio
import json
import re

from repro.core.records import IORecord
from repro.errors import ServeError, TraceFormatError
from repro.trace_io.jsonltrace import record_from_object

#: Control line types a client may send.
CONTROL_TYPES = ("hello", "end")

#: Tenant names: printable, bounded, path/label-safe (they become file
#: stems and Prometheus label values).
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.:-]{0,63}$")

#: Hard per-line bound — a single unbounded line must not balloon the
#: reader buffer of one connection past the fleet's budget.
MAX_LINE_BYTES = 1 << 20


def validate_tenant_name(name) -> str:
    """A safe tenant name, or :class:`~repro.errors.ServeError`."""
    if not isinstance(name, str) or not _TENANT_RE.match(name):
        raise ServeError(
            f"invalid tenant name {name!r} (want 1-64 chars of "
            f"[A-Za-z0-9_.:-], starting alphanumeric)")
    return name


def decode_stream_line(line: str):
    """Decode one socket line: ``(kind, payload)`` or None.

    - ``("record", IORecord)`` for a trace record;
    - ``("control", dict)`` for a hello/end control object;
    - ``None`` for blanks and ``#`` comments.

    Malformed input raises :class:`~repro.errors.TraceFormatError`
    with the reason only — the tenant's salvage session owns location
    context, exactly like the file readers.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    try:
        obj = json.loads(stripped)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"invalid JSON: {exc}") from exc
    if isinstance(obj, dict) and obj.get("type") in CONTROL_TYPES:
        return ("control", obj)
    return ("record", record_from_object(obj))


def control_line(kind: str, **fields) -> bytes:
    """One server-to-client control line, newline-terminated."""
    return (json.dumps({"type": kind, **fields}, sort_keys=True)
            + "\n").encode()


def record_line(record: IORecord) -> bytes:
    """One record as a wire line (load generators / tests)."""
    return (json.dumps({
        "pid": record.pid, "op": record.op, "nbytes": record.nbytes,
        "start": record.start, "end": record.end,
        "success": record.success, "retries": record.retries,
    }) + "\n").encode()


# -- minimal HTTP ---------------------------------------------------------

#: Bound on header block size and body size accepted by the daemon.
MAX_HTTP_HEADER_BYTES = 16 << 10
MAX_HTTP_BODY_BYTES = 64 << 20

_STATUS_TEXT = {
    200: "OK", 204: "No Content", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 410: "Gone", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ServeError):
    """A malformed or oversized HTTP request (maps to a 4xx)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class HttpRequest:
    """One parsed request: method, path, headers (lower-cased), body."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str, headers: dict,
                 body: bytes) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body


async def read_http_request(reader: asyncio.StreamReader,
                            ) -> HttpRequest | None:
    """Parse one HTTP/1.x request; None on a clean EOF before any data."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated HTTP request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "HTTP header block too large") from exc
    if len(head) > MAX_HTTP_HEADER_BYTES:
        raise HttpError(413, "HTTP header block too large")
    try:
        text = head.decode("latin-1")
        request_line, *header_lines = text.split("\r\n")
        method, path, _version = request_line.split(" ", 2)
    except ValueError as exc:
        raise HttpError(400, "malformed HTTP request line") from exc
    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed HTTP header {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError as exc:
            raise HttpError(400, "bad Content-Length") from exc
        if n < 0 or n > MAX_HTTP_BODY_BYTES:
            raise HttpError(413, f"body of {n} bytes exceeds limit")
        body = await reader.readexactly(n)
    return HttpRequest(method.upper(), path, headers, body)


def http_response(status: int, body: str | bytes = b"", *,
                  content_type: str = "application/json") -> bytes:
    """A complete one-shot HTTP/1.1 response (connection: close)."""
    if isinstance(body, str):
        body = body.encode()
    reason = _STATUS_TEXT.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + body


def json_response(status: int, payload: dict) -> bytes:
    """A JSON-bodied :func:`http_response`."""
    return http_response(
        status, json.dumps(payload, sort_keys=True) + "\n")
