"""Wire protocol of the ``bps serve`` daemon.

Socket streams (TCP and unix) speak **JSONL**: each line is either an
I/O record — decoded by the *same* :func:`~repro.trace_io.decode_jsonl_line`
path the file readers use, so a line means exactly the same thing on
disk and on the wire — or a **control** object distinguished by a
``type`` key:

- ``{"type": "hello", "tenant": "jobA"}`` — optional first line
  binding the connection to a named tenant (reconnects resume the same
  stream); without it the connection gets a fresh ``conn-<n>`` tenant.
  A hello may carry ``"resume": "<token>"`` — the resume token from a
  previous welcome — to prove it continues that tenant's stream;
- ``{"type": "end"}`` — finalize the tenant now; the server answers
  with one ``{"type": "result", ...}`` line carrying the settled
  cumulative metrics;
- ``{"type": "sync"}`` — ask for an immediate ack (instead of waiting
  for the every-1024 cadence); resume-capable clients use it to learn
  ``records``/``next_seq`` before deciding what to resend.

Two optional keys harden any line against a hostile network:

- ``"crc"`` — the CRC32 (:func:`line_checksum`) of the object with the
  ``crc`` key removed, computed over its canonical JSON form
  (``sort_keys=True``, compact separators).  A line whose checksum
  does not match is malformed — it goes through the tenant's salvage
  quarantine exactly like unparseable JSON, and is never interpreted;
- ``"seq"`` — a client-assigned record sequence number (0, 1, 2, ...).
  The tenant admits each sequence number exactly once, so duplicated
  or resent lines (chaos, reconnect replays) can never double-count,
  and acks report ``next_seq`` — the first sequence number not yet
  admitted — so a resuming client knows exactly where to rewind to.

Server-to-client lines are JSON objects too (``ack`` / ``welcome`` /
``result`` / ``error``), so both directions stay line-structured and
tail-able.

HTTP ingest reuses the same line decode over the request body.  The
HTTP layer itself is a deliberately minimal hand-rolled parser (no
external dependencies in this toolkit): request line + headers +
``Content-Length`` body, one request per connection.  That is enough
for ``curl`` and any Prometheus scraper.
"""

from __future__ import annotations

import asyncio
import json
import re
import zlib

from repro.core.records import IORecord
from repro.errors import ServeError, TraceFormatError
from repro.trace_io.jsonltrace import record_from_object

#: Control line types a client may send.
CONTROL_TYPES = ("hello", "end", "sync")

#: Tenant names: printable, bounded, path/label-safe (they become file
#: stems and Prometheus label values).
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.:-]{0,63}$")

#: Hard per-line bound — a single unbounded line must not balloon the
#: reader buffer of one connection past the fleet's budget.
MAX_LINE_BYTES = 1 << 20


def validate_tenant_name(name) -> str:
    """A safe tenant name, or :class:`~repro.errors.ServeError`."""
    if not isinstance(name, str) or not _TENANT_RE.match(name):
        raise ServeError(
            f"invalid tenant name {name!r} (want 1-64 chars of "
            f"[A-Za-z0-9_.:-], starting alphanumeric)")
    return name


def line_checksum(obj: dict) -> int:
    """CRC32 of a line object's canonical JSON form (sans ``crc``)."""
    return zlib.crc32(json.dumps(
        obj, sort_keys=True, separators=(",", ":")).encode())


def verify_checksum(obj: dict) -> dict:
    """Strip and verify an optional ``crc`` key; returns the object.

    Both directions use this: the server on ingest lines (via
    :func:`decode_wire_line`), and resume-capable clients on the
    server's control lines — a welcome or ack corrupted in transit
    must never be *believed* (a flipped ``next_seq`` digit would make
    a client skip records), so a mismatch raises
    :class:`~repro.errors.TraceFormatError`.
    """
    if "crc" not in obj:
        return obj
    claimed = obj.pop("crc")
    actual = line_checksum(obj)
    if claimed != actual:
        raise TraceFormatError(
            f"line checksum mismatch (claimed {claimed!r}, "
            f"computed {actual}): corrupted in transit")
    return obj


def decode_wire_line(line: str):
    """Decode one socket line: ``(kind, payload, seq)`` or None.

    - ``("record", IORecord, seq)`` for a trace record (``seq`` is the
      client's sequence number, or None when the line carries none);
    - ``("control", dict, None)`` for a hello/end/sync control object;
    - ``None`` for blanks and ``#`` comments.

    An optional ``crc`` key is verified (and stripped) *before* the
    line is interpreted.  Malformed input — bad JSON, a checksum
    mismatch, a non-integer ``seq`` — raises
    :class:`~repro.errors.TraceFormatError` with the reason only; the
    tenant's salvage session owns location context, exactly like the
    file readers.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    try:
        obj = json.loads(stripped)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"invalid JSON: {exc}") from exc
    if isinstance(obj, dict):
        obj = verify_checksum(obj)
        if obj.get("type") in CONTROL_TYPES:
            return ("control", obj, None)
    seq = obj.get("seq") if isinstance(obj, dict) else None
    if seq is not None:
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            raise TraceFormatError(
                f"seq must be a non-negative integer, got {seq!r}")
    return ("record", record_from_object(obj), seq)


def decode_stream_line(line: str):
    """:func:`decode_wire_line` without the seq (compat two-tuple)."""
    decoded = decode_wire_line(line)
    if decoded is None:
        return None
    kind, payload, _seq = decoded
    return (kind, payload)


def control_line(kind: str, *, checksum: bool = False,
                 **fields) -> bytes:
    """One server-to-client control line, newline-terminated.

    ``checksum=True`` appends the ``crc`` integrity key (the daemon
    sends every line checksummed so clients can reject corruption).
    """
    obj = {"type": kind, **fields}
    if checksum:
        obj["crc"] = line_checksum(obj)
    return (json.dumps(obj, sort_keys=True) + "\n").encode()


def record_line(record: IORecord, *, seq: int | None = None,
                checksum: bool = False) -> bytes:
    """One record as a wire line (load generators / tests).

    ``seq`` numbers the record for exactly-once admission;
    ``checksum`` appends the ``crc`` integrity key.
    """
    obj = {
        "pid": record.pid, "op": record.op, "nbytes": record.nbytes,
        "start": record.start, "end": record.end,
        "success": record.success, "retries": record.retries,
    }
    if seq is not None:
        obj["seq"] = seq
    if checksum:
        obj["crc"] = line_checksum(obj)
    return (json.dumps(obj) + "\n").encode()


# -- minimal HTTP ---------------------------------------------------------

#: Bound on header block size and body size accepted by the daemon.
MAX_HTTP_HEADER_BYTES = 16 << 10
MAX_HTTP_BODY_BYTES = 64 << 20

_STATUS_TEXT = {
    200: "OK", 204: "No Content", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 410: "Gone", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ServeError):
    """A malformed or oversized HTTP request (maps to a 4xx)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class HttpRequest:
    """One parsed request: method, path, headers (lower-cased), body."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str, headers: dict,
                 body: bytes) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body


async def read_http_request(reader: asyncio.StreamReader, *,
                            max_body_bytes: int = MAX_HTTP_BODY_BYTES,
                            ) -> HttpRequest | None:
    """Parse one HTTP/1.x request; None on a clean EOF before any data.

    ``max_body_bytes`` caps the declared ``Content-Length`` — the
    check happens before any body byte is read, so an oversized (or
    corrupted) length can cost at most a 413, never an unbounded
    buffer.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated HTTP request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "HTTP header block too large") from exc
    if len(head) > MAX_HTTP_HEADER_BYTES:
        raise HttpError(413, "HTTP header block too large")
    try:
        text = head.decode("latin-1")
        request_line, *header_lines = text.split("\r\n")
        method, path, _version = request_line.split(" ", 2)
    except ValueError as exc:
        raise HttpError(400, "malformed HTTP request line") from exc
    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed HTTP header {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError as exc:
            raise HttpError(400, "bad Content-Length") from exc
        if n < 0 or n > max_body_bytes:
            raise HttpError(
                413, f"body of {n} bytes exceeds the "
                     f"{max_body_bytes}-byte limit")
        body = await reader.readexactly(n)
    return HttpRequest(method.upper(), path, headers, body)


def http_response(status: int, body: str | bytes = b"", *,
                  content_type: str = "application/json") -> bytes:
    """A complete one-shot HTTP/1.1 response (connection: close)."""
    if isinstance(body, str):
        body = body.encode()
    reason = _STATUS_TEXT.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + body


def json_response(status: int, payload: dict) -> bytes:
    """A JSON-bodied :func:`http_response`."""
    return http_response(
        status, json.dumps(payload, sort_keys=True) + "\n")
