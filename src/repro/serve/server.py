"""The ``bps serve`` asyncio daemon: many tenants, one event loop.

:class:`BpsServer` binds up to three listeners — TCP and unix-socket
JSONL streams, and a minimal HTTP endpoint for body ingest, the
Prometheus scrape, and the JSON query API — over one
:class:`~repro.serve.registry.TenantRegistry`.  The robustness envelope
is the product here; every mechanism below exists so that one
misbehaving client cannot touch another tenant's numbers:

- **backpressure** (ladder rung 1): when a tenant's token bucket runs
  into arrears the *connection handler* sleeps before the next read,
  so the kernel's TCP window — not an unbounded Python queue — pushes
  back on the flooding client;
- **load shedding** (rung 3) and **eviction** (rung 4) verdicts come
  from the tenant's :class:`~repro.serve.budget.IngestMeter` with
  exact accounting;
- **crash/garbage isolation**: decode failures burn the tenant's own
  salvage budget; exhausting it (or any unexpected internal failure)
  quarantines that tenant — the handler reports and disconnects, the
  loop and every other tenant keep running;
- **slow consumers**: every server->client write is bounded by
  ``write_timeout`` and the transport's write-buffer high-water mark;
  a stalled reader is disconnected, never awaited forever;
- **idle eviction**: a housekeeping task finalizes tenants whose
  producers vanished (the killed-client case) with a final snapshot
  flush;
- **graceful drain**: SIGTERM/SIGINT stop the listeners, finalize and
  flush every active tenant (JSONL + Prometheus), and exit 0.

The server never calls ``time.sleep`` and takes an injectable clock,
so the whole envelope is testable in-process with a paused loop.
"""

from __future__ import annotations

import asyncio
import signal
from typing import Callable

from repro.errors import ServeError, TraceFormatError
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    HttpError,
    decode_stream_line,
    http_response,
    json_response,
    read_http_request,
)
from repro.serve.protocol import control_line as _plain_control_line
from repro.serve.registry import ServeConfig, TenantRegistry
from repro.serve.tenant import ACTIVE, Tenant

#: Transport write-buffer high-water mark: the bounded write queue
#: behind the slow-consumer policy (bytes).
WRITE_HIGH_WATER = 256 << 10

#: Acks are sent every this many admitted records (socket streams).
ACK_EVERY = 1024

#: Upper bound on how long :meth:`BpsServer.drain` keeps re-cancelling
#: live connection handlers before settling the tenants anyway.
DRAIN_GRACE = 10.0


def control_line(kind: str, **fields) -> bytes:
    """Every line this daemon sends carries the ``crc`` integrity key,
    so a client can refuse to *believe* an ack or welcome corrupted in
    transit (a flipped ``next_seq`` digit must never skip records)."""
    return _plain_control_line(kind, checksum=True, **fields)


def _parse_endpoint(value: str) -> tuple[str, int]:
    """``host:port`` -> (host, port); bare ``:port`` binds localhost."""
    host, sep, port = value.rpartition(":")
    if not sep:
        raise ServeError(f"endpoint must be host:port, got {value!r}")
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        raise ServeError(f"bad port in endpoint {value!r}") from None


class BpsServer:
    """Fault-isolated multi-tenant streaming daemon."""

    def __init__(self, config: ServeConfig, *,
                 tcp: str | None = None,
                 unix: str | None = None,
                 http: str | None = None,
                 clock: Callable[[], float] | None = None) -> None:
        if tcp is None and unix is None and http is None:
            raise ServeError(
                "serve needs at least one listener (tcp/unix/http)")
        self.config = config
        self.registry = TenantRegistry(config, clock=clock)
        self._tcp = _parse_endpoint(tcp) if tcp else None
        self._http = _parse_endpoint(http) if http else None
        self._unix = unix
        self._servers: list[asyncio.base_events.Server] = []
        self._conn_seq = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._housekeeper: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        # Fleet counters (JSON API /tenants "server" section).
        self.connections_accepted = 0
        self.slow_consumer_disconnects = 0
        self.protocol_errors = 0
        self.http_requests = 0
        #: Listener addresses after start(): {"tcp": (h, p), ...}.
        self.addresses: dict = {}

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind every configured listener (ephemeral ports resolved)."""
        loop = asyncio.get_running_loop()
        if self._tcp is not None:
            host, port = self._tcp
            server = await asyncio.start_server(
                self._handle_stream, host, port, limit=MAX_LINE_BYTES)
            self._servers.append(server)
            self.addresses["tcp"] = server.sockets[0].getsockname()[:2]
        if self._unix is not None:
            server = await asyncio.start_unix_server(
                self._handle_stream, path=self._unix,
                limit=MAX_LINE_BYTES)
            self._servers.append(server)
            self.addresses["unix"] = self._unix
        if self._http is not None:
            host, port = self._http
            server = await asyncio.start_server(
                self._handle_http, host, port, limit=MAX_LINE_BYTES)
            self._servers.append(server)
            self.addresses["http"] = server.sockets[0].getsockname()[:2]
        interval = (min(5.0, (self.config.idle_timeout or 5.0) / 4)
                    if self.config.idle_timeout else 5.0)
        self._housekeeper = loop.create_task(
            self._housekeeping(interval))

    async def serve_until_drained(self) -> None:
        """Run until :meth:`drain` (or a signal handler) completes."""
        await self._drained.wait()

    async def drain(self, reason: str = "drain") -> None:
        """Graceful shutdown: stop listening, finalize, flush, settle.

        Idempotent; every active tenant is finalized (final snapshot
        to its sinks) and the aggregated Prometheus file is rewritten
        one last time, so totals survive the daemon's exit.
        """
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        for server in self._servers:
            server.close()
        # Cancel in-flight handlers *before* wait_closed(): newer
        # CPythons make wait_closed() wait for every handler, so the
        # old order deadlocks against our own open streams.  A single
        # cancel() is not enough — it is silently lost when it races a
        # handler whose read-waiter future has already completed (the
        # task resumes normally and keeps serving records) — so
        # re-cancel on a short cadence until every handler is gone,
        # bounded by the drain grace period.
        loop = asyncio.get_running_loop()
        deadline = loop.time() + DRAIN_GRACE
        pending = {task for task in self._conn_tasks
                   if not task.done()}
        if self._housekeeper is not None \
                and not self._housekeeper.done():
            pending.add(self._housekeeper)
        while pending and loop.time() < deadline:
            for task in pending:
                task.cancel()
            _done, pending = await asyncio.wait(pending, timeout=0.05)
        for server in self._servers:
            try:
                await asyncio.wait_for(server.wait_closed(),
                                       timeout=DRAIN_GRACE)
            except asyncio.TimeoutError:  # pragma: no cover — stuck
                break                     # handler; settle what we can
        self.registry.drain_all(reason)
        self.registry.write_prom_file()
        self._drained.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful drain (daemon entry point)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda s=sig: loop.create_task(
                    self.drain(f"signal {s.name}")))

    async def _housekeeping(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            for tenant in self.registry.evict_idle():
                self.registry.note_terminal(tenant)
            self.registry.write_prom_file()

    # -- socket streams ----------------------------------------------------

    async def _handle_stream(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        self.connections_accepted += 1
        writer.transport.set_write_buffer_limits(high=WRITE_HIGH_WATER)
        tenant: Tenant | None = None
        try:
            tenant = await self._stream_loop(reader, writer)
        except asyncio.CancelledError:
            raise
        except (ConnectionError, TimeoutError):
            pass  # client vanished; idle eviction settles the tenant
        except Exception:  # noqa: BLE001 — one connection, not the loop
            self.protocol_errors += 1
        finally:
            if tenant is not None and tenant.chunk_size > 0 \
                    and tenant.state == ACTIVE:
                # Client gone mid-stream: fold buffered rows in so the
                # scrape keeps seeing this tenant's exact totals.
                try:
                    tenant.flush_chunks()
                except Exception:  # noqa: BLE001
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _stream_loop(self, reader, writer) -> Tenant | None:
        tenant: Tenant | None = None
        admitted_since_ack = 0
        while True:
            try:
                raw = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                # One line overran the bounded buffer.  Charge it to
                # the tenant (or drop the connection pre-hello) and
                # skip to the next newline without buffering.
                await self._discard_line(reader)
                if tenant is None:
                    await self._send(writer, control_line(
                        "error", error="first line exceeds the "
                        f"{MAX_LINE_BYTES}-byte line bound"))
                    return None
                outcome = tenant._bad_line(
                    f"line exceeds {MAX_LINE_BYTES} bytes", "")
                if outcome.kind == "quarantined":
                    await self._send(writer, control_line(
                        "error", error=outcome.reason,
                        tenant=tenant.name))
                    self.registry.note_terminal(tenant)
                    return tenant
                continue
            if not raw:
                return tenant  # EOF; tenant settles via idle eviction
            line = raw.decode("utf-8", errors="replace")
            if tenant is None:
                tenant, handled = await self._bind_tenant(line, writer)
                if tenant is None and handled:
                    return None
                if handled:
                    continue
                if tenant is None:
                    return None
            outcome = tenant.feed_line(line)
            if outcome is None:
                continue
            kind = outcome.kind
            if kind in ("ok", "duplicate"):
                if outcome.delay > 0.0:
                    # Rung 1: stop reading; the TCP window throttles
                    # the producer while we sleep off the arrears.
                    await asyncio.sleep(outcome.delay)
                # Duplicates keep the ack cadence alive so a client
                # resending a prefix after reconnect still hears
                # where the server actually is.
                admitted_since_ack += 1
                if admitted_since_ack >= ACK_EVERY:
                    admitted_since_ack = 0
                    await self._send(writer, self._ack_line(tenant))
                continue
            if kind in ("shed", "bad-line"):
                continue  # accounted in the meter / salvage report
            if kind == "control":
                done = await self._handle_control(
                    tenant, outcome.control, writer)
                if done:
                    return tenant
                continue
            # Terminal verdicts: quarantined / evicted / closed.
            await self._send(writer, control_line(
                "error", tenant=tenant.name, state=tenant.state,
                error=outcome.reason))
            self.registry.note_terminal(tenant)
            return tenant

    async def _discard_line(self, reader) -> None:
        """Consume the rest of an overlong line without buffering it."""
        while True:
            chunk = await reader.read(MAX_LINE_BYTES)
            if not chunk or chunk.endswith(b"\n") or b"\n" in chunk:
                return

    def _ack_line(self, tenant: Tenant) -> bytes:
        """An ack carrying the exactly-once bookkeeping a resuming
        client needs: how many records are in, and the first sequence
        number the server has not yet admitted."""
        return control_line(
            "ack", tenant=tenant.name,
            records=tenant.records_admitted,
            next_seq=tenant.next_seq)

    async def _bind_tenant(self, line: str, writer):
        """First data line: hello control or auto-named tenant.

        Returns ``(tenant, handled)`` — ``handled`` means the line was
        fully consumed (hello or a protocol error already answered).

        A hello carrying ``"resume": <token>`` reattaches to an
        existing tenant only when the token matches the one issued in
        that tenant's first welcome — a stale or wrong token is a
        protocol error, so a confused client can never write into
        someone else's stream.  Token-less hellos to an existing name
        keep the legacy attach semantics.
        """
        try:
            decoded = decode_stream_line(line)
        except TraceFormatError:
            decoded = ("garbage", None)
        if decoded is not None and decoded[0] == "control" \
                and decoded[1].get("type") == "hello":
            hello = decoded[1]
            name = hello.get("tenant", "")
            existing = self.registry.get(name) if name else None
            resume = hello.get("resume")
            if resume is not None:
                if existing is None:
                    self.protocol_errors += 1
                    await self._send(writer, control_line(
                        "error", error=f"cannot resume unknown "
                                       f"tenant {name!r}"))
                    return None, True
                if resume != existing.resume_token:
                    self.protocol_errors += 1
                    await self._send(writer, control_line(
                        "error", error=f"bad resume token for "
                                       f"tenant {name!r}"))
                    return None, True
                existing.resumed_sessions += 1
            try:
                tenant = self.registry.get_or_create(name)
            except ServeError as exc:
                self.protocol_errors += 1
                await self._send(writer, control_line(
                    "error", error=str(exc)))
                return None, True
            await self._send(writer, control_line(
                "welcome", tenant=tenant.name, state=tenant.state,
                resume=tenant.resume_token,
                records=tenant.records_admitted,
                next_seq=tenant.next_seq))
            return tenant, True
        self._conn_seq += 1
        name = f"conn-{self._conn_seq}"
        try:
            tenant = self.registry.get_or_create(name)
        except ServeError as exc:
            await self._send(writer, control_line(
                "error", error=str(exc)))
            return None, True
        return tenant, False  # the line itself still needs feeding

    async def _handle_control(self, tenant: Tenant, control: dict,
                              writer) -> bool:
        """Apply one in-stream control object; True ends the stream."""
        kind = control.get("type")
        if kind == "end":
            tenant.end()
            self.registry.note_terminal(tenant)
            self.registry.write_prom_file()
            await self._send(writer, self._result_line(tenant))
            return True
        if kind == "sync":
            # Immediate ack on demand: the resume protocol's probe.
            await self._send(writer, self._ack_line(tenant))
            return False
        if kind == "hello":
            # Mid-stream hello: harmless no-op, re-ack the binding.
            await self._send(writer, control_line(
                "welcome", tenant=tenant.name, state=tenant.state,
                resume=tenant.resume_token,
                records=tenant.records_admitted,
                next_seq=tenant.next_seq))
        return False

    def _result_line(self, tenant: Tenant) -> bytes:
        status = tenant.status()
        return control_line("result", **status)

    async def _send(self, writer, payload: bytes) -> None:
        """Bounded write: a stalled consumer is cut, not awaited."""
        try:
            writer.write(payload)
            await asyncio.wait_for(writer.drain(),
                                   timeout=self.config.write_timeout)
        except asyncio.TimeoutError:
            self.slow_consumer_disconnects += 1
            writer.transport.abort()
            raise ConnectionError("slow consumer disconnected")

    # -- HTTP --------------------------------------------------------------

    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        self.connections_accepted += 1
        writer.transport.set_write_buffer_limits(high=WRITE_HIGH_WATER)
        try:
            request = await asyncio.wait_for(
                read_http_request(
                    reader,
                    max_body_bytes=self.config.max_body_bytes),
                timeout=self.config.write_timeout)
            if request is None:
                return
            self.http_requests += 1
            response = await self._route_http(request)
            await self._send(writer, response)
        except HttpError as exc:
            self.protocol_errors += 1
            try:
                await self._send(writer, json_response(
                    exc.status, {"error": str(exc)}))
            except (ConnectionError, asyncio.TimeoutError):
                pass
        except asyncio.CancelledError:
            raise
        except (ConnectionError, TimeoutError, asyncio.TimeoutError):
            pass
        except Exception as exc:  # noqa: BLE001 — isolate the loop
            self.protocol_errors += 1
            try:
                await self._send(writer, json_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"}))
            except (ConnectionError, asyncio.TimeoutError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _route_http(self, request) -> bytes:
        path = request.path.split("?", 1)[0]
        parts = [p for p in path.split("/") if p]
        if request.method == "GET":
            if path == "/metrics":
                return http_response(
                    200, self.registry.prometheus_text(),
                    content_type="text/plain; version=0.0.4")
            if path == "/tenants":
                payload = self.registry.statuses()
                payload["server"] = self.server_status()
                return json_response(200, payload)
            if len(parts) == 2 and parts[0] == "tenants":
                tenant = self.registry.get(parts[1])
                if tenant is None:
                    return json_response(
                        404, {"error": f"unknown tenant {parts[1]!r}"})
                tenant.refresh_snapshot()
                return json_response(200, tenant.status())
            if len(parts) == 3 and parts[0] == "tenants" \
                    and parts[2] == "anomalies":
                tenant = self.registry.get(parts[1])
                if tenant is None:
                    return json_response(
                        404, {"error": f"unknown tenant {parts[1]!r}"})
                return json_response(200, tenant.anomaly_events())
            return json_response(404, {"error": f"no route {path!r}"})
        if request.method == "POST":
            if len(parts) == 2 and parts[0] == "ingest":
                return await self._http_ingest(parts[1], request.body)
            if len(parts) == 3 and parts[0] == "tenants" \
                    and parts[2] == "end":
                tenant = self.registry.get(parts[1])
                if tenant is None:
                    return json_response(
                        404, {"error": f"unknown tenant {parts[1]!r}"})
                tenant.end()
                self.registry.note_terminal(tenant)
                self.registry.write_prom_file()
                return json_response(200, tenant.status())
            return json_response(404, {"error": f"no route {path!r}"})
        return json_response(405,
                             {"error": f"method {request.method}"})

    async def _http_ingest(self, name: str, body: bytes) -> bytes:
        try:
            tenant = self.registry.get_or_create(name)
        except ServeError as exc:
            return json_response(429 if "limit" in str(exc) else 400,
                                 {"error": str(exc)})
        if tenant.state != ACTIVE:
            return json_response(410, {
                "error": f"tenant {name!r} is {tenant.state}: "
                         f"{tenant.state_reason}",
                **tenant.status()})
        accepted = shed = bad = 0
        throttled = 0.0
        outcome = None
        for line in body.decode("utf-8", errors="replace").splitlines():
            outcome = tenant.feed_line(line)
            if outcome is None:
                continue
            if outcome.kind == "ok":
                accepted += 1
                throttled += outcome.delay
            elif outcome.kind == "shed":
                shed += 1
            elif outcome.kind == "bad-line":
                bad += 1
            elif outcome.kind in ("quarantined", "evicted", "closed"):
                self.registry.note_terminal(tenant)
                break
        if throttled > 0.0:
            # HTTP bodies arrive whole; the arrears delay is applied
            # before this response so a flooding poster is still paced.
            await asyncio.sleep(min(throttled,
                                    self.config.write_timeout))
        status = 200
        if outcome is not None and outcome.kind in (
                "quarantined", "evicted", "closed"):
            status = 410
        elif shed:
            status = 429
        return json_response(status, {
            "tenant": tenant.name, "accepted": accepted, "shed": shed,
            "bad_lines": bad, "throttled_seconds": throttled,
            "state": tenant.state, **({"state_reason":
                                       tenant.state_reason}
                                      if tenant.state != ACTIVE
                                      else {}),
        })

    # -- status ------------------------------------------------------------

    def server_status(self) -> dict:
        return {
            "connections_accepted": self.connections_accepted,
            "slow_consumer_disconnects":
                self.slow_consumer_disconnects,
            "protocol_errors": self.protocol_errors,
            "http_requests": self.http_requests,
            "draining": self._draining,
            "addresses": {k: list(v) if isinstance(v, tuple) else v
                          for k, v in self.addresses.items()},
        }


def _banner_print(message: str) -> None:
    """Default banner sink: flush eagerly so wrappers that parse the
    "listening on" line from a pipe see it before the loop blocks."""
    print(message, flush=True)


async def _amain(server: BpsServer, *, banner=_banner_print) -> int:
    await server.start()
    server.install_signal_handlers()
    for kind, addr in server.addresses.items():
        if isinstance(addr, tuple):
            banner(f"serve: listening on {kind} {addr[0]}:{addr[1]}")
        else:
            banner(f"serve: listening on {kind} {addr}")
    await server.serve_until_drained()
    drained = [t for t in server.registry.tenants.values()
               if t.result is not None]
    banner(f"serve: drained {len(drained)} tenant(s) with records; "
           f"exiting cleanly")
    return 0


def run_server(server: BpsServer, *, banner=_banner_print) -> int:
    """Blocking daemon entry point; returns the process exit code."""
    try:
        return asyncio.run(_amain(server, banner=banner))
    except KeyboardInterrupt:  # pragma: no cover — signal race
        return 0
