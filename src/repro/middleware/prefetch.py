"""Sequential read-ahead prefetching at the middleware layer.

The paper lists data prefetching (alongside data sieving) as an
optimisation that "may also prefetch data more than required" — extra
data movement that inflates file-system bandwidth without necessarily
helping the application.  :class:`SequentialPrefetcher` wraps a
:class:`~repro.middleware.posix.PosixFile`: after ``trigger_after``
consecutive sequential reads it starts fetching the next window
asynchronously; reads that land in a completed prefetch window return at
memory speed.

A prefetch that the application never consumes is pure waste — visible
as ``fs_bytes > app_bytes``, the same amplification signature sieving
has.  The ablation bench measures both the win (sequential) and the
waste (random access with prefetching left on).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.base import READ
from repro.errors import MiddlewareError
from repro.fs.localfs import FSResult
from repro.middleware.posix import PosixFile
from repro.sim.events import Completion
from repro.util.units import GiB, MiB


@dataclass(frozen=True)
class PrefetchConfig:
    """Read-ahead knobs."""

    window_bytes: int = 1 * MiB     # size of one prefetch window
    trigger_after: int = 2          # sequential reads before arming
    memcpy_rate: float = 8.0 * GiB  # buffered-hit copy rate

    def __post_init__(self) -> None:
        if self.window_bytes <= 0:
            raise MiddlewareError(f"bad window {self.window_bytes}")
        if self.trigger_after < 1:
            raise MiddlewareError(f"bad trigger {self.trigger_after}")
        if self.memcpy_rate <= 0:
            raise MiddlewareError(f"bad memcpy rate {self.memcpy_rate}")


class SequentialPrefetcher:
    """Wraps a PosixFile with sequential read-ahead.

    Only ``pread`` is accelerated; writes invalidate the buffer (a real
    implementation would need coherence — we take the simple correct
    option).
    """

    def __init__(self, file: PosixFile, config: PrefetchConfig | None = None) -> None:
        self.file = file
        self.engine = file.engine
        self.config = config or PrefetchConfig()
        self._expected_next = -1       # offset that would continue the run
        self._run_length = 0           # consecutive sequential reads seen
        # Completed prefetch window: [start, end), or None.
        self._buffered: tuple[int, int] | None = None
        # High-water mark of consumption inside the buffered window.
        self._consumed_to = 0
        # In-flight prefetch: (start, end, completion), or None.
        self._inflight: tuple[int, int, Completion] | None = None
        self.stats_prefetches = 0
        self.stats_buffered_hits = 0
        self.stats_wasted_bytes = 0

    def pread(self, offset: int, nbytes: int) -> Completion:
        """Positional read with read-ahead; fires with an FSResult."""
        done = self.engine.completion()
        self.engine.spawn(self._read_proc(offset, nbytes, done),
                          name=f"prefetch.read.{self.file.pid}")
        return done

    def pwrite(self, offset: int, nbytes: int) -> Completion:
        """Write-through; drops any buffered window (coherence)."""
        self._drop_buffer(count_waste=True)
        return self.file.pwrite(offset, nbytes)

    def _drop_buffer(self, *, count_waste: bool) -> None:
        if self._buffered is not None and count_waste:
            _start, end = self._buffered
            # Only bytes never consumed out of the window are waste.
            self.stats_wasted_bytes += max(0, end - self._consumed_to)
        self._buffered = None

    def _read_proc(self, offset: int, nbytes: int, done: Completion):
        config = self.config
        file = self.file
        start_time = self.engine.now

        # Wait for an in-flight prefetch that covers this read.
        if (self._inflight is not None
                and self._inflight[0] <= offset
                and offset + nbytes <= self._inflight[1]):
            yield self._inflight[2]

        hit = (self._buffered is not None
               and self._buffered[0] <= offset
               and offset + nbytes <= self._buffered[1])
        if hit:
            # Serve from the prefetch buffer: memory-speed, but still an
            # application I/O call — record it with its (short) duration.
            self.stats_buffered_hits += 1
            self._consumed_to = max(self._consumed_to, offset + nbytes)
            yield self.engine.timeout(
                file.lib.call_overhead_s + nbytes / config.memcpy_rate)
            end_time = self.engine.now
            file.lib.recorder.record_app(
                file.pid, READ, file.file_name, offset, nbytes,
                start_time, end_time)
            result = FSResult(nbytes, 0, 0, 0, start_time, end_time)
        else:
            self._drop_buffer(count_waste=True)
            result = yield file.pread(offset, nbytes)

        # Track sequentiality and maybe arm the next prefetch.
        if offset == self._expected_next:
            self._run_length += 1
        else:
            self._run_length = 1
        self._expected_next = offset + nbytes

        if (self._run_length >= config.trigger_after
                and self._inflight is None):
            # Fetch from the frontier: never re-read buffered bytes.
            window_start = self._expected_next
            if self._buffered is not None:
                window_start = max(window_start, self._buffered[1])
            window_end = min(window_start + config.window_bytes, file.size)
            if window_end > window_start:
                self._launch_prefetch(window_start, window_end)

        done.trigger(result)

    def _launch_prefetch(self, window_start: int, window_end: int) -> None:
        completion = self.engine.completion()
        self._inflight = (window_start, window_end, completion)
        self.stats_prefetches += 1
        self.engine.spawn(
            self._prefetch_proc(window_start, window_end, completion),
            name=f"prefetch.fetch.{self.file.pid}")

    def _prefetch_proc(self, window_start: int, window_end: int,
                       completion: Completion):
        file = self.file
        nbytes = window_end - window_start
        # The fetch bypasses the app-record path: it is middleware
        # traffic, not an application access — only fs bytes are charged.
        result: FSResult = yield file.lib.mount.read(
            file.file_name, window_start, nbytes)
        file.lib.recorder.note_fs_bytes(result.device_bytes,
                                        pid=file.pid, op=READ,
                                        file=file.file_name,
                                        offset=window_start)
        if (self._buffered is not None
                and self._buffered[1] == window_start):
            # Contiguous with the live window: extend instead of replace,
            # so a reader mid-window never loses buffered bytes.
            self._buffered = (self._buffered[0], window_end)
        else:
            self._drop_buffer(count_waste=True)
            self._buffered = (window_start, window_end)
            self._consumed_to = window_start
        self._inflight = None
        completion.trigger(result)
