"""Trace recording — the BPS instrumentation point.

One :class:`TraceRecorder` is shared by all processes of a run (the
"global collection" of the paper's step 2 exists from the start; per-
process gathering is also supported via :meth:`TraceRecorder.merge_from`
for the distributed-collection code path the paper describes).

The recorder keeps two things:

- application-layer :class:`IORecord`s — what BPS, IOPS, and ARPT see;
- a file-system byte counter — what bandwidth sees (device traffic
  including holes, read-ahead, and other middleware amplification).

Completion callbacks: subscribers registered via
:meth:`TraceRecorder.subscribe` are invoked synchronously with every
application-layer record as the operation completes (simulated time) —
the feed the :mod:`repro.live` streaming pipeline taps, so metrics can
be observed *during* a run instead of after the gather.
"""

from __future__ import annotations

from typing import Callable

from repro.core.records import IORecord, LAYER_APP, LAYER_FS, TraceCollection
from repro.errors import MiddlewareError
from repro.sim.engine import Engine


class TraceRecorder:
    """Collects I/O records and file-system byte counts for one run."""

    def __init__(self, engine: Engine, *, keep_fs_records: bool = False) -> None:
        self.engine = engine
        self.trace = TraceCollection()
        self.fs_bytes_moved = 0
        #: Optionally keep per-access fs-layer records (heavier; used by
        #: the offline toolkit examples, not by the metric pipeline).
        self.keep_fs_records = keep_fs_records
        self._open = True
        #: Completion callbacks, called with each app-layer record.
        self._subscribers: list[Callable[[IORecord], None]] = []

    def subscribe(self, callback: Callable[[IORecord], None]) -> None:
        """Register a completion callback for app-layer records."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[IORecord], None]) -> None:
        """Remove a previously registered completion callback."""
        self._subscribers.remove(callback)

    def close(self) -> None:
        """Stop accepting records (end of run)."""
        self._open = False

    def _check_open(self) -> None:
        if not self._open:
            raise MiddlewareError("recorder is closed")

    def record_app(self, pid: int, op: str, file: str, offset: int,
                   nbytes: int, start: float, end: float,
                   success: bool = True, retries: int = 0) -> IORecord:
        """Record one application-level access; returns the record.

        ``retries`` is the attempt index of this access (0 = first
        issue); middleware retry records every attempt separately so
        recovery traffic shows up in B and the union time.
        """
        self._check_open()
        record = IORecord(pid=pid, op=op, nbytes=nbytes, start=start,
                          end=end, file=file, offset=offset,
                          success=success, layer=LAYER_APP,
                          retries=retries)
        self.trace.add(record)
        for callback in self._subscribers:
            callback(record)
        return record

    def note_fs_bytes(self, nbytes: int, *, pid: int = -1, op: str = "read",
                      file: str = "", offset: int = -1,
                      start: float = 0.0, end: float = 0.0) -> None:
        """Account bytes moved at the file-system boundary."""
        self._check_open()
        if nbytes < 0:
            raise MiddlewareError(f"negative fs byte count: {nbytes}")
        self.fs_bytes_moved += nbytes
        if self.keep_fs_records and nbytes > 0:
            self.trace.add(IORecord(
                pid=pid, op=op, nbytes=nbytes, start=start, end=end,
                file=file, offset=offset, layer=LAYER_FS))

    def merge_from(self, other: "TraceRecorder") -> None:
        """Fold another recorder's data in (per-process gather path)."""
        self._check_open()
        self.trace.extend(other.trace)
        self.fs_bytes_moved += other.fs_bytes_moved

    @property
    def app_trace(self) -> TraceCollection:
        """Application-layer records only."""
        return self.trace.app_records()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TraceRecorder n={len(self.trace)} "
            f"fs_bytes={self.fs_bytes_moved}>"
        )
