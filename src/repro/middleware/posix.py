"""POSIX-style I/O library with built-in tracing.

:class:`PosixIO` wraps a mount (a :class:`~repro.fs.localfs.LocalFileSystem`
or a :class:`~repro.pfs.pvfs.PFSClient`) and hands out :class:`PosixFile`
handles.  Every ``read``/``write`` costs a fixed library overhead, emits
one application-layer trace record, and accounts the mount's device
traffic — the instrumentation the paper adds "in the I/O function
libraries for ordinary POSIX interface applications, to avoid the
modification of applications".

Calls are blocking, as POSIX calls are: a process that wants overlap
must use multiple processes (exactly the paper's concurrency setting).
"""

from __future__ import annotations

from repro.devices.base import READ, WRITE
from repro.errors import MiddlewareError
from repro.fs.localfs import FSResult
from repro.middleware.retry import RetryPolicy, RetryStats, execute_attempts
from repro.middleware.tracing import TraceRecorder
from repro.sim.engine import Engine
from repro.sim.events import Completion
from repro.util.rng import RngStream


class PosixIO:
    """Factory for traced POSIX-style file handles on one mount.

    With a :class:`~repro.middleware.retry.RetryPolicy`, failed or
    timed-out mount operations are re-issued with exponential backoff;
    every attempt emits its own application trace record (``retries`` =
    attempt index), so recovery traffic lands in BPS's numerator and in
    the union-time denominator.  The application never sees an
    exception: after the budget is exhausted it receives an
    unsuccessful :class:`FSResult` — graceful degradation.
    """

    def __init__(self, engine: Engine, mount, recorder: TraceRecorder,
                 *, call_overhead_s: float = 0.000015,
                 retry_policy: RetryPolicy | None = None,
                 retry_rng: RngStream | None = None,
                 fault_state=None,
                 retry_stats: RetryStats | None = None) -> None:
        if call_overhead_s < 0:
            raise MiddlewareError("negative call overhead")
        self.engine = engine
        self.mount = mount
        self.recorder = recorder
        self.call_overhead_s = call_overhead_s
        self.retry_policy = retry_policy
        self.retry_rng = retry_rng
        #: A :class:`~repro.faults.state.FaultState` (straggler factors).
        self.fault_state = fault_state
        self.retry_stats = retry_stats

    def open(self, file_name: str, pid: int) -> "PosixFile":
        """Open an existing file for process ``pid``."""
        if not self.mount.exists(file_name):
            raise MiddlewareError(f"no such file: {file_name!r}")
        return PosixFile(self, file_name, pid)


class PosixFile:
    """One process's handle on one file.

    ``pread``/``pwrite`` are explicit-offset; ``read``/``write`` advance
    a per-handle cursor, like the libc calls.  All return completions
    that fire with the mount's :class:`FSResult` once the access (and
    its trace record) is done.
    """

    def __init__(self, lib: PosixIO, file_name: str, pid: int) -> None:
        self.lib = lib
        self.engine = lib.engine
        self.file_name = file_name
        self.pid = pid
        self.position = 0
        self.size = lib.mount.size_of(file_name)
        self._closed = False

    def _check(self, offset: int, nbytes: int) -> None:
        if self._closed:
            raise MiddlewareError(f"I/O on closed handle {self.file_name!r}")
        if offset < 0 or nbytes <= 0 or offset + nbytes > self.size:
            raise MiddlewareError(
                f"bad range [{offset}, {offset + nbytes}) for "
                f"{self.file_name!r} of size {self.size}"
            )

    def pread(self, offset: int, nbytes: int) -> Completion:
        """Positional read of ``nbytes`` at ``offset``."""
        self._check(offset, nbytes)
        done = self.engine.completion()
        self.engine.spawn(self._io(READ, offset, nbytes, done),
                          name=f"posix.pread.{self.pid}")
        return done

    def pwrite(self, offset: int, nbytes: int) -> Completion:
        """Positional write of ``nbytes`` at ``offset``."""
        self._check(offset, nbytes)
        done = self.engine.completion()
        self.engine.spawn(self._io(WRITE, offset, nbytes, done),
                          name=f"posix.pwrite.{self.pid}")
        return done

    def read(self, nbytes: int) -> Completion:
        """Sequential read at the cursor; advances it."""
        done = self.pread(self.position, nbytes)
        self.position += nbytes
        return done

    def write(self, nbytes: int) -> Completion:
        """Sequential write at the cursor; advances it."""
        done = self.pwrite(self.position, nbytes)
        self.position += nbytes
        return done

    def seek(self, offset: int) -> None:
        """Move the cursor."""
        if offset < 0 or offset > self.size:
            raise MiddlewareError(f"bad seek offset {offset}")
        self.position = offset

    def close(self) -> None:
        """Invalidate the handle; further I/O raises."""
        self._closed = True

    def _io(self, op: str, offset: int, nbytes: int, done: Completion):
        lib = self.lib
        start = self.engine.now
        yield self.engine.timeout(lib.call_overhead_s)
        if op == READ:
            def issue():
                return lib.mount.read(self.file_name, offset, nbytes)
        else:
            def issue():
                return lib.mount.write(self.file_name, offset, nbytes)
        outcomes = yield from execute_attempts(
            self.engine, issue, lib.retry_policy,
            rng=lib.retry_rng, stats=lib.retry_stats, first_start=start)
        final = outcomes[-1]
        final_end = final.end
        if lib.fault_state is not None:
            # Straggler window: this process's call takes `factor` times
            # as long as a healthy one (CPU steal, paging, cgroup caps).
            factor = lib.fault_state.process_factor(self.pid)
            if factor > 1.0:
                yield self.engine.timeout(
                    (factor - 1.0) * (final.end - start))
                final_end = self.engine.now
        for attempt, outcome in enumerate(outcomes):
            end = final_end if outcome is final else outcome.end
            lib.recorder.record_app(self.pid, op, self.file_name, offset,
                                    nbytes, outcome.start, end,
                                    success=outcome.success,
                                    retries=attempt)
            if outcome.result is not None:
                lib.recorder.note_fs_bytes(
                    outcome.result.device_bytes, pid=self.pid, op=op,
                    file=self.file_name, offset=offset,
                    start=outcome.start, end=end)
        result = final.result
        if result is None:  # final attempt timed out
            result = FSResult(nbytes, 0, 0, 0, final.start, final_end,
                              success=False,
                              errors=("operation timed out",))
        done.trigger(result)
