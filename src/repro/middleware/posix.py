"""POSIX-style I/O library with built-in tracing.

:class:`PosixIO` wraps a mount (a :class:`~repro.fs.localfs.LocalFileSystem`
or a :class:`~repro.pfs.pvfs.PFSClient`) and hands out :class:`PosixFile`
handles.  Every ``read``/``write`` costs a fixed library overhead, emits
one application-layer trace record, and accounts the mount's device
traffic — the instrumentation the paper adds "in the I/O function
libraries for ordinary POSIX interface applications, to avoid the
modification of applications".

Calls are blocking, as POSIX calls are: a process that wants overlap
must use multiple processes (exactly the paper's concurrency setting).
"""

from __future__ import annotations

from repro.devices.base import READ, WRITE
from repro.errors import MiddlewareError
from repro.fs.localfs import FSResult
from repro.middleware.tracing import TraceRecorder
from repro.sim.engine import Engine
from repro.sim.events import Completion


class PosixIO:
    """Factory for traced POSIX-style file handles on one mount."""

    def __init__(self, engine: Engine, mount, recorder: TraceRecorder,
                 *, call_overhead_s: float = 0.000015) -> None:
        if call_overhead_s < 0:
            raise MiddlewareError("negative call overhead")
        self.engine = engine
        self.mount = mount
        self.recorder = recorder
        self.call_overhead_s = call_overhead_s

    def open(self, file_name: str, pid: int) -> "PosixFile":
        """Open an existing file for process ``pid``."""
        if not self.mount.exists(file_name):
            raise MiddlewareError(f"no such file: {file_name!r}")
        return PosixFile(self, file_name, pid)


class PosixFile:
    """One process's handle on one file.

    ``pread``/``pwrite`` are explicit-offset; ``read``/``write`` advance
    a per-handle cursor, like the libc calls.  All return completions
    that fire with the mount's :class:`FSResult` once the access (and
    its trace record) is done.
    """

    def __init__(self, lib: PosixIO, file_name: str, pid: int) -> None:
        self.lib = lib
        self.engine = lib.engine
        self.file_name = file_name
        self.pid = pid
        self.position = 0
        self.size = lib.mount.size_of(file_name)
        self._closed = False

    def _check(self, offset: int, nbytes: int) -> None:
        if self._closed:
            raise MiddlewareError(f"I/O on closed handle {self.file_name!r}")
        if offset < 0 or nbytes <= 0 or offset + nbytes > self.size:
            raise MiddlewareError(
                f"bad range [{offset}, {offset + nbytes}) for "
                f"{self.file_name!r} of size {self.size}"
            )

    def pread(self, offset: int, nbytes: int) -> Completion:
        """Positional read of ``nbytes`` at ``offset``."""
        self._check(offset, nbytes)
        done = self.engine.completion()
        self.engine.spawn(self._io(READ, offset, nbytes, done),
                          name=f"posix.pread.{self.pid}")
        return done

    def pwrite(self, offset: int, nbytes: int) -> Completion:
        """Positional write of ``nbytes`` at ``offset``."""
        self._check(offset, nbytes)
        done = self.engine.completion()
        self.engine.spawn(self._io(WRITE, offset, nbytes, done),
                          name=f"posix.pwrite.{self.pid}")
        return done

    def read(self, nbytes: int) -> Completion:
        """Sequential read at the cursor; advances it."""
        done = self.pread(self.position, nbytes)
        self.position += nbytes
        return done

    def write(self, nbytes: int) -> Completion:
        """Sequential write at the cursor; advances it."""
        done = self.pwrite(self.position, nbytes)
        self.position += nbytes
        return done

    def seek(self, offset: int) -> None:
        """Move the cursor."""
        if offset < 0 or offset > self.size:
            raise MiddlewareError(f"bad seek offset {offset}")
        self.position = offset

    def close(self) -> None:
        """Invalidate the handle; further I/O raises."""
        self._closed = True

    def _io(self, op: str, offset: int, nbytes: int, done: Completion):
        lib = self.lib
        start = self.engine.now
        yield self.engine.timeout(lib.call_overhead_s)
        if op == READ:
            result: FSResult = yield lib.mount.read(
                self.file_name, offset, nbytes)
        else:
            result = yield lib.mount.write(self.file_name, offset, nbytes)
        end = self.engine.now
        lib.recorder.record_app(self.pid, op, self.file_name, offset,
                                nbytes, start, end, success=result.success)
        lib.recorder.note_fs_bytes(result.device_bytes, pid=self.pid,
                                   op=op, file=self.file_name,
                                   offset=offset, start=start, end=end)
        done.trigger(result)
