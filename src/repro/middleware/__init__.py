"""I/O middleware: POSIX- and MPI-IO-style interfaces with tracing.

This layer is where the paper measures (section III.B step 1: "we get
this information in the I/O middleware layer for MPI-IO applications, or
I/O function libraries for ordinary POSIX interface applications").
Every application-visible call emits an :class:`~repro.core.records.IORecord`
and accounts the bytes that actually crossed the file-system boundary,
so BPS and bandwidth can be measured at their respective points.

The optimisations the paper names as the source of "additional data
movement" live here too: data sieving (ROMIO-style), sequential
prefetching, and two-phase collective I/O.
"""

from repro.middleware.tracing import TraceRecorder
from repro.middleware.posix import PosixIO, PosixFile
from repro.middleware.sieving import SievingConfig, plan_sieving, SieveRead
from repro.middleware.mpiio import MPIIO, MPIFile, MPIIOHints
from repro.middleware.prefetch import SequentialPrefetcher, PrefetchConfig
from repro.middleware.collective import two_phase_plan, FileDomain
from repro.middleware.async_io import AsyncIOContext
from repro.middleware.retry import (
    AttemptOutcome,
    RetryPolicy,
    RetryStats,
    execute_attempts,
)

__all__ = [
    "AsyncIOContext",
    "AttemptOutcome",
    "RetryPolicy",
    "RetryStats",
    "execute_attempts",
    "TraceRecorder",
    "PosixIO",
    "PosixFile",
    "SievingConfig",
    "plan_sieving",
    "SieveRead",
    "MPIIO",
    "MPIFile",
    "MPIIOHints",
    "SequentialPrefetcher",
    "PrefetchConfig",
    "two_phase_plan",
    "FileDomain",
]
