"""Data sieving — ROMIO's optimisation for small noncontiguous accesses.

Instead of issuing one tiny file-system request per region, the
middleware reads a single contiguous range covering several regions
*including the holes between them*, then copies the wanted pieces out of
the sieve buffer.  Fewer, larger requests usually win — but the holes
are extra data movement the application never asked for, which is
exactly why file-system bandwidth stops tracking application-visible
performance (the paper's Set 4, our Fig. 12 reproduction).

This module is pure planning logic (no simulation): given the
application's region list and a :class:`SievingConfig`, produce the
:class:`SieveRead` s the middleware will issue.  Keeping it pure makes it
property-testable: coverage, buffer-bound, and hole-threshold invariants
are all asserted directly in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MiddlewareError
from repro.util.units import MiB

Region = tuple[int, int]  # (offset, length)


@dataclass(frozen=True)
class SievingConfig:
    """Data sieving knobs (mirrors ROMIO's ``ind_rd_buffer_size`` etc.).

    ``enabled=False`` degrades to one read per region.
    ``buffer_size`` caps a single sieve read.
    ``max_hole`` stops sieving across holes larger than this — reading a
    huge hole costs more than a second request (ROMIO behaves likewise).
    """

    enabled: bool = True
    buffer_size: int = 4 * MiB
    max_hole: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.buffer_size <= 0:
            raise MiddlewareError(f"bad buffer size {self.buffer_size}")
        if self.max_hole < 0:
            raise MiddlewareError(f"bad max hole {self.max_hole}")


@dataclass(frozen=True)
class SieveRead:
    """One contiguous middleware read covering ``regions``."""

    offset: int
    nbytes: int
    regions: tuple[Region, ...]

    @property
    def end(self) -> int:
        """One past the last byte of the sieve read."""
        return self.offset + self.nbytes

    @property
    def useful_bytes(self) -> int:
        """Bytes of covered regions (the data the application wanted)."""
        return sum(length for _off, length in self.regions)

    @property
    def hole_bytes(self) -> int:
        """Extra bytes read only because they sit between regions."""
        return self.nbytes - self.useful_bytes


def validate_regions(regions: list[Region]) -> None:
    """Regions must be non-empty, positive-length, sorted, disjoint."""
    if not regions:
        raise MiddlewareError("no regions to read")
    previous_end = -1
    for offset, length in regions:
        if offset < 0 or length <= 0:
            raise MiddlewareError(f"bad region ({offset}, {length})")
        if offset < previous_end:
            raise MiddlewareError(
                "regions must be sorted and non-overlapping; "
                f"({offset}, {length}) starts before {previous_end}"
            )
        previous_end = offset + length


def plan_sieving(regions: list[Region],
                 config: SievingConfig) -> list[SieveRead]:
    """Group regions into sieve reads under the config's constraints.

    Guarantees (property-tested):

    - every region is covered by exactly one sieve read;
    - no sieve read exceeds ``buffer_size`` (unless a single region does,
      in which case that region gets a dedicated exact-size read);
    - no sieve read spans a hole wider than ``max_hole``;
    - with sieving disabled, reads match regions one-to-one.
    """
    validate_regions(regions)
    if not config.enabled:
        return [SieveRead(off, length, ((off, length),))
                for off, length in regions]

    reads: list[SieveRead] = []
    group: list[Region] = [regions[0]]

    def flush() -> None:
        start = group[0][0]
        end = group[-1][0] + group[-1][1]
        reads.append(SieveRead(start, end - start, tuple(group)))

    for region in regions[1:]:
        offset, length = region
        group_start = group[0][0]
        group_end = group[-1][0] + group[-1][1]
        hole = offset - group_end
        extended = (offset + length) - group_start
        if hole > config.max_hole or extended > config.buffer_size:
            flush()
            group = [region]
        else:
            group.append(region)
    flush()
    return reads


def sieving_efficiency(reads: list[SieveRead]) -> float:
    """useful bytes / total bytes across a plan (1.0 = no holes read)."""
    total = sum(r.nbytes for r in reads)
    if total == 0:
        raise MiddlewareError("empty sieving plan")
    useful = sum(r.useful_bytes for r in reads)
    return useful / total
