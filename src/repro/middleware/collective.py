"""Two-phase collective I/O planning.

Phase one of ROMIO's collective read assigns each *aggregator* a
contiguous *file domain*: the union of all ranks' requests is split into
``cb_nodes`` even contiguous pieces.  Aggregators read their domains with
large requests; phase two redistributes the pieces to the requesting
ranks.  Like the sieving planner, this module is pure logic so the
domain invariants (coverage, disjointness, balance) are directly
property-testable; the simulation costs live in
:mod:`repro.middleware.mpiio`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MiddlewareError


@dataclass(frozen=True)
class FileDomain:
    """One aggregator's contiguous responsibility."""

    aggregator: int
    offset: int
    nbytes: int

    @property
    def end(self) -> int:
        """One past the last byte of the domain."""
        return self.offset + self.nbytes


def two_phase_plan(requests: dict[int, tuple[int, int]],
                   cb_nodes: int) -> list[FileDomain]:
    """Split the requests' covering extent into per-aggregator domains.

    ``requests`` maps rank → (offset, nbytes).  The returned domains:

    - exactly tile ``[min_offset, max_end)`` (ROMIO divides the covering
      extent, holes included — holes between rank requests are read,
      another source of "additional data movement");
    - are contiguous, disjoint, and ascending;
    - differ in size by at most one byte-granule (balanced split);
    - number ``min(cb_nodes, extent)`` — never more domains than bytes.
    """
    if not requests:
        raise MiddlewareError("collective plan with no requests")
    if cb_nodes < 1:
        raise MiddlewareError(f"bad cb_nodes {cb_nodes}")
    for rank, (offset, nbytes) in requests.items():
        if offset < 0 or nbytes <= 0:
            raise MiddlewareError(
                f"bad request ({offset}, {nbytes}) from rank {rank}"
            )
    start = min(offset for offset, _n in requests.values())
    end = max(offset + nbytes for offset, nbytes in requests.values())
    extent = end - start
    n_domains = min(cb_nodes, extent)
    base, remainder = divmod(extent, n_domains)
    domains: list[FileDomain] = []
    cursor = start
    for aggregator in range(n_domains):
        size = base + (1 if aggregator < remainder else 0)
        domains.append(FileDomain(aggregator, cursor, size))
        cursor += size
    assert cursor == end, "domains failed to tile the extent"
    return domains


def merge_ranges(ranges: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge overlapping/adjacent (offset, nbytes) ranges.

    The aggregate access pattern of a collective call: aggregators read
    only these ranges (clipped to their domains), never the holes between
    rank requests — matching ROMIO, which materialises the aggregate
    pattern rather than blindly reading each domain end to end.
    """
    if not ranges:
        return []
    ordered = sorted((offset, offset + nbytes) for offset, nbytes in ranges)
    merged: list[list[int]] = [list(ordered[0])]
    for start, end in ordered[1:]:
        if start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return [(start, end - start) for start, end in merged]


def domain_reads(domains: list[FileDomain],
                 requests: dict[int, tuple[int, int]]
                 ) -> list[tuple[int, int, int]]:
    """Per-aggregator read list: (aggregator, offset, nbytes) triples.

    Each triple is one contiguous read an aggregator issues in phase
    one: a merged requested range clipped to the aggregator's domain.
    The union of all triples covers exactly the requested bytes.
    """
    merged = merge_ranges(list(requests.values()))
    reads: list[tuple[int, int, int]] = []
    for domain in domains:
        for offset, nbytes in merged:
            start = max(offset, domain.offset)
            end = min(offset + nbytes, domain.end)
            if start < end:
                reads.append((domain.aggregator, start, end - start))
    return reads


def domain_for_offset(domains: list[FileDomain], offset: int) -> FileDomain:
    """The domain containing byte ``offset`` (for the exchange phase)."""
    for domain in domains:
        if domain.offset <= offset < domain.end:
            return domain
    raise MiddlewareError(f"offset {offset} outside all domains")
