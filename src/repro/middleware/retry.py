"""Retry policy for graceful degradation at the middleware layer.

The paper's B counts "all successful accesses, non-successful ones, and
all concurrent ones" (section III.A) — BPS is *designed* to stay
meaningful when the I/O system misbehaves.  This module supplies the
machinery that makes applications survive such misbehaviour instead of
erroring out: a declarative :class:`RetryPolicy` (bounded retries,
exponential backoff with optional jitter, a per-operation timeout) and
the :func:`execute_attempts` driver that ``posix.py``/``mpiio.py``
``yield from`` around each mount operation.

Every attempt — first issue, retries, timed-out tries — is reported
back to the caller so it can emit one trace record per attempt; the
recovery traffic therefore lands in B and in the union-time denominator
exactly as the paper prescribes for non-successful accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MiddlewareError
from repro.sim.engine import Engine
from repro.util.rng import RngStream


@dataclass(frozen=True)
class RetryPolicy:
    """How the middleware reacts to a failed or stalled operation.

    Parameters
    ----------
    max_retries:
        Re-issues after the first failed attempt (0 = fail immediately,
        but still degrade gracefully: the caller receives an
        unsuccessful result, no exception).
    backoff_base_s / backoff_factor:
        Attempt ``k`` (0-based) failing schedules the next attempt after
        ``backoff_base_s * backoff_factor**k`` seconds — classic
        exponential backoff.
    backoff_jitter:
        Fraction of the delay drawn uniformly from ``[0, jitter)`` and
        *added*, decorrelating retry storms.  Requires the caller to
        supply an :class:`RngStream` so jittered runs stay seeded.
    timeout_s:
        Per-attempt deadline raced against the mount operation via the
        engine's :class:`~repro.sim.events.AnyOf`.  ``None`` disables
        the race.  A timed-out attempt counts as failed; its late result
        is discarded (the device traffic still happened and still shows
        up in device/fs counters).
    failover:
        Permission for the PFS layer to redirect failed per-server parts
        to replica servers (see ``pfs/pvfs.py``); local mounts ignore it.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.002
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.0
    timeout_s: float | None = None
    failover: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise MiddlewareError(f"negative max_retries {self.max_retries}")
        if self.backoff_base_s < 0:
            raise MiddlewareError(
                f"negative backoff base {self.backoff_base_s}")
        if self.backoff_factor < 1.0:
            raise MiddlewareError(
                f"backoff factor must be >= 1, got {self.backoff_factor}")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise MiddlewareError(
                f"backoff jitter must be in [0, 1), got "
                f"{self.backoff_jitter}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise MiddlewareError(f"non-positive timeout {self.timeout_s}")

    def backoff_delay(self, attempt: int,
                      rng: RngStream | None = None) -> float:
        """Delay before re-issuing after failed attempt ``attempt``."""
        if attempt < 0:
            raise MiddlewareError(f"negative attempt index {attempt}")
        delay = self.backoff_base_s * self.backoff_factor ** attempt
        if self.backoff_jitter > 0.0:
            if rng is None:
                raise MiddlewareError(
                    "jittered backoff needs an RngStream (seeded runs "
                    "must not fall back to ad-hoc randomness)")
            delay *= 1.0 + rng.uniform(0.0, self.backoff_jitter)
        return delay


@dataclass
class RetryStats:
    """Middleware-wide recovery tallies (one instance per run/system)."""

    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    giveups: int = 0

    def as_dict(self) -> dict:
        return {"attempts": self.attempts, "retries": self.retries,
                "timeouts": self.timeouts, "giveups": self.giveups}


@dataclass(frozen=True)
class AttemptOutcome:
    """One attempt of one middleware operation, as observed by tracing."""

    start: float
    end: float
    result: object | None   # the mount's FSResult; None if timed out
    timed_out: bool = False

    @property
    def success(self) -> bool:
        return self.result is not None and getattr(
            self.result, "success", False)


def execute_attempts(engine: Engine, issue, policy: RetryPolicy | None,
                     *, rng: RngStream | None = None,
                     stats: RetryStats | None = None,
                     first_start: float | None = None):
    """(generator) Drive one operation through the retry state machine.

    ``issue()`` must return a fresh waitable for one attempt of the
    underlying mount operation.  Yields from inside a middleware
    process; the StopIteration value is the list of
    :class:`AttemptOutcome` (never empty, last entry is the final
    attempt).  With ``policy=None`` this degenerates to a single
    awaited attempt — zero behavioural difference from pre-retry code.

    ``first_start`` backdates the first outcome's start (middleware
    counts its library overhead, paid before calling this, as part of
    attempt 0 — matching how un-retried calls were always recorded).
    """
    outcomes: list[AttemptOutcome] = []
    attempt = 0
    while True:
        start = engine.now if (attempt or first_start is None) \
            else first_start
        pending = issue()
        timed_out = False
        if policy is not None and policy.timeout_s is not None:
            index, value = yield engine.any_of(
                [pending, engine.timeout(policy.timeout_s)])
            result = value if index == 0 else None
            timed_out = index == 1
        else:
            result = yield pending
        outcomes.append(AttemptOutcome(start, engine.now, result,
                                       timed_out))
        if stats is not None:
            stats.attempts += 1
            if timed_out:
                stats.timeouts += 1
        ok = outcomes[-1].success
        if ok or policy is None or attempt >= policy.max_retries:
            if not ok and stats is not None:
                stats.giveups += 1
            return outcomes
        delay = policy.backoff_delay(attempt, rng)
        if delay > 0:
            yield engine.timeout(delay)
        if stats is not None:
            stats.retries += 1
        attempt += 1
