"""Asynchronous I/O: submit/complete with a bounded in-flight window.

The paper's concurrency experiments use multiple *processes*; modern
stacks get the same overlap from a single process via asynchronous
submission (POSIX AIO, libaio, io_uring).  :class:`AsyncIOContext`
models that: submissions return immediately, at most ``queue_depth``
requests are in flight against the mount, the rest wait in a submission
queue.

Trace semantics match the application's view: a record spans
*submission* to *completion*, so response times include queue wait.
That is exactly what makes ARPT mislead here — deeper queues raise
per-request latency while the work as a whole finishes sooner — and
what BPS's overlapped T gets right.  The Set 5 extension experiment
(:mod:`repro.experiments.set5`) sweeps the queue depth.
"""

from __future__ import annotations

from repro.devices.base import READ, WRITE
from repro.errors import MiddlewareError
from repro.fs.localfs import FSResult
from repro.middleware.tracing import TraceRecorder
from repro.sim.engine import Engine
from repro.sim.events import Completion
from repro.sim.resources import Resource


class AsyncIOContext:
    """One process's asynchronous I/O context on one file.

    >>> ctx = AsyncIOContext(engine, mount, "data", pid=0,
    ...                      recorder=recorder, queue_depth=8)
    >>> tokens = [ctx.submit_read(off, 4096) for off in offsets]
    >>> results = yield ctx.drain()        # or: yield tokens[i]
    """

    def __init__(self, engine: Engine, mount, file_name: str, pid: int,
                 recorder: TraceRecorder, *, queue_depth: int = 8,
                 submit_overhead_s: float = 0.000005) -> None:
        if queue_depth < 1:
            raise MiddlewareError(f"bad queue depth {queue_depth}")
        if submit_overhead_s < 0:
            raise MiddlewareError("negative submit overhead")
        if not mount.exists(file_name):
            raise MiddlewareError(f"no such file: {file_name!r}")
        self.engine = engine
        self.mount = mount
        self.file_name = file_name
        self.pid = pid
        self.recorder = recorder
        self.queue_depth = queue_depth
        self.submit_overhead_s = submit_overhead_s
        self.size = mount.size_of(file_name)
        self._slots = Resource(engine, capacity=queue_depth,
                               name=f"aio.{pid}.slots")
        self._outstanding: list[Completion] = []
        self.submitted = 0
        self.completed = 0

    @property
    def in_flight(self) -> int:
        """Requests currently issued against the mount."""
        return self._slots.in_use

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes <= 0 or offset + nbytes > self.size:
            raise MiddlewareError(
                f"bad range [{offset}, {offset + nbytes}) for "
                f"{self.file_name!r} of size {self.size}"
            )

    def submit_read(self, offset: int, nbytes: int) -> Completion:
        """Queue an asynchronous read; fires with the FSResult."""
        return self._submit(READ, offset, nbytes)

    def submit_write(self, offset: int, nbytes: int) -> Completion:
        """Queue an asynchronous write; fires with the FSResult."""
        return self._submit(WRITE, offset, nbytes)

    def _submit(self, op: str, offset: int, nbytes: int) -> Completion:
        self._check(offset, nbytes)
        done = self.engine.completion()
        self.submitted += 1
        self._outstanding.append(done)
        self.engine.spawn(self._io_proc(op, offset, nbytes, done),
                          name=f"aio.{self.pid}.{op}")
        return done

    def _io_proc(self, op: str, offset: int, nbytes: int,
                 done: Completion):
        submitted_at = self.engine.now
        yield self.engine.timeout(self.submit_overhead_s)
        grant = self._slots.acquire()
        yield grant
        try:
            if op == READ:
                result: FSResult = yield self.mount.read(
                    self.file_name, offset, nbytes)
            else:
                result = yield self.mount.write(
                    self.file_name, offset, nbytes)
        finally:
            self._slots.release()
        end = self.engine.now
        self.recorder.record_app(self.pid, op, self.file_name, offset,
                                 nbytes, submitted_at, end,
                                 success=result.success)
        self.recorder.note_fs_bytes(result.device_bytes, pid=self.pid,
                                    op=op, file=self.file_name,
                                    offset=offset,
                                    start=submitted_at, end=end)
        self.completed += 1
        done.trigger(result)

    def drain(self) -> Completion:
        """Waitable that fires when everything submitted so far is done."""
        pending = [c for c in self._outstanding if not c.fired]
        self._outstanding = pending.copy()
        return self.engine.all_of(pending)
