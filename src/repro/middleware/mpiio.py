"""MPI-IO-style middleware: independent, noncontiguous, and collective I/O.

An :class:`MPIIO` context models one parallel application's I/O
communicator: ``nranks`` ranks, shared hints, one shared
:class:`~repro.middleware.tracing.TraceRecorder`.  Each rank opens the
shared file and gets an :class:`MPIFile` handle supporting:

- ``read_at`` / ``write_at`` — independent contiguous I/O;
- ``read_regions`` — independent noncontiguous I/O with ROMIO-style
  data sieving (the paper's Set 4 mechanism);
- ``read_at_all`` — collective I/O with two-phase aggregation.

Trace records are application-level: one record per MPI-IO call, sized
by the bytes the *application* requested.  The file-system byte counter
sees what actually moved below (sieve holes included).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices.base import READ, WRITE
from repro.errors import MiddlewareError
from repro.fs.localfs import FSResult
from repro.middleware.collective import (
    FileDomain,
    domain_reads,
    two_phase_plan,
)
from repro.middleware.retry import RetryPolicy, RetryStats, execute_attempts
from repro.middleware.sieving import (
    Region,
    SievingConfig,
    plan_sieving,
    validate_regions,
)
from repro.middleware.tracing import TraceRecorder
from repro.sim.engine import Engine
from repro.sim.events import Completion
from repro.util.rng import RngStream
from repro.util.units import GiB


@dataclass(frozen=True)
class MPIIOHints:
    """Per-open hints (a small subset of ROMIO's)."""

    sieving: SievingConfig = field(default_factory=SievingConfig)
    #: Aggregators for collective I/O (ROMIO's ``cb_nodes``); 0 = all ranks.
    cb_nodes: int = 0
    #: In-memory copy rate for sieve-buffer extraction and collective
    #: redistribution (bytes/second).
    memcpy_rate: float = 8.0 * GiB


class MPIIO:
    """One communicator's MPI-IO layer."""

    def __init__(self, engine: Engine, nranks: int,
                 recorder: TraceRecorder, *,
                 call_overhead_s: float = 0.000020,
                 pid_base: int = 0,
                 retry_policy: RetryPolicy | None = None,
                 retry_rng: RngStream | None = None,
                 fault_state=None,
                 retry_stats: RetryStats | None = None) -> None:
        if nranks < 1:
            raise MiddlewareError(f"bad rank count {nranks}")
        if call_overhead_s < 0:
            raise MiddlewareError("negative call overhead")
        if pid_base < 0:
            raise MiddlewareError(f"negative pid base {pid_base}")
        self.engine = engine
        self.nranks = nranks
        self.recorder = recorder
        self.call_overhead_s = call_overhead_s
        #: Retry middleware for independent contiguous I/O (sieving and
        #: collective paths issue compound multi-op transactions; those
        #: stay single-shot — documented out of scope).
        self.retry_policy = retry_policy
        self.retry_rng = retry_rng
        self.fault_state = fault_state
        self.retry_stats = retry_stats
        #: Offset applied to ranks in trace records (multi-application
        #: runs give each communicator a disjoint pid space).
        self.pid_base = pid_base
        self._collective_calls: dict[tuple[str, int], "_CollectiveCall"] = {}
        self._collective_seq: dict[str, int] = {}

    def open(self, mount, file_name: str, rank: int,
             hints: MPIIOHints | None = None) -> "MPIFile":
        """Open the shared file from one rank's mount."""
        if not 0 <= rank < self.nranks:
            raise MiddlewareError(
                f"rank {rank} out of range for {self.nranks} ranks"
            )
        if not mount.exists(file_name):
            raise MiddlewareError(f"no such file: {file_name!r}")
        return MPIFile(self, mount, file_name, rank,
                       hints or MPIIOHints())


class MPIFile:
    """One rank's handle on the shared file."""

    def __init__(self, ctx: MPIIO, mount, file_name: str, rank: int,
                 hints: MPIIOHints) -> None:
        self.ctx = ctx
        self.engine = ctx.engine
        self.mount = mount
        self.file_name = file_name
        self.rank = rank
        self.hints = hints
        self.size = mount.size_of(file_name)

    # -- independent contiguous ------------------------------------------------

    def read_at(self, offset: int, nbytes: int) -> Completion:
        """Independent read at an explicit offset."""
        return self._independent(READ, offset, nbytes)

    def write_at(self, offset: int, nbytes: int) -> Completion:
        """Independent write at an explicit offset."""
        return self._independent(WRITE, offset, nbytes)

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes <= 0 or offset + nbytes > self.size:
            raise MiddlewareError(
                f"bad range [{offset}, {offset + nbytes}) for "
                f"{self.file_name!r} of size {self.size}"
            )

    def _independent(self, op: str, offset: int, nbytes: int) -> Completion:
        self._check(offset, nbytes)
        done = self.engine.completion()
        self.engine.spawn(self._independent_proc(op, offset, nbytes, done),
                          name=f"mpiio.{op}.r{self.rank}")
        return done

    def _independent_proc(self, op: str, offset: int, nbytes: int,
                          done: Completion):
        ctx = self.ctx
        pid = ctx.pid_base + self.rank
        start = self.engine.now
        yield self.engine.timeout(ctx.call_overhead_s)
        if op == READ:
            def issue():
                return self.mount.read(self.file_name, offset, nbytes)
        else:
            def issue():
                return self.mount.write(self.file_name, offset, nbytes)
        outcomes = yield from execute_attempts(
            self.engine, issue, ctx.retry_policy,
            rng=ctx.retry_rng, stats=ctx.retry_stats, first_start=start)
        final = outcomes[-1]
        final_end = final.end
        if ctx.fault_state is not None:
            factor = ctx.fault_state.process_factor(pid)
            if factor > 1.0:
                yield self.engine.timeout(
                    (factor - 1.0) * (final.end - start))
                final_end = self.engine.now
        for attempt, outcome in enumerate(outcomes):
            end = final_end if outcome is final else outcome.end
            ctx.recorder.record_app(pid, op, self.file_name, offset,
                                    nbytes, outcome.start, end,
                                    success=outcome.success,
                                    retries=attempt)
            if outcome.result is not None:
                ctx.recorder.note_fs_bytes(
                    outcome.result.device_bytes, pid=pid, op=op,
                    file=self.file_name, offset=offset,
                    start=outcome.start, end=end)
        result = final.result
        if result is None:
            result = FSResult(nbytes, 0, 0, 0, final.start, final_end,
                              success=False,
                              errors=("operation timed out",))
        done.trigger(result)

    # -- independent noncontiguous (data sieving) ---------------------------------

    def read_regions(self, regions: list[Region]) -> Completion:
        """Noncontiguous read; sieving per the open hints.

        One application-level trace record covers the whole call, sized
        by the *useful* bytes (what the application asked for).  The
        holes the sieve reads drag in appear only in the fs byte count.
        """
        validate_regions(regions)
        for offset, length in regions:
            self._check(offset, length)
        done = self.engine.completion()
        self.engine.spawn(self._regions_proc(regions, done),
                          name=f"mpiio.sieve.r{self.rank}")
        return done

    def _regions_proc(self, regions: list[Region], done: Completion):
        ctx = self.ctx
        start = self.engine.now
        yield self.engine.timeout(ctx.call_overhead_s)
        plan = plan_sieving(regions, self.hints.sieving)
        device_bytes = 0
        success = True
        # ROMIO reuses one sieve buffer: reads are sequential.
        for sieve in plan:
            result: FSResult = yield self.mount.read(
                self.file_name, sieve.offset, sieve.nbytes)
            device_bytes += result.device_bytes
            success = success and result.success
            # Copy the useful pieces out of the sieve buffer.
            copy_time = sieve.useful_bytes / self.hints.memcpy_rate
            if copy_time > 0:
                yield self.engine.timeout(copy_time)
        end = self.engine.now
        useful = sum(length for _off, length in regions)
        ctx.recorder.record_app(ctx.pid_base + self.rank, READ,
                                self.file_name,
                                regions[0][0], useful, start, end,
                                success=success)
        ctx.recorder.note_fs_bytes(device_bytes,
                                   pid=ctx.pid_base + self.rank, op=READ,
                                   file=self.file_name,
                                   offset=regions[0][0],
                                   start=start, end=end)
        done.trigger(FSResult(useful, device_bytes, 0, 0, start, end,
                              success=success))

    def write_regions(self, regions: list[Region]) -> Completion:
        """Noncontiguous write; sieving per the open hints.

        Sieved noncontiguous *writes* need read-modify-write: the
        middleware reads the covering range (holes included), patches
        the user's regions into the buffer, and writes the whole range
        back — ROMIO's ``ADIOI_GEN_WriteStrided`` data-sieving path.
        The fs byte counter therefore sees roughly *twice* the covering
        range; the application record still counts only the useful
        bytes.  With sieving disabled, one exact write per region.
        """
        validate_regions(regions)
        for offset, length in regions:
            self._check(offset, length)
        done = self.engine.completion()
        self.engine.spawn(self._write_regions_proc(regions, done),
                          name=f"mpiio.wsieve.r{self.rank}")
        return done

    def _write_regions_proc(self, regions: list[Region],
                            done: Completion):
        ctx = self.ctx
        start = self.engine.now
        yield self.engine.timeout(ctx.call_overhead_s)
        plan = plan_sieving(regions, self.hints.sieving)
        device_bytes = 0
        success = True
        for sieve in plan:
            if sieve.hole_bytes == 0:
                # Contiguous (or sieving off): plain write.
                result: FSResult = yield self.mount.write(
                    self.file_name, sieve.offset, sieve.nbytes)
                device_bytes += result.device_bytes
                success = success and result.success
                continue
            # Read-modify-write: fetch the covering range...
            read_back: FSResult = yield self.mount.read(
                self.file_name, sieve.offset, sieve.nbytes)
            device_bytes += read_back.device_bytes
            success = success and read_back.success
            # ... patch the user's regions into the buffer ...
            copy_time = sieve.useful_bytes / self.hints.memcpy_rate
            if copy_time > 0:
                yield self.engine.timeout(copy_time)
            # ... and write the whole range back.
            written: FSResult = yield self.mount.write(
                self.file_name, sieve.offset, sieve.nbytes)
            device_bytes += written.device_bytes
            success = success and written.success
        end = self.engine.now
        useful = sum(length for _off, length in regions)
        ctx.recorder.record_app(ctx.pid_base + self.rank, WRITE,
                                self.file_name, regions[0][0], useful,
                                start, end, success=success)
        ctx.recorder.note_fs_bytes(device_bytes,
                                   pid=ctx.pid_base + self.rank,
                                   op=WRITE, file=self.file_name,
                                   offset=regions[0][0],
                                   start=start, end=end)
        done.trigger(FSResult(useful, device_bytes, 0, 0, start, end,
                              success=success))

    # -- collective (two-phase) ------------------------------------------------------

    def read_at_all(self, offset: int, nbytes: int) -> Completion:
        """Collective read: all ranks must call; two-phase aggregation.

        Rank contributions are gathered; ``cb_nodes`` aggregators read
        contiguous file domains; data is redistributed at memcpy rate
        (local) — the network case is exercised through PFS mounts,
        whose reads already pay network costs.
        """
        self._check(offset, nbytes)
        ctx = self.ctx
        key = (self.file_name, ctx._collective_seq.get(self.file_name, 0))
        call = ctx._collective_calls.get(key)
        if call is None:
            call = _CollectiveCall(ctx, self.mount, self.file_name,
                                   self.hints)
            ctx._collective_calls[key] = call
        call.mounts[self.rank] = self.mount
        done = call.join(self.rank, offset, nbytes)
        if call.complete_roster:
            # All ranks arrived: seal this call and bump the sequence so
            # the next collective round gets a fresh call object.
            ctx._collective_seq[self.file_name] = key[1] + 1
            del ctx._collective_calls[key]
            call.launch()
        return done


class _CollectiveCall:
    """State of one in-flight collective read round."""

    def __init__(self, ctx: MPIIO, mount, file_name: str,
                 hints: MPIIOHints) -> None:
        self.ctx = ctx
        self.engine = ctx.engine
        self.mount = mount
        self.file_name = file_name
        self.hints = hints
        self.contributions: dict[int, tuple[int, int, float, Completion]] = {}
        #: rank -> that rank's mount; aggregators are spread over these
        #: (ROMIO places cb_nodes aggregators on distinct client nodes).
        self.mounts: dict[int, object] = {}

    @property
    def complete_roster(self) -> bool:
        """Have all ranks of the communicator joined?"""
        return len(self.contributions) == self.ctx.nranks

    def join(self, rank: int, offset: int, nbytes: int) -> Completion:
        if rank in self.contributions:
            raise MiddlewareError(
                f"rank {rank} called read_at_all twice in one round"
            )
        done = self.engine.completion()
        self.contributions[rank] = (offset, nbytes, self.engine.now, done)
        return done

    def launch(self) -> None:
        self.engine.spawn(self._run(), name=f"mpiio.coll.{self.file_name}")

    def _run(self):
        ctx = self.ctx
        yield self.engine.timeout(ctx.call_overhead_s)
        requests = {rank: (off, size)
                    for rank, (off, size, _t, _d) in self.contributions.items()}
        cb_nodes = self.hints.cb_nodes or ctx.nranks
        domains = two_phase_plan(requests, cb_nodes)
        # Aggregator a runs on the a-th participating rank's node.
        aggregator_mounts = [mount for _rank, mount
                             in sorted(self.mounts.items())]
        # Phase 1: aggregators concurrently read the *requested* ranges
        # falling in their domains (ROMIO materialises the aggregate
        # access pattern; holes between rank requests are never read).
        pending = []
        for aggregator, offset, nbytes in domain_reads(domains, requests):
            mount = aggregator_mounts[aggregator % len(aggregator_mounts)]
            pending.append(mount.read(self.file_name, offset, nbytes))
        device_bytes = 0
        success = True
        if pending:
            results = yield self.engine.all_of(pending)
            for result in results:
                device_bytes += result.device_bytes
                success = success and result.success
        # Phase 2: redistribute to ranks at memcpy rate (serialised per
        # aggregator; we charge the total volume once).
        total = sum(size for _off, size in requests.values())
        copy_time = total / self.hints.memcpy_rate
        if copy_time > 0:
            yield self.engine.timeout(copy_time)
        end = self.engine.now
        for rank, (offset, nbytes, start, done) in self.contributions.items():
            ctx.recorder.record_app(ctx.pid_base + rank, READ,
                                    self.file_name, offset,
                                    nbytes, start, end, success=success)
            done.trigger(FSResult(nbytes, 0, 0, 0, start, end,
                                  success=success))
        # Charge fs bytes once, against the collective as a whole.
        ctx.recorder.note_fs_bytes(device_bytes, op=READ,
                                   file=self.file_name)
