#!/usr/bin/env python
"""The paper's core argument, in miniature: when each metric lies.

Builds three pairs of scenarios straight out of the paper's Figure 1 —
different I/O sizes, different actual data movement, different
concurrency — runs them through the simulator, and shows that in each
pair exactly one conventional metric declares the *slower* (or equal)
system better, while BPS gets every comparison right.

Run:  python examples/metric_comparison.py
"""

from repro import IOzoneWorkload, ReplayOp, ReplayWorkload, SystemConfig
from repro.middleware.sieving import SievingConfig
from repro.util.tables import TextTable
from repro.util.units import KiB, MiB
from repro.workloads import HpioWorkload

LOCAL = SystemConfig(kind="local", seed=7)
PFS = SystemConfig(kind="pfs", n_servers=4, seed=7)


def show(title, left_name, left, right_name, right, misleading):
    left_metrics = left.metrics()
    right_metrics = right.metrics()
    print(f"--- {title} ---")
    table = TextTable(["metric", left_name, right_name,
                       "who looks better?"])
    for metric in ("exec_time", "IOPS", "BW", "ARPT", "BPS"):
        lv = left_metrics.value_of(metric)
        rv = right_metrics.value_of(metric)
        if metric in ("exec_time", "ARPT"):
            better = left_name if lv < rv else right_name
        else:
            better = left_name if lv > rv else right_name
        flag = "  <-- misleading!" if metric == misleading else ""
        table.add_row([metric, f"{lv:.6g}", f"{rv:.6g}", better + flag])
    print(table.render())
    print()


def case_io_sizes():
    """Fig. 1(a): small records vs large records, same data."""
    small = IOzoneWorkload(file_size=16 * MiB, record_size=4 * KiB)
    large = IOzoneWorkload(file_size=16 * MiB, record_size=1 * MiB)
    show("Different I/O sizes (Fig. 1a) — IOPS favours the slow case",
         "4KiB records", small.run(LOCAL),
         "1MiB records", large.run(LOCAL),
         misleading="IOPS")


def case_data_movement():
    """Fig. 1(b): data sieving moves extra bytes the app never asked for."""
    tight = HpioWorkload(region_count=2048, region_size=256,
                         region_spacing=64, nproc=2,
                         sieving=SievingConfig())
    sparse = HpioWorkload(region_count=2048, region_size=256,
                          region_spacing=4096, nproc=2,
                          sieving=SievingConfig())
    show("Different data movement (Fig. 1b) — bandwidth counts the holes",
         "64B holes", tight.run(PFS),
         "4KiB holes", sparse.run(PFS),
         misleading="BW")


def case_concurrency():
    """Fig. 1(c): sequential vs concurrent requests, same per-request time."""
    sequential = ReplayWorkload(file_size=32 * MiB, ops=[
        ReplayOp(0, "read", i * MiB, 1 * MiB) for i in range(8)
    ])
    concurrent = ReplayWorkload(file_size=32 * MiB, ops=[
        ReplayOp(pid, "read", (8 + pid) * MiB, 1 * MiB)
        for pid in range(8)
    ])
    ssd = SystemConfig(kind="local", device_spec="pcie-ssd", seed=7)
    show("Different concurrency (Fig. 1c) — ARPT cannot see overlap",
         "sequential", sequential.run(ssd),
         "concurrent", concurrent.run(ssd),
         misleading="ARPT")


def main() -> None:
    case_io_sizes()
    case_data_movement()
    case_concurrency()
    print("In every pair, BPS and execution time agree; one")
    print("conventional metric points the wrong way each time.")


if __name__ == "__main__":
    main()
