#!/usr/bin/env python
"""Multi-application interference, measured per application.

The paper's methodology records all applications sharing an I/O system
(§III.B).  This example co-schedules a latency-sensitive victim (small
random reads) with a bandwidth hog (big sequential IOR) on a shared
parallel file system, sweeps the hog's intensity, and reports each
application's own BPS/ARPT from the one gathered trace — the
interference diagnosis the global numbers alone would hide.

Run:  python examples/interference.py
"""

from repro.core.metrics import compute_metrics
from repro.system import SystemConfig
from repro.util.tables import TextTable
from repro.util.units import KiB, MiB, format_seconds
from repro.workloads import (
    CompositeWorkload,
    IORWorkload,
    RandomAccessWorkload,
)


def run_with_hog(hog_ranks: int):
    victim = RandomAccessWorkload(file_size=16 * MiB, io_size=4 * KiB,
                                  ops_per_proc=128, nproc=1)
    members = [victim]
    if hog_ranks:
        members.append(IORWorkload(file_size=16 * MiB,
                                   transfer_size=1 * MiB,
                                   nproc=hog_ranks))
    composite = CompositeWorkload(members=members)
    config = SystemConfig(kind="pfs", n_servers=2, seed=21)
    measurement = composite.run(config)
    victim_trace = composite.member_trace(measurement.trace, 0)
    victim_span = victim_trace.span()
    victim_metrics = compute_metrics(
        victim_trace, exec_time=victim_span[1] - victim_span[0])
    return victim_metrics, measurement


def main() -> None:
    table = TextTable(["hog ranks", "victim completion", "victim BPS",
                       "victim ARPT", "system-wide BPS"])
    for hog_ranks in (0, 1, 2, 4):
        victim, combined = run_with_hog(hog_ranks)
        system_metrics = combined.metrics()
        table.add_row([
            hog_ranks,
            format_seconds(victim.exec_time),
            f"{victim.bps:,.0f}",
            format_seconds(victim.arpt),
            f"{system_metrics.bps:,.0f}",
        ])
    print("A 4KiB-random victim sharing 2 PVFS servers with an IOR")
    print("bandwidth hog of increasing size:\n")
    print(table.render())
    print()
    print("Per-application BPS (from the shared trace, paper §III.B)")
    print("shows the victim's degradation directly; the system-wide BPS")
    print("rises with total load — both views come from one recording.")


if __name__ == "__main__":
    main()
