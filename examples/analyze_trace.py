#!/usr/bin/env python
"""The offline toolkit: compute BPS from trace files.

The paper's conclusion promises "an easy-to-use toolkit".  This example
exercises all four ingestion paths:

1. record a trace from a simulation and save it as CSV and JSONL;
2. read both back and verify they agree;
3. parse a blkparse-style capture (the "wrap blktrace" path);
4. parse a fio JSON result (approximate reconstruction).

Run:  python examples/analyze_trace.py
"""

import io
import json
import tempfile
from pathlib import Path

from repro import IOzoneWorkload, SystemConfig, compute_metrics
from repro.trace_io import (
    read_blkparse,
    read_csv_trace,
    read_fio_json,
    read_jsonl_trace,
)
from repro.trace_io.csvtrace import write_csv_trace
from repro.trace_io.jsonltrace import write_jsonl_trace
from repro.util.units import KiB, MiB

BLKPARSE_SNIPPET = """\
  8,0    1        1     0.000000000   512  Q   R 2048 + 64 [app]
  8,0    1        2     0.004100000   512  C   R 2048 + 64 [0]
  8,0    2        3     0.001000000   513  Q   R 9000 + 64 [app]
  8,0    2        4     0.006400000   513  C   R 9000 + 64 [0]
  8,0    1        5     0.007000000   512  Q   W 4096 + 128 [app]
  8,0    1        6     0.013500000   512  C   W 4096 + 128 [0]
"""

FIO_RESULT = {
    "fio version": "fio-3.28",
    "jobs": [{
        "jobname": "randread",
        "read": {
            "total_ios": 2000,
            "io_bytes": 2000 * 4096,
            "runtime": 1500,                      # ms
            "clat_ns": {"mean": 550_000.0},       # 0.55 ms
        },
    }],
}


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="bps-traces-"))

    # 1. Record a trace by simulation.
    measurement = IOzoneWorkload(file_size=8 * MiB,
                                 record_size=64 * KiB).run(
        SystemConfig(kind="local", seed=3))
    csv_path = workdir / "run.csv"
    jsonl_path = workdir / "run.jsonl"
    write_csv_trace(measurement.trace, csv_path)
    write_jsonl_trace(measurement.trace, jsonl_path)
    print(f"recorded {len(measurement.trace)} records "
          f"-> {csv_path.name}, {jsonl_path.name}")

    # 2. Read back and compare.
    from_csv = read_csv_trace(csv_path)
    from_jsonl = read_jsonl_trace(jsonl_path)
    bps_csv = compute_metrics(from_csv,
                              exec_time=measurement.exec_time).bps
    bps_jsonl = compute_metrics(from_jsonl,
                                exec_time=measurement.exec_time).bps
    print(f"BPS from CSV   : {bps_csv:,.0f} blocks/s")
    print(f"BPS from JSONL : {bps_jsonl:,.0f} blocks/s")
    assert abs(bps_csv - bps_jsonl) < 1e-6

    # 3. blkparse capture.
    blk_trace = read_blkparse(io.StringIO(BLKPARSE_SNIPPET))
    first, last = blk_trace.span()
    blk_metrics = compute_metrics(blk_trace, exec_time=last - first)
    print(f"\nblkparse capture: {len(blk_trace)} I/Os, "
          f"BPS = {blk_metrics.bps:,.0f} blocks/s, "
          f"IOPS = {blk_metrics.iops:,.1f}")

    # 4. fio JSON result (synthetic interval reconstruction).
    fio_trace = read_fio_json(io.StringIO(json.dumps(FIO_RESULT)))
    fio_metrics = compute_metrics(fio_trace, exec_time=1.5)
    print(f"fio result: {len(fio_trace)} reconstructed intervals, "
          f"BPS = {fio_metrics.bps:,.0f} blocks/s "
          f"(fio reported {2000 * 8 / 1.5:,.0f} blocks/s of runtime)")


if __name__ == "__main__":
    main()
