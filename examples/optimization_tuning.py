#!/usr/bin/env python
"""Using BPS to steer I/O optimisation choices.

The paper's closing ambition: "we will adopt and evaluate different I/O
optimization mechanisms and their combinations in terms of overall I/O
system performance."  This example tunes ROMIO-style data sieving for a
noncontiguous pattern with *heterogeneous* holes — clusters of regions
separated small gaps, clusters themselves far apart:

- sieving off: every region is its own request (request-count bound);
- max_hole = 1 KiB: sieve within clusters only (the sweet spot);
- max_hole = 4 MiB: sieve across the 1 MiB inter-cluster gaps too —
  the file system streams vast hole regions nobody asked for.

Picking the setting by file-system bandwidth chooses the last one (it
moves the most bytes per second!); picking by BPS chooses the setting
that actually minimises execution time.

Run:  python examples/optimization_tuning.py
"""

from repro.middleware.mpiio import MPIIO, MPIIOHints
from repro.middleware.sieving import SievingConfig
from repro.system import SystemConfig, build_system
from repro.util.tables import TextTable
from repro.util.units import KiB, MiB, format_seconds

N_CLUSTERS = 64
REGIONS_PER_CLUSTER = 16
REGION = 256          # bytes
SMALL_HOLE = 256      # inside a cluster
BIG_HOLE = 1 * MiB    # between clusters: costlier to read than to seek


def build_regions():
    regions = []
    cursor = 0
    for _cluster in range(N_CLUSTERS):
        for _region in range(REGIONS_PER_CLUSTER):
            regions.append((cursor, REGION))
            cursor += REGION + SMALL_HOLE
        cursor += BIG_HOLE
    return regions, cursor


def run_with(sieving: SievingConfig):
    regions, extent = build_regions()
    config = SystemConfig(kind="pfs", n_servers=4, seed=5)
    system = build_system(config)
    system.shared_mount().create("noncontig", extent)
    system.drop_caches()
    mpi = system.mpiio(1)
    handle = mpi.open(system.mount_for(0), "noncontig", 0,
                      MPIIOHints(sieving=sieving))

    def app(engine):
        yield handle.read_regions(regions)

    start = system.engine.now
    process = system.engine.spawn(app(system.engine))
    system.engine.run()
    process.result()
    exec_time = system.engine.now - start
    from repro.core.metrics import compute_metrics
    return compute_metrics(system.recorder.trace, exec_time=exec_time,
                           fs_bytes=system.recorder.fs_bytes_moved)


def main() -> None:
    settings = {
        "off": SievingConfig(enabled=False),
        "max_hole=1KiB": SievingConfig(max_hole=1 * KiB,
                                       buffer_size=4 * MiB),
        "max_hole=4MiB": SievingConfig(max_hole=4 * MiB,
                                       buffer_size=128 * MiB),
    }
    table = TextTable(["sieving setting", "exec time", "BPS (blocks/s)",
                       "fs bandwidth (MiB/s)", "amplification"])
    results = {}
    for name, sieving in settings.items():
        metrics = run_with(sieving)
        results[name] = metrics
        table.add_row([
            name,
            format_seconds(metrics.exec_time),
            f"{metrics.bps:,.0f}",
            f"{metrics.bandwidth / (1024 * 1024):.1f}",
            f"{metrics.fs_amplification:.2f}x",
        ])
    print("Tuning data sieving: 64 clusters x 16 x 256B regions,")
    print("256B holes inside clusters, 1MiB gaps between clusters\n")
    print(table.render())

    by_bps = max(results, key=lambda k: results[k].bps)
    by_bw = max(results, key=lambda k: results[k].bandwidth)
    by_time = min(results, key=lambda k: results[k].exec_time)
    print()
    print(f"fastest setting (ground truth) : {by_time}")
    print(f"chosen by BPS                  : {by_bps}")
    print(f"chosen by fs bandwidth         : {by_bw}")
    if by_bps == by_time and by_bw != by_time:
        print()
        print("BPS picked the genuinely fastest configuration; bandwidth")
        print("was seduced by the huge sieve reads full of hole bytes.")


if __name__ == "__main__":
    main()
