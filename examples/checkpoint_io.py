#!/usr/bin/env python
"""Domain scenario: HPC checkpoint dumps on a parallel file system.

A classic data-intensive pattern the paper's introduction motivates:
every N simulated seconds of computation, all ranks dump their state to
a PVFS-like parallel file system.  We sweep the rank count and watch
which metric tracks the time-to-checkpoint — and how BPS's union time
correctly excludes the compute phases (paper: "the inactive time is not
included in T").

Run:  python examples/checkpoint_io.py
"""

from repro import SystemConfig
from repro.core.analysis import SweepAnalysis
from repro.util.tables import TextTable
from repro.util.units import MiB, format_seconds
from repro.workloads.ior import IORWorkload


def checkpoint_run(nranks: int, *, compute_s: float = 0.02):
    """3 checkpoint waves of 16 MiB total, compute between waves."""
    workload = IORWorkload(
        file_size=48 * MiB,          # 3 waves x 16 MiB
        transfer_size=16 * MiB // nranks,
        nproc=nranks,
        op="write",
        think_time_s=compute_s,      # compute phase between dumps
    )
    config = SystemConfig(kind="pfs", n_servers=8, seed=11,
                          device_overrides={"cache_segments": 32})
    return workload.run(config)


def main() -> None:
    sweep = SweepAnalysis("ranks")
    rows = TextTable(["ranks", "exec time", "union I/O time",
                      "compute excluded", "BPS (blocks/s)",
                      "ARPT"])
    for nranks in (1, 2, 4, 8):
        measurement = checkpoint_run(nranks)
        metrics = measurement.metrics()
        sweep.add_point(str(nranks), [metrics])
        rows.add_row([
            nranks,
            format_seconds(metrics.exec_time),
            format_seconds(metrics.union_io_time),
            format_seconds(metrics.exec_time - metrics.union_io_time),
            f"{metrics.bps:,.0f}",
            format_seconds(metrics.arpt),
        ])
    print("Checkpoint dumps: 3 waves x 16MiB over 8 I/O servers,")
    print("with compute between waves.\n")
    print(rows.render())
    print()
    print("Correlation with time-to-solution across the rank sweep:")
    print(sweep.render_cc_table())
    print()
    print("Note the 'compute excluded' column: BPS's T is the union of")
    print("I/O intervals only — compute phases between checkpoint waves")
    print("never inflate the I/O metric (paper section III.A).")


if __name__ == "__main__":
    main()
