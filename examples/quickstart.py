#!/usr/bin/env python
"""Quickstart: simulate an I/O-bound application and measure BPS.

Runs an IOzone-style sequential read on a simulated HDD-backed local
file system, then prints every metric the paper discusses — BPS
(Eq. 1) next to the conventional IOPS / bandwidth / average response
time — plus the ingredients (B, T, execution time).

Run:  python examples/quickstart.py
"""

from repro import IOzoneWorkload, SystemConfig
from repro.util.tables import TextTable
from repro.util.units import KiB, MiB, format_rate, format_seconds


def main() -> None:
    # A 64 MiB sequential read in 64 KiB records on the paper's
    # 250 GB 7200 RPM SATA disk, page cache cold (the paper flushes
    # caches before each run).
    workload = IOzoneWorkload(file_size=64 * MiB, record_size=64 * KiB)
    config = SystemConfig(kind="local", device_spec="sata-hdd-7200",
                          seed=42)

    measurement = workload.run(config)
    metrics = measurement.metrics()

    print(f"workload : {measurement.label}")
    print(f"platform : local file system on {config.device_spec}")
    print()

    table = TextTable(["quantity", "value", "notes"])
    table.add_row(["execution time", format_seconds(metrics.exec_time),
                   "overall performance (what users feel)"])
    table.add_row(["B (app blocks)", f"{metrics.app_blocks:,}",
                   "512-byte blocks the application asked for"])
    table.add_row(["T (union I/O time)",
                   format_seconds(metrics.union_io_time),
                   "overlap-collapsed I/O time (paper Fig. 2)"])
    table.add_row(["BPS", f"{metrics.bps:,.0f} blocks/s",
                   "B / T  — the paper's metric"])
    table.add_row(["IOPS", f"{metrics.iops:,.1f} ops/s",
                   "ignores request sizes"])
    table.add_row(["bandwidth", format_rate(metrics.bandwidth),
                   "measured at the file-system boundary"])
    table.add_row(["ARPT", format_seconds(metrics.arpt),
                   "ignores concurrency"])
    print(table.render())

    print()
    print("Sanity check: with no middleware optimisations the file")
    print("system moved exactly what the application asked for:")
    print(f"  fs bytes / app bytes = {metrics.fs_amplification:.2f}x")


if __name__ == "__main__":
    main()
